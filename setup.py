"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build.  This
shim keeps the legacy path working::

    python setup.py develop

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
