"""Quickstart: recommend attendees for a social group activity.

Generates a Facebook-regime synthetic social network, asks CBAS-ND for a
connected group of 12 attendees maximizing willingness, and compares it
against the deterministic greedy baseline — the paper's headline use case.

Run:  python examples/quickstart.py
"""

from repro import (
    DGreedy,
    WASOProblem,
    facebook_like,
    recommend_group,
)


def main() -> None:
    # A 500-person regional network with the paper's score models.
    graph = facebook_like(500, seed=42)
    print(
        f"network: {graph.number_of_nodes()} people, "
        f"{graph.number_of_edges()} friendships, "
        f"average degree {graph.average_degree():.1f}"
    )

    # One call: the paper's best algorithm with a moderate budget.
    result = recommend_group(
        graph, k=12, solver="cbas-nd", budget=900, m=30, stages=8, rng=42
    )
    print("\nCBAS-ND recommendation:")
    print(f"  willingness  : {result.willingness:.2f}")
    print(f"  attendees    : {sorted(result.members)}")
    print(f"  samples drawn: {result.stats.samples_drawn}")
    print(f"  time         : {result.stats.elapsed_seconds * 1e3:.0f} ms")

    # Baseline: the greedy approach the paper shows gets trapped.
    problem = WASOProblem(graph=graph, k=12)
    greedy = DGreedy().solve(problem)
    print("\nDGreedy baseline:")
    print(f"  willingness  : {greedy.willingness:.2f}")
    print(f"  attendees    : {sorted(greedy.members)}")

    gain = (result.willingness / greedy.willingness - 1.0) * 100.0
    print(f"\nCBAS-ND improves willingness by {gain:.0f}% over greedy.")


if __name__ == "__main__":
    main()
