"""Exhibition & house-warming scenarios (paper §2.2) plus couples & foes.

* The British Museum mails potential Van Gogh visitors: interest-only
  (λ = 1), no connectivity needed.
* A house-warming party: tightness-only (λ = 0), connected.
* A couple must attend together; two foes must never be grouped.

Run:  python examples/exhibition_marketing.py
"""

from repro import CBASND, WASOProblem, facebook_like, willingness
from repro.scenarios import (
    exhibition_problem,
    housewarming_problem,
    mark_foes,
    merge_couple,
)
from repro.scenarios.couples import expand_merged_members


def main() -> None:
    graph = facebook_like(300, seed=5)
    solver = CBASND(budget=300, m=20, stages=5)

    # --- exhibition: pure topic interest --------------------------------
    exhibition = exhibition_problem(graph, k=10)
    invited = solver.solve(exhibition, rng=5)
    top_interest = sorted(
        graph.nodes(), key=graph.interest, reverse=True
    )[:10]
    print("exhibition mailing list (interest-only, disconnected ok):")
    print(f"  willingness: {invited.willingness:.3f}")
    print(f"  invited    : {sorted(invited.members)}")
    overlap = len(set(top_interest) & invited.members)
    print(f"  overlap with global top-10 interest: {overlap}/10")

    # --- house-warming: pure social tightness ---------------------------
    party = housewarming_problem(graph, k=8)
    guests = solver.solve(party, rng=5)
    print("\nhouse-warming guests (tightness-only, connected):")
    print(f"  willingness: {guests.willingness:.3f}")
    print(f"  guests     : {sorted(guests.members)}")

    # --- couple ----------------------------------------------------------
    base = WASOProblem(graph=graph, k=8)
    a, b = _some_edge(graph)
    merged_problem, merged_node = merge_couple(base, a, b)
    result = solver.solve(merged_problem, rng=5)
    attendees = expand_merged_members(result.members, merged_node, a, b)
    print(f"\ncouple ({a}, {b}) must attend together:")
    print(f"  attendees: {sorted(attendees)}")
    if a in attendees:
        assert b in attendees  # together or not at all
        print("  couple is together ✔")

    # --- foes -------------------------------------------------------------
    foes = (a, b)
    hostile = mark_foes(graph, [foes])
    feud_problem = WASOProblem(graph=hostile, k=8)
    peaceful = solver.solve(feud_problem, rng=5)
    both_in = foes[0] in peaceful.members and foes[1] in peaceful.members
    print(f"\nfoes {foes} marked: both selected? {both_in}")
    assert not both_in
    print("  foes kept apart ✔")
    print(
        "  (their pairing would cost willingness "
        f"{willingness(hostile, set(foes)):.0f})"
    )


def _some_edge(graph):
    """Any friendship edge — used to pick a plausible couple."""
    return next(iter(graph.edges()))


if __name__ == "__main__":
    main()
