"""Online re-planning (paper §4.4.1): attendees decline, the plan adapts.

After the first recommendation goes out, responses arrive one by one.
Confirmed attendees are locked in; each decline triggers a fast re-plan
that keeps the confirmations and routes around the decliner.

Run:  python examples/online_replanning.py
"""

import random

from repro import ExecutionContext, WASOProblem, facebook_like
from repro.online import OnlinePlanner


def main() -> None:
    graph = facebook_like(300, seed=11)
    problem = WASOProblem(graph=graph, k=10)
    # The runtime context owns pools + warm-state storage; replans and
    # fresh solves share one resident pool when routing goes parallel.
    # The with-block holds the creation reference, so any pools are torn
    # down at exit once the planner has also released its co-ownership.
    with ExecutionContext() as context:
        planner = OnlinePlanner(
            problem,
            solver=context.make_solver("cbas-nd", budget=300, m=20, stages=5),
            rng=11,
            context=context,
        )
        run_session(planner)


def run_session(planner: OnlinePlanner) -> None:
    plan = planner.plan()
    print(f"initial plan (W={plan.willingness:.2f}): {sorted(plan.members)}")

    # Simulate responses: each invitee accepts with probability 0.7.
    rng = random.Random(11)
    for node in sorted(plan.members):
        if rng.random() < 0.7:
            planner.record_accept(node)
            print(f"  {node} accepted")
        else:
            refreshed = planner.record_decline(node)
            print(
                f"  {node} DECLINED -> re-planned "
                f"(W={refreshed.willingness:.2f}): "
                f"{sorted(refreshed.members)}"
            )

    final = planner.finalize()
    print(f"\nfinal group (W={final.willingness:.2f}): {sorted(final.members)}")
    print(f"declines handled: {len(planner.declined)}")
    assert not (final.members & planner.declined)
    print("no decliner is in the final group ✔")
    planner.close()  # drops the planner's co-ownership of the context


if __name__ == "__main__":
    main()
