"""Online re-planning (paper §4.4.1): attendees decline, the plan adapts.

After the first recommendation goes out, responses arrive one by one.
Confirmed attendees are locked in; each decline triggers a fast re-plan
that keeps the confirmations and routes around the decliner.

Run:  python examples/online_replanning.py
"""

import random

from repro import CBASND, WASOProblem, facebook_like
from repro.online import OnlinePlanner


def main() -> None:
    graph = facebook_like(300, seed=11)
    problem = WASOProblem(graph=graph, k=10)
    planner = OnlinePlanner(
        problem, solver=CBASND(budget=300, m=20, stages=5), rng=11
    )

    plan = planner.plan()
    print(f"initial plan (W={plan.willingness:.2f}): {sorted(plan.members)}")

    # Simulate responses: each invitee accepts with probability 0.7.
    rng = random.Random(11)
    for node in sorted(plan.members):
        if rng.random() < 0.7:
            planner.record_accept(node)
            print(f"  {node} accepted")
        else:
            refreshed = planner.record_decline(node)
            print(
                f"  {node} DECLINED -> re-planned "
                f"(W={refreshed.willingness:.2f}): "
                f"{sorted(refreshed.members)}"
            )

    final = planner.finalize()
    print(f"\nfinal group (W={final.willingness:.2f}): {sorted(final.members)}")
    print(f"declines handled: {len(planner.declined)}")
    assert not (final.members & planner.declined)
    print("no decliner is in the final group ✔")


if __name__ == "__main__":
    main()
