"""Batched serving: many planning requests through one runtime context.

A site serving group recommendations does not solve one query at a time:
requests with different group sizes, constraints, solvers, and budgets
arrive together.  ``ExecutionContext.solve_many`` multiplexes a
heterogeneous batch over one shared compiled graph — small solves fan
out across the solve-level worker pool, large ones route to the
stage-sharded pool — and the results are bit-identical to solving each
request on its own.

Run:  python examples/batched_serving.py
"""

import time

from repro import (
    ExecutionContext,
    SolveRequest,
    WASOProblem,
    facebook_like,
)


def main() -> None:
    graph = facebook_like(400, seed=21)
    print(
        f"network: {graph.number_of_nodes()} people, "
        f"{graph.number_of_edges()} friendships"
    )

    # A mixed batch: different ks, a must-include organizer, a greedy
    # baseline request, and per-request seeds/budgets.
    anchor = graph.node_list()[0]
    requests = [
        SolveRequest(
            WASOProblem(graph=graph, k=8),
            "cbas-nd",
            rng=1,
            solver_kwargs={"budget": 300, "m": 20, "stages": 5},
        ),
        SolveRequest(
            WASOProblem(graph=graph, k=12, required=frozenset({anchor})),
            "cbas-nd",
            rng=2,
            solver_kwargs={"budget": 400, "m": 25, "stages": 5},
        ),
        SolveRequest(WASOProblem(graph=graph, k=6), "dgreedy"),
        SolveRequest(
            WASOProblem(graph=graph, k=10),
            "cbas",
            rng=4,
            solver_kwargs={"budget": 250, "m": 20, "stages": 5},
        ),
    ]

    with ExecutionContext() as ctx:
        started = time.perf_counter()
        results = ctx.solve_many(requests)
        elapsed = time.perf_counter() - started

    print(f"\nserved {len(requests)} requests in {elapsed * 1e3:.0f} ms:")
    for index, (request, result) in enumerate(zip(requests, results)):
        print(
            f"  #{index} {request.solver:8s} k={request.problem.k:3d} "
            f"W={result.willingness:8.2f} "
            f"members={sorted(result.members)[:6]}..."
        )

    # The batch is bit-identical to one-by-one solving.
    with ExecutionContext() as ctx:
        single = ctx.solve(
            requests[0].problem,
            requests[0].solver,
            rng=requests[0].rng,
            **requests[0].solver_kwargs,
        )
    assert single.members == results[0].members
    assert single.willingness == results[0].willingness
    print("\nbatched result #0 == standalone solve ✔")


if __name__ == "__main__":
    main()
