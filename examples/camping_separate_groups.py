"""Separate-groups scenario (paper §2.2): a camping trip with sub-groups.

A government campaign invites k people to a camping trip; attendees need
not form one connected circle (families / friend groups can come
separately), so the instance is WASO-dis.  The example solves it two
equivalent ways and checks Theorem 2 in action:

1. directly, passing ``connected=False`` to the solver;
2. via the paper's virtual-node reduction to connected WASO.

Run:  python examples/camping_separate_groups.py
"""

from repro import CBASND, IPSolver, WASOProblem, dblp_like
from repro.scenarios import reduce_wasodis, strip_virtual_node


def main() -> None:
    # A sparse network: plenty of disconnected-but-good pockets.
    graph = dblp_like(150, seed=21)
    problem = WASOProblem(graph=graph, k=8, connected=False)

    direct = CBASND(budget=1500, m=15, stages=10).solve(problem, rng=21)
    print("direct WASO-dis solve:")
    print(f"  willingness: {direct.willingness:.3f}")
    print(f"  attendees  : {sorted(direct.members)}")

    groups = _connected_groups(graph, direct.solution.members)
    print(f"  sub-groups : {[sorted(g) for g in groups]}")

    # The paper's reduction: add a virtual node, solve connected WASO.
    reduced = reduce_wasodis(problem)
    via_reduction = CBASND(budget=1500, m=15, stages=10).solve(reduced, rng=21)
    members = strip_virtual_node(via_reduction.members)
    print("\nvia the Theorem-2 virtual-node reduction:")
    print(f"  attendees  : {sorted(members)}")

    # Baseline and ground truth on this small instance.
    from repro import DGreedy

    greedy = DGreedy().solve(problem)
    exact = IPSolver().solve(problem)
    print(f"\nDGreedy      : {greedy.willingness:.3f}")
    print(f"exact optimum: {exact.willingness:.3f}")
    print(
        f"CBAS-ND reaches "
        f"{direct.willingness / exact.willingness * 100:.1f}% of optimal "
        f"(greedy: {greedy.willingness / exact.willingness * 100:.1f}%)"
    )


def _connected_groups(graph, members):
    """Split a member set into its connected sub-groups."""
    remaining = set(members)
    groups = []
    while remaining:
        start = next(iter(remaining))
        component = graph.component_of(start) & set(members)
        groups.append(component)
        remaining -= component
    return groups


if __name__ == "__main__":
    main()
