"""The serving daemon: WASO planning as a long-lived network service.

``ExecutionContext.solve_many`` is a library call; a deployment is a
process that strangers throw traffic at.  ``ServingDaemon`` wraps the
runtime in an asyncio TCP server speaking newline-delimited JSON:
multiple tenants (each a registered graph) multiplex over one resident
worker pool, a bounded admission queue sheds overload with typed
rejections instead of collapsing, a request may carry a latency SLO
instead of a budget (the daemon buys the largest budget its calibrated
work-rate model predicts will fit), and shutdown drains — every
admitted request is answered first.

This example runs the daemon in-process and speaks the wire protocol to
it over a real socket:

1. plan for two tenants through one connection, plus an SLO request;
2. overload the queue with a burst and watch typed shedding;
3. probe the health endpoint (same port, plain HTTP);
4. drain.

Run:  python examples/serving_daemon.py
(The CLI equivalent of the daemon here is
``waso serve graph.json --workers 2``.)
"""

import asyncio
import json

from repro import facebook_like
from repro.serving import ServingDaemon


async def send_specs(host: str, port: int, specs: list) -> dict:
    """One client connection: send every spec, collect replies by id."""
    reader, writer = await asyncio.open_connection(host, port)
    for spec in specs:
        writer.write((json.dumps(spec) + "\n").encode())
    await writer.drain()
    writer.write_eof()  # done sending; the daemon flushes owed replies
    replies = {}
    while line := await reader.readline():
        payload = json.loads(line)
        replies[payload["id"]] = payload
    writer.close()
    await writer.wait_closed()
    return replies


async def http_get(host: str, port: int, path: str) -> dict:
    """Plain HTTP probe on the same port (health/readiness/metrics)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return json.loads(raw.split(b"\r\n\r\n", 1)[1])


async def main() -> None:
    daemon = ServingDaemon(
        {
            "hiking": facebook_like(400, seed=21),
            "concerts": facebook_like(300, seed=22),
        },
        workers=2,
        max_queue=4,  # tiny on purpose, so step 2 can overload it
    )
    host, port = await daemon.start()
    print(f"daemon serving tenants {sorted(daemon.graphs)} on {host}:{port}")

    # 1. Two tenants and an SLO request through one connection.  The
    # SLO request carries no budget: the daemon picks the largest one
    # its calibrated work-rate model predicts will fit 0.5 s, and the
    # reply's extra records the whole contract.
    replies = await send_specs(host, port, [
        {"id": "hike", "tenant": "hiking", "solver": "cbas-nd",
         "k": 8, "budget": 300, "m": 20, "stages": 5, "seed": 1},
        {"id": "gig", "tenant": "concerts", "solver": "cbas-nd",
         "k": 6, "budget": 200, "m": 15, "stages": 4, "seed": 2},
        {"id": "fast", "tenant": "hiking", "solver": "cbas-nd",
         "k": 8, "slo_s": 0.5, "m": 20, "stages": 5, "seed": 3},
    ])
    for request_id in ("hike", "gig", "fast"):
        reply = replies[request_id]
        line = (
            f"  {request_id:5s} ok  W={reply['willingness']:8.2f} "
            f"{len(reply['members'])} members"
        )
        extra = reply.get("extra", {})
        if "slo_budget" in extra:
            line += (
                f"  (SLO {extra['slo_s']}s bought budget "
                f"{extra['slo_budget']}, achieved "
                f"{extra['slo_achieved_s'] * 1e3:.0f} ms)"
            )
        print(line)

    # 2. Overload: a burst past the queue bound.  The daemon answers
    # everyone — the excess immediately, with a typed shed rejection —
    # instead of buffering into latencies nobody is still waiting for.
    burst = [
        {"id": f"b{index}", "tenant": "hiking", "solver": "cbas-nd",
         "k": 5, "budget": 2000, "m": 10, "stages": 4, "seed": index}
        for index in range(10)
    ]
    replies = await send_specs(host, port, burst)
    served = [r for r in replies.values() if r["ok"]]
    shed = [r for r in replies.values() if not r["ok"]]
    print(f"\nburst of {len(burst)}: {len(served)} served, "
          f"{len(shed)} shed ({len(replies)} replies — nobody dropped)")
    if shed:
        error = shed[0]["error"]
        print(f"  a shed reply: kind={error['kind']!r}: {error['message']}")

    # 3. Health on the same port, plain HTTP.
    health = await http_get(host, port, "/healthz")
    print(f"\n/healthz: {health['status']}, "
          f"admission counters {health['admission']}")

    # 4. Drain: stops accepting, answers everything admitted, tears
    # down the worker pools — no orphan processes, no hung clients.
    await daemon.shutdown()
    print("drained ✔")


if __name__ == "__main__":
    asyncio.run(main())
