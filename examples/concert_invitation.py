"""Invitation scenario (paper §2.2): a pianist plans a private concert.

The host invites people who are close to *them*; guests need not know each
other.  The scenario helper restricts candidates to the host's
neighbourhood, requires the host, and weights guests purely by their
tightness toward the host.

Run:  python examples/concert_invitation.py
"""

from repro import CBASND, facebook_like
from repro.scenarios import invitation_problem


def main() -> None:
    graph = facebook_like(400, seed=7)

    # Pick a well-connected host: the pianist.
    host = max(graph.nodes(), key=graph.degree)
    print(
        f"host {host} has {graph.degree(host)} friends; "
        f"inviting 9 of them (k = 10 including the host)"
    )

    problem = invitation_problem(graph, host=host, k=10)
    result = CBASND(budget=300, m=5, stages=5).solve(problem, rng=7)

    guests = sorted(result.members - {host})
    print(f"\nwillingness: {result.willingness:.3f}")
    print(f"guests     : {guests}")

    # Every guest is a direct friend of the host by construction.
    neighbours = set(graph.neighbors(host))
    assert all(guest in neighbours for guest in guests)
    print("all guests are direct friends of the host ✔")

    # Rank the chosen guests by their closeness to the host.
    print("\ncloseness to host (tau_guest,host):")
    for guest in sorted(
        guests, key=lambda g: graph.tightness(g, host), reverse=True
    ):
        print(f"  guest {guest:>4}: {graph.tightness(guest, host):.3f}")


if __name__ == "__main__":
    main()
