"""Candidate pre-filtering (paper footnote 1 / future work §6).

A Saturday hike is planned for people in one city: candidates are
pre-filtered by location attribute and calendar availability before WASO
runs — exactly the preprocessing the paper prescribes for time/location
constraints.

Run:  python examples/weekend_hike_filtered.py
"""

import random

from repro import CBASND, facebook_like
from repro.scenarios import (
    attribute_filter,
    availability_filter,
    filtered_problem,
)


def main() -> None:
    graph = facebook_like(300, seed=13)
    rng = random.Random(13)

    # Attach demographic metadata and calendars.
    cities = ["springfield", "shelbyville"]
    schedules = {}
    for node in graph.nodes():
        graph.set_metadata(node, city=rng.choice(cities))
        free = {day for day in ("sat", "sun") if rng.random() < 0.6}
        schedules[node] = free

    in_town = attribute_filter(city="springfield")
    free_saturday = availability_filter(schedules, slot="sat")

    def eligible(g, node):
        return in_town(g, node) and free_saturday(g, node)

    problem = filtered_problem(graph, k=8, predicate=eligible)
    print(
        f"{len(problem.candidates())} of {graph.number_of_nodes()} people "
        f"are in Springfield and free on Saturday"
    )

    result = CBASND(budget=300, m=15, stages=5).solve(problem, rng=13)
    print(f"\nhiking group (W={result.willingness:.2f}):")
    for member in sorted(result.members):
        meta = graph.metadata(member)
        print(
            f"  {member:>4}  city={meta['city']}  "
            f"free={sorted(schedules[member])}"
        )

    for member in result.members:
        assert graph.metadata(member)["city"] == "springfield"
        assert "sat" in schedules[member]
    print("\nall attendees are local and available ✔")


if __name__ == "__main__":
    main()
