"""Pytest configuration for the bench suite."""

import os
import sys
from pathlib import Path

# Allow `import common` from bench modules regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: multi-core performance gates; these auto-skip (with a "
        "visible reason) on machines too small to run the workers in "
        "parallel, so a multi-core runner can enforce them with "
        "`pytest benchmarks/ -m tier2` without breaking 1-CPU containers",
    )

# Record every regenerated figure table to a file (pytest captures stdout,
# so without this a plain `pytest benchmarks/` run would discard them).
os.environ.setdefault(
    "WASO_BENCH_TABLE_LOG",
    str(Path(__file__).parent.parent / "bench_tables.txt"),
)

