"""Pytest configuration for the bench suite."""

import os
import sys
from pathlib import Path

# Allow `import common` from bench modules regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))


#: The tier-2 CI job (documented in ROADMAP.md): the marked gates plus
#: the regression check against the committed baseline.
#:
#:     PYTHONPATH=src python -m pytest benchmarks/ -m tier2
#:     PYTHONPATH=src python benchmarks/bench_perf_sampler.py --check
#:
#: Wall-clock gates auto-skip below the required CPU count; the
#: payload-byte gate (``test_payload_bytes_regression_gate``) is
#: machine-independent — pickle sizes are deterministic — so it runs
#: everywhere and covers the resident shipping protocol exactly
#: (one graph install per (graph, worker) pair, warm batches spec-only).
TIER2_INVOCATION = (
    "PYTHONPATH=src python -m pytest benchmarks/ -m tier2 && "
    "PYTHONPATH=src python -m pytest tests/test_faults.py -m chaos && "
    "PYTHONPATH=src python benchmarks/bench_perf_sampler.py --check"
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: performance/regression gates for the tier-2 job "
        f"(`{TIER2_INVOCATION}`); multi-core wall-clock gates auto-skip "
        "(with a visible reason) on machines too small to run the "
        "workers in parallel, while the payload-byte gates are "
        "machine-independent and always run",
    )
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection differential tests; the "
        "suite lives in tests/test_faults.py and the tier-2 job re-runs "
        "it standalone (see TIER2_INVOCATION)",
    )

# Record every regenerated figure table to a file (pytest captures stdout,
# so without this a plain `pytest benchmarks/` run would discard them).
os.environ.setdefault(
    "WASO_BENCH_TABLE_LOG",
    str(Path(__file__).parent.parent / "bench_tables.txt"),
)

