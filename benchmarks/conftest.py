"""Pytest configuration for the bench suite."""

import os
import sys
from pathlib import Path

# Allow `import common` from bench modules regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))


#: The tier-2 CI job (documented in ROADMAP.md): the marked gates, the
#: chaos suites (pool recovery and the serving daemon), and the
#: regression checks against the committed baseline.
#:
#:     PYTHONPATH=src python -m pytest benchmarks/ -m tier2
#:     PYTHONPATH=src python benchmarks/bench_perf_sampler.py --check
#:     PYTHONPATH=src python benchmarks/bench_serving_daemon.py --check
#:
#: Wall-clock gates auto-skip below the required CPU count; the
#: payload-byte gate (``test_payload_bytes_regression_gate``) and the
#: serving accounting gate (``test_serving_daemon_accounting_gate``)
#: are machine-independent — pickle sizes and stalled-burst shed sets
#: are deterministic — so they run everywhere and cover the resident
#: shipping protocol (one graph install per (graph, worker) pair) and
#: the daemon's zero-dropped-replies invariant exactly.
TIER2_INVOCATION = (
    "PYTHONPATH=src python -m pytest benchmarks/ -m tier2 && "
    "PYTHONPATH=src python -m pytest tests/test_faults.py "
    "tests/test_serving.py tests/test_storage.py -m chaos && "
    "PYTHONPATH=src python benchmarks/bench_perf_sampler.py --check && "
    "PYTHONPATH=src python benchmarks/bench_serving_daemon.py --check && "
    "PYTHONPATH=src python benchmarks/bench_fig7_dblp.py --check && "
    "PYTHONPATH=src python benchmarks/bench_fig8_flickr.py --check && "
    "PYTHONPATH=src python benchmarks/bench_fig5_parallel.py --check"
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: performance/regression gates for the tier-2 job "
        f"(`{TIER2_INVOCATION}`); multi-core wall-clock gates auto-skip "
        "(with a visible reason) on machines too small to run the "
        "workers in parallel, while the payload-byte gates are "
        "machine-independent and always run",
    )
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection differential tests; the "
        "suite lives in tests/test_faults.py and the tier-2 job re-runs "
        "it standalone (see TIER2_INVOCATION)",
    )

# Record every regenerated figure table to a file (pytest captures stdout,
# so without this a plain `pytest benchmarks/` run would discard them).
os.environ.setdefault(
    "WASO_BENCH_TABLE_LOG",
    str(Path(__file__).parent.parent / "bench_tables.txt"),
)

