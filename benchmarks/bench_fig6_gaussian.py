"""Fig. 6(a,b): Gaussian sampled-willingness model and CBAS-ND-G.

Paper claims reproduced as shape checks:

* (a) the willingness of uniformly sampled groups is approximately
  Gaussian (the paper fits mean 124.71 / variance 13.83 on Facebook) —
  we verify unimodality around the mean and near-symmetric tails;
* (b) CBAS-ND and CBAS-ND-G deliver very close quality, while CBAS-ND
  avoids the numerical integration (it is the cheaper of the two).
"""

import random
import statistics

from common import RUN_SEED
from repro.algorithms.cbas_nd import CBASND, cbas_nd_g
from repro.algorithms.sampling import ExpansionSampler
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator

N = 600
K = 15
SAMPLES = 800
KS = (10, 20, 30)
REPEATS = 2


def sample_histogram() -> tuple[list[float], dict[str, float]]:
    """Uniform-expansion willingness samples from random start nodes."""
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    sampler = ExpansionSampler(problem, WillingnessEvaluator(graph))
    rng = random.Random(RUN_SEED)
    nodes = graph.node_list()
    values: list[float] = []
    while len(values) < SAMPLES:
        start = rng.choice(nodes)
        sample = sampler.draw({start}, rng)
        if sample is not None:
            values.append(sample.willingness)
    stats = {
        "mean": statistics.fmean(values),
        "stdev": statistics.stdev(values),
        "median": statistics.median(values),
    }
    return values, stats


def quality_comparison() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    table = ExperimentTable(
        title="Fig 6(b): CBAS-ND vs CBAS-ND-G quality", x_label="k"
    )
    for k in KS:
        problem = WASOProblem(graph=graph, k=k)
        budget = 50 * k
        for name, factory in (
            ("CBAS-ND", lambda: CBASND(budget=budget, m=25, stages=6)),
            ("CBAS-ND-G", lambda: cbas_nd_g(budget=budget, m=25, stages=6)),
        ):
            total = 0.0
            for repeat in range(REPEATS):
                total += (
                    factory().solve(problem, rng=RUN_SEED + repeat).willingness
                )
            table.add(name, k, total / REPEATS)
    return table


def run_experiment():
    values, stats = sample_histogram()
    table = quality_comparison()
    return values, stats, table


def test_fig6_gaussian(benchmark):
    values, stats, table = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print(
        f"\n== Fig 6(a): sampled willingness ~ N(mu, sigma) ==\n"
        f"mean={stats['mean']:.2f} stdev={stats['stdev']:.2f} "
        f"median={stats['median']:.2f}"
    )
    table.show()

    # Shape (a): unimodal, centred distribution — median close to the
    # mean and the bulk of the mass within one stdev (our sample has a
    # heavier right tail than a perfect Gaussian, which widens sigma and
    # pushes the 1-sigma mass above the Gaussian 68%).
    assert abs(stats["median"] - stats["mean"]) < 0.5 * stats["stdev"]
    within = sum(
        1
        for v in values
        if abs(v - stats["mean"]) <= stats["stdev"]
    ) / len(values)
    assert 0.55 < within < 0.99, f"mass within 1 sigma: {within:.2f}"

    # Shape (b): the two variants are very close at every k.
    for k in KS:
        nd = table.series["CBAS-ND"].at(k)
        ndg = table.series["CBAS-ND-G"].at(k)
        assert min(nd, ndg) >= max(nd, ndg) * 0.75, table.render()


if __name__ == "__main__":
    values, stats, table = run_experiment()
    print(stats)
    table.show()
