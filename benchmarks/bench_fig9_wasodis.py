"""Fig. 9(c,d): WASO-dis (separate groups) time and quality vs k.

All algorithms run with the paper's recipe: the virtual node joins the
selection set, relaxing the connectivity constraint (every remaining node
is always selectable).

Paper claims reproduced as shape checks:

* CBAS-ND outperforms DGreedy, CBAS, and RGreedy, "especially under a
  large k", and the CBAS-ND / DGreedy gap is *wider* than in connected
  WASO because greedy is inclined to select a connected group while the
  optimum may be disconnected;
* RGreedy's cost explodes (its candidate set is all of V at every step —
  paper: no solution within 24 hours for k > 20 at crawl scale).
"""

from common import RUN_SEED, assert_dominates, standard_algorithms
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem
from repro.scenarios import reduce_wasodis, strip_virtual_node
from repro.core.willingness import WillingnessEvaluator

N = 600
KS = (10, 20, 30)


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("facebook", N)
    evaluator = WillingnessEvaluator(graph)
    quality = ExperimentTable(
        title="Fig 9(d): WASO-dis quality vs k (Facebook-like)", x_label="k"
    )
    times = ExperimentTable(
        title="Fig 9(c): WASO-dis time (s) vs k (Facebook-like)",
        x_label="k",
    )
    for k in KS:
        base = WASOProblem(graph=graph, k=k, connected=False)
        reduced = reduce_wasodis(base)
        for name, solver in standard_algorithms(k).items():
            result = solver.solve(reduced, rng=RUN_SEED)
            members = strip_virtual_node(result.members)
            quality.add(name, k, evaluator.value(members))
            times.add(name, k, result.stats.elapsed_seconds)
    return quality, times


def test_fig9cd_wasodis(benchmark):
    quality, times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quality.show()
    times.show(fmt="{:.4f}")

    assert_dominates(quality, "CBAS-ND", "CBAS", min_fraction_of_points=0.6)
    assert_dominates(
        quality, "CBAS-ND", "DGreedy", min_fraction_of_points=0.6
    )
    top = max(KS)
    assert (
        quality.series["CBAS-ND"].at(top)
        >= quality.series["DGreedy"].at(top)
    ), quality.render()


if __name__ == "__main__":
    q, t = run_experiment()
    q.show()
    t.show(fmt="{:.4f}")
