"""Fig. 4(a-f): the user study — manual vs CBAS-ND vs the IP optimum.

The study simulator substitutes the paper's 137 human participants with a
bounded-rationality manual-coordination model (see repro.userstudy and
DESIGN.md §3).  The λ histogram uses the full 137 draws; the quality /
time sweeps use a reduced participant count to keep the bench short (the
aggregation is a mean, so the shape is stable).

Paper claims reproduced as shape checks:

* (a) λ spans [0.37, 0.66] with most mass in the central bins — "both
  social tightness and interest are crucial";
* (b,d) CBAS-ND's quality is very close to IP's and clearly above manual
  coordination (paper: manual ≈ 66% of CBAS-ND at k = 7);
* (c,e) manual coordination is orders of magnitude slower than CBAS-ND,
  and manual time *stops growing* (users give up) at the largest n / k;
* (f) almost every participant rates the recommendation better than or
  comparable to their own group (paper: 98.5%).
"""

from common import RUN_SEED
from repro.algorithms.ip import IPSolver
from repro.bench.harness import ExperimentTable
from repro.userstudy import StudyConfig, UserStudy
from repro.userstudy.opinions import Opinion
from repro.userstudy.study import sample_lambda

PARTICIPANTS = 8


def run_experiment():
    import random

    config = StudyConfig(
        participants=PARTICIPANTS,
        network_sizes=(15, 20, 25, 30),
        group_sizes=(7, 9, 11, 13),
        base_k=7,
        base_n=25,
        solver_budget=500,
        seed=RUN_SEED,
    )
    # Ground truth with a 5% MIP gap: the bench machine may be a single
    # slow core, and a near-optimal bound preserves every Fig. 4 shape.
    outcome = UserStudy(
        config=config, optimum=IPSolver(mip_gap=0.05)
    ).run()
    # Fig 4(a) histogram at the paper's full population size.
    rng = random.Random(RUN_SEED)
    full_lambdas = [sample_lambda(rng) for _ in range(137)]
    return outcome, full_lambdas


def _tables(outcome) -> list[ExperimentTable]:
    quality_n = ExperimentTable(
        title="Fig 4(b): quality vs n (k=7)", x_label="n"
    )
    time_n = ExperimentTable(
        title="Fig 4(c): time (s) vs n (k=7; manual = simulated seconds)",
        x_label="n",
    )
    quality_k = ExperimentTable(
        title="Fig 4(d): quality vs k (n=25)", x_label="k"
    )
    time_k = ExperimentTable(
        title="Fig 4(e): time (s) vs k (n=25)", x_label="k"
    )
    for mode, cells in outcome.by_n.items():
        for n, cell in cells.items():
            quality_n.add(mode, n, cell.mean_quality())
            time_n.add(mode, n, cell.mean_seconds())
    for mode, cells in outcome.by_k.items():
        for k, cell in cells.items():
            quality_k.add(mode, k, cell.mean_quality())
            time_k.add(mode, k, cell.mean_seconds())
    return [quality_n, time_n, quality_k, time_k]


def test_fig4_user_study(benchmark):
    outcome, full_lambdas = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    tables = _tables(outcome)
    for table in tables:
        table.show(fmt="{:.3f}")

    # --- Fig 4(a): lambda histogram --------------------------------
    histogram = outcome.lambda_histogram()
    print("\n== Fig 4(a): lambda histogram (137 participants) ==")
    bins = {
        "0.37-0.45": 0,
        "0.45-0.5": 0,
        "0.5-0.55": 0,
        "0.55-0.6": 0,
        "0.6-0.66": 0,
    }
    edges = [(0.37, 0.45), (0.45, 0.5), (0.5, 0.55), (0.55, 0.6), (0.6, 0.661)]
    for lam in full_lambdas:
        for (label, _), (low, high) in zip(bins.items(), edges):
            if low <= lam < high:
                bins[label] += 1
                break
    for label, count in bins.items():
        print(f"  {label}: {count / len(full_lambdas) * 100:.1f}%")
    assert all(0.37 <= lam <= 0.66 for lam in full_lambdas)
    central = (bins["0.45-0.5"] + bins["0.5-0.55"]) / len(full_lambdas)
    assert central >= 0.4  # mass concentrates around the mean ~ 0.503

    # --- Fig 4(b,d): quality orderings -----------------------------
    quality_n, time_n, quality_k, time_k = tables
    for table, sweep_values in ((quality_n, (15, 20, 25, 30)),
                                (quality_k, (7, 9, 11, 13))):
        for suffix in ("i", "ni"):
            for x in sweep_values:
                ip = table.series[f"ip-{suffix}"].at(x)
                nd = table.series[f"cbasnd-{suffix}"].at(x)
                manual = table.series[f"manual-{suffix}"].at(x)
                # IP runs with a 5% gap, so allow that much slack above it.
                assert nd <= ip * 1.05 + 1e-9
                assert nd >= ip * 0.8, table.render()
                assert manual <= nd * 1.02, table.render()
    # Manual ~ 66% of CBAS-ND at the paper's k=7 cell (wide tolerance).
    ratio = quality_k.series["manual-ni"].at(7) / quality_k.series[
        "cbasnd-ni"
    ].at(7)
    assert 0.4 <= ratio <= 0.98, quality_k.render()

    # --- Fig 4(c,e): manual is far slower and eventually gives up ---
    for x in (15, 20, 25, 30):
        assert time_n.series["manual-ni"].at(x) > time_n.series[
            "cbasnd-ni"
        ].at(x)
    # Give-up regime: manual time stops growing between the two largest n.
    manual_times = [time_n.series["manual-ni"].at(x) for x in (15, 20, 25, 30)]
    assert manual_times[-1] <= manual_times[-2] * 1.5

    # --- Fig 4(f): opinions ------------------------------------------
    for with_initiator in (True, False):
        percentages = outcome.opinion_percentages(with_initiator)
        print(f"\n== Fig 4(f) (initiator={with_initiator}) ==")
        for opinion, fraction in percentages.items():
            print(f"  {opinion}: {fraction * 100:.1f}%")
        better_or_acceptable = (
            percentages[Opinion.BETTER.value]
            + percentages[Opinion.ACCEPTABLE.value]
        )
        assert better_or_acceptable >= 0.85  # paper: 98.5%


if __name__ == "__main__":
    outcome, lambdas = run_experiment()
    for table in _tables(outcome):
        table.show(fmt="{:.3f}")
