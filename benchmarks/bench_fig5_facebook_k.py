"""Fig. 5(a,b): running time and solution quality vs group size k (Facebook).

Paper claims reproduced as shape checks:

* quality: CBAS-ND > CBAS and CBAS-ND > DGreedy, gaps growing with k
  ("the willingness of CBAS-ND is at least twice the one from DGreedy when
  k = 100"); RGreedy > DGreedy.
* time: DGreedy fastest; RGreedy slowest by a wide margin even at a tenth
  of the sample budget ("RGreedy is unable to return a solution within 12
  hours when the group size is larger than 20" at paper scale).
"""

from common import assert_dominates, standard_algorithms, sweep
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

KS = (10, 20, 30, 40)
N = 600


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("facebook", N)
    quality = ExperimentTable(
        title="Fig 5(b): solution quality vs k (Facebook-like)", x_label="k"
    )
    times = ExperimentTable(
        title="Fig 5(a): execution time (s) vs k (Facebook-like)",
        x_label="k",
    )
    sweep(
        quality,
        times,
        KS,
        problem_of=lambda k: WASOProblem(graph=graph, k=k),
        algorithms_of=standard_algorithms,
    )
    return quality, times


def test_fig5ab_facebook_k(benchmark):
    quality, times = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    quality.show()
    times.show(fmt="{:.4f}")

    # Shape: CBAS-ND dominates CBAS and DGreedy; RGreedy beats DGreedy.
    assert_dominates(quality, "CBAS-ND", "CBAS")
    assert_dominates(quality, "CBAS-ND", "DGreedy", min_fraction_of_points=0.7)
    assert_dominates(quality, "RGreedy", "DGreedy", min_fraction_of_points=0.5)
    # Shape: the CBAS-ND / DGreedy gap grows with k (>= 1.5x at the top).
    top_k = max(KS)
    ratio_top = quality.series["CBAS-ND"].at(top_k) / quality.series[
        "DGreedy"
    ].at(top_k)
    assert ratio_top >= 1.2, quality.render()
    # Shape: DGreedy is the fastest; RGreedy the slowest per sample budget.
    for k in KS:
        assert times.series["DGreedy"].at(k) <= times.series["CBAS-ND"].at(k)
    assert times.series["RGreedy"].at(max(KS)) > times.series["CBAS"].at(
        max(KS)
    )


if __name__ == "__main__":
    q, t = run_experiment()
    q.show()
    t.show(fmt="{:.4f}")
