"""Ablation: start-node selection (DESIGN.md §5, item 4).

CBAS phase 1 ranks start-node candidates by node potential (interest +
incident tightness) and keeps the top m.  The ablation replaces that with
m uniformly random start nodes.

Expected shape: potential-ranked start nodes win — they sit inside the
cohesive, interested circles where good groups live, so the same budget
yields better samples.  (The paper's footnote 8 adds that the
approximation guarantee *requires* deterministic start selection.)
"""

import statistics

from common import RUN_SEED
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 600
KS = (10, 20)
REPEATS = 4


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    table = ExperimentTable(
        title="Ablation: start-node selection (CBAS-ND quality)",
        x_label="k",
    )
    for k in KS:
        problem = WASOProblem(graph=graph, k=k)
        budget = 60 * k
        variants = {
            "top-potential": CBASND(budget=budget, m=30, stages=8),
            "random-starts": CBASND(
                budget=budget, m=30, stages=8, start_selection="random"
            ),
        }
        for name, solver in variants.items():
            values = [
                solver.solve(problem, rng=RUN_SEED + r).willingness
                for r in range(REPEATS)
            ]
            table.add(name, k, statistics.fmean(values))
    return table


def test_ablation_start_selection(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()

    for k in KS:
        ranked = table.series["top-potential"].at(k)
        random_starts = table.series["random-starts"].at(k)
        assert ranked >= random_starts * 0.9, table.render()
    top = max(KS)
    assert (
        table.series["top-potential"].at(top)
        >= table.series["random-starts"].at(top)
    ), table.render()


if __name__ == "__main__":
    run_experiment().show()
