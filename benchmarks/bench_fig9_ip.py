"""Fig. 9(a,b): solution quality and time against the IP ground truth.

The paper extracts small DBLP subgraphs (n = 25 / 100 / 500) and compares
every algorithm with the CPLEX optimum; we do the same with HiGHS on
DBLP-regime graphs (scaled: n = 25 / 60 / 120 keeps the MILP run under a
second per instance).

Paper claims reproduced as shape checks:

* CBAS-ND's quality is very close to IP's (paper: "very close", we check
  >= 85% at every n, averaging over instances);
* CBAS-ND is closer to the optimum than DGreedy;
* IP is the slowest solver by a wide margin on the larger sizes.
"""

import statistics

from common import RUN_SEED
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.ip import IPSolver
from repro.algorithms.rgreedy import RGreedy
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem
from repro.graph.generators import dblp_like

NS = (25, 60, 120)
K = 6
INSTANCES = 3


def _instance(n: int, index: int) -> WASOProblem:
    graph = dblp_like(max(n, 20), seed=1000 * index + n)
    # Chain components so a connected k-group always exists.
    components = graph.connected_components()
    anchor = next(iter(components[0]))
    for component in components[1:]:
        graph.add_edge(anchor, next(iter(component)), 0.05)
    return WASOProblem(graph=graph, k=K)


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    quality = ExperimentTable(
        title=f"Fig 9(a): quality vs n (DBLP-like, k={K}, IP = optimum)",
        x_label="n",
    )
    times = ExperimentTable(
        title=f"Fig 9(b): time (s) vs n (DBLP-like, k={K})", x_label="n"
    )
    for n in NS:
        budget = 60 * K
        algorithms = {
            "IP": IPSolver(),
            "DGreedy": DGreedy(),
            "RGreedy": RGreedy(budget=max(20, budget // 10), m=8),
            "CBAS": CBAS(budget=budget, m=12, stages=6),
            "CBAS-ND": CBASND(budget=budget, m=12, stages=6),
        }
        for name, solver in algorithms.items():
            qs, ts = [], []
            for index in range(INSTANCES):
                problem = _instance(n, index)
                result = solver.solve(problem, rng=RUN_SEED + index)
                qs.append(result.willingness)
                ts.append(result.stats.elapsed_seconds)
            quality.add(name, n, statistics.fmean(qs))
            times.add(name, n, statistics.fmean(ts))
    return quality, times


def test_fig9ab_ip_ground_truth(benchmark):
    quality, times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quality.show()
    times.show(fmt="{:.4f}")

    for n in NS:
        optimum = quality.series["IP"].at(n)
        nd = quality.series["CBAS-ND"].at(n)
        greedy = quality.series["DGreedy"].at(n)
        # CBAS-ND is very close to the optimum...
        assert nd >= optimum * 0.85, quality.render()
        # ...and closer than (or equal to) DGreedy.
        assert nd >= greedy * 0.95, quality.render()
        # Nothing may beat the exact optimum.
        for name in ("DGreedy", "RGreedy", "CBAS", "CBAS-ND"):
            assert quality.series[name].at(n) <= optimum + 1e-6
    # IP's time grows fastest; it is the slowest at the largest n.
    top = max(NS)
    assert times.series["IP"].at(top) >= times.series["DGreedy"].at(top)


if __name__ == "__main__":
    q, t = run_experiment()
    q.show()
    t.show(fmt="{:.4f}")
