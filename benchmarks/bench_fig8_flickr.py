"""Fig. 8(a,b): quality and time vs k on the Flickr-regime graph.

Paper claims reproduced as shape checks:

* CBAS-ND outperforms DGreedy (paper: +31% at k = 50 — a smaller margin
  than on Facebook/DBLP) and tracks or beats CBAS;
* the running-time ordering matches the Facebook dataset (similar average
  degree), with RGreedy slowest.
"""

from common import assert_dominates, standard_algorithms, sweep
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 700
KS = (10, 20, 30, 40)


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("flickr", N)
    quality = ExperimentTable(
        title="Fig 8(a): quality vs k (Flickr-like)", x_label="k"
    )
    times = ExperimentTable(
        title="Fig 8(b): time (s) vs k (Flickr-like)", x_label="k"
    )
    sweep(
        quality,
        times,
        KS,
        problem_of=lambda k: WASOProblem(graph=graph, k=k),
        algorithms_of=standard_algorithms,
        repeats=2,
    )
    return quality, times


def test_fig8_flickr(benchmark):
    quality, times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quality.show()
    times.show(fmt="{:.4f}")

    # CBAS-ND >= CBAS on most sweep points.
    assert_dominates(quality, "CBAS-ND", "CBAS", min_fraction_of_points=0.6)
    # CBAS-ND beats DGreedy at the top of the sweep (paper: +31% at k=50;
    # the margin is the smallest of the three datasets, so allow noise).
    top = max(KS)
    assert (
        quality.series["CBAS-ND"].at(top)
        >= quality.series["DGreedy"].at(top) * 0.95
    ), quality.render()
    # Time ordering mirrors Facebook: DGreedy fastest, RGreedy slowest.
    for k in KS:
        assert times.series["DGreedy"].at(k) <= times.series["CBAS-ND"].at(k)
    assert times.series["RGreedy"].at(top) > times.series["CBAS"].at(top)


if __name__ == "__main__":
    import sys

    from common import run_mmap_residency_cli

    def _tables() -> None:
        q, t = run_experiment()
        q.show()
        t.show(fmt="{:.4f}")

    sys.exit(run_mmap_residency_cli("flickr", _tables))
