"""Shared helpers for the figure-regeneration benches.

Every bench module regenerates one paper figure (or a panel group from
it): it runs the same algorithms over the same sweep the figure plots,
prints the series as a table, and asserts the figure's qualitative *shape*
claims.  Budgets follow the rule ``T = BUDGET_PER_K · k`` so the sampling
effort grows with the group size, as the paper's fixed-T experiments do
relative to their (much larger) graphs.

The benches run at laptop scale: graphs of ~600 nodes instead of the
paper's 90k–1.8M-node crawls (see DESIGN.md §3), with the same degree
regimes and score models.
"""

from __future__ import annotations

import json
import pickle
import statistics
from pathlib import Path
from typing import Callable, Optional

from repro.algorithms.base import Solver
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.rgreedy import RGreedy
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

#: Seed used for every bench solver run (dataset seeds live in
#: repro.bench.datasets.BENCH_SEED).
RUN_SEED = 7

#: Sampling budget per unit of group size.
BUDGET_PER_K = 60

#: Number of OCBA / CE stages used by the staged solvers in benches.
STAGES = 8

#: Start-node count for the staged solvers (paper: well below n/k works).
START_NODES = 30


def budget_for(k: int) -> int:
    return BUDGET_PER_K * k


def standard_algorithms(k: int) -> dict[str, Solver]:
    """The paper's four-way comparison, configured for group size ``k``.

    RGreedy gets a smaller sample count because each of its samples costs
    O(frontier) willingness evaluations — exactly the cost structure the
    paper reports (RGreedy is ~10² slower at equal sample counts; giving
    it T/10 keeps bench runtimes sane while leaving it slower anyway).
    """
    t = budget_for(k)
    return {
        "DGreedy": DGreedy(),
        "RGreedy": RGreedy(budget=max(20, t // 10), m=15),
        "CBAS": CBAS(budget=t, m=START_NODES, stages=STAGES),
        "CBAS-ND": CBASND(budget=t, m=START_NODES, stages=STAGES),
    }


def sweep(
    table_quality: Optional[ExperimentTable],
    table_time: Optional[ExperimentTable],
    xs,
    problem_of: Callable[[object], WASOProblem],
    algorithms_of: Callable[[object], dict[str, Solver]],
    repeats: int = 1,
) -> None:
    """Run ``algorithms_of(x)`` on ``problem_of(x)`` for every sweep point.

    Quality is averaged over ``repeats`` solver seeds; time is the mean
    wall-clock per solve.
    """
    for x in xs:
        problem = problem_of(x)
        for name, solver in algorithms_of(x).items():
            qualities, times = [], []
            for repeat in range(repeats):
                result = solver.solve(problem, rng=RUN_SEED + repeat)
                qualities.append(result.willingness)
                times.append(result.stats.elapsed_seconds)
            if table_quality is not None:
                table_quality.add(name, x, statistics.fmean(qualities))
            if table_time is not None:
                table_time.add(name, x, statistics.fmean(times))


def assert_dominates(
    table: ExperimentTable,
    winner: str,
    loser: str,
    min_fraction_of_points: float = 0.6,
    slack: float = 1.0,
) -> None:
    """Shape check: ``winner`` beats ``loser`` on most sweep points.

    ``slack`` < 1 allows the winner to trail by that factor on the points
    it loses (randomized algorithms are noisy at bench scale).
    """
    win_series = table.series[winner]
    lose_series = table.series[loser]
    common = sorted(set(win_series.points) & set(lose_series.points))
    assert common, f"no common sweep points between {winner} and {loser}"
    wins = sum(
        1
        for x in common
        if win_series.points[x] >= lose_series.points[x] * slack
    )
    assert wins >= min_fraction_of_points * len(common), (
        f"{winner} beat {loser} on only {wins}/{len(common)} points:\n"
        + table.render()
    )


# ----------------------------------------------------------------------
# Out-of-core (mmap) residency series, shared by fig7/fig8
# ----------------------------------------------------------------------
#: Default bench index cache (gitignored scratch).
BENCH_CACHE = Path(__file__).parent / ".bench_cache"

#: Graph sizes the mmap residency series records and `--check` gates.
MMAP_RESIDENCY_NS = (10_000, 100_000)

#: Machine-independent gate: one path install (the pickled
#: ``("graph_path", token, path, evictions)`` message) must stay under
#: 1KB regardless of graph size — that is the whole point of the
#: out-of-core format.
MAX_PATH_INSTALL_BYTES = 1024

_BENCH_JSON = Path(__file__).parent.parent / "BENCH_sampler.json"


def bench_index(family: str, n: int, cache_dir=None) -> Path:
    """The on-disk compiled index for one bench graph, compiled once.

    The index is keyed by ``(family, n)`` under the bench cache; when
    the manifest already exists nothing is generated or compiled —
    repeated bench runs (and ``--check`` on a warm cache) skip straight
    to the mmap load.
    """
    from repro.bench.datasets import bench_graph
    from repro.graph.storage import MANIFEST_NAME, save_compiled

    index = Path(cache_dir or BENCH_CACHE) / f"{family}-n{n}"
    if not (index / MANIFEST_NAME).is_file():
        save_compiled(bench_graph(family, n).compiled(), index)
    return index


def mmap_residency_entry(family: str, n: int, cache_dir=None) -> dict:
    """Measure one family/size point of the ``mmap_residency`` series.

    Loads the cached index mmap-backed and drives a cold batch plus a
    warm batch of ``solve_many`` through a two-worker pool, recording
    the wire bytes: ``path_install_bytes`` is the pickled path-install
    message (O(1) at any n — the gated number), the batch payload series
    shows cold ≈ warm ≈ spec-sized, and ``index_bytes`` is what stayed
    on disk instead of crossing the pipes.
    """
    from repro.graph.compiled import CompiledGraph
    from repro.runtime import ExecutionContext, SolveRequest

    index = bench_index(family, n, cache_dir)
    compiled = CompiledGraph.load(index)
    problem = WASOProblem(graph=compiled.graph, k=10)
    install_message = pickle.dumps(
        ("graph_path", compiled.payload_token, compiled.disk_home, ())
    )

    def batch(seed0: int) -> list:
        return [
            SolveRequest(
                problem, "cbas-nd", seed0 + offset,
                dict(budget=60, m=10, stages=3),
            )
            for offset in range(4)
        ]

    with ExecutionContext(workers=2) as context:
        cold = context.solve_many(batch(0), mode="solve")
        warm = context.solve_many(batch(100), mode="solve")
    cold_extra = cold[0].stats.extra
    warm_extra = warm[0].stats.extra
    entry = {
        "n": n,
        "workers": 2,
        "index_bytes": sum(
            child.stat().st_size for child in index.iterdir()
        ),
        "path_install_bytes": len(install_message),
        "cold_batch_payload_bytes": cold_extra["batch_payload_bytes"],
        "cold_graph_installs": cold_extra["graph_installs"],
        "warm_batch_payload_bytes": warm_extra["batch_payload_bytes"],
        "warm_graph_installs": warm_extra["graph_installs"],
    }
    compiled.close()
    return entry


def record_mmap_residency(family: str, cache_dir=None) -> dict:
    """Measure the series for ``family`` and merge it into the bench JSON.

    Other top-level series (``sizes``, ``resident_solve``,
    ``serving_daemon``) and the other family's sub-series are preserved
    — each bench owns exactly its own key.
    """
    entries = {
        str(n): mmap_residency_entry(family, n, cache_dir)
        for n in MMAP_RESIDENCY_NS
    }
    merged: dict = {}
    if _BENCH_JSON.exists():
        merged = json.loads(_BENCH_JSON.read_text(encoding="utf-8"))
    merged.setdefault("mmap_residency", {})[family] = entries
    _BENCH_JSON.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return entries


def check_mmap_residency(family: str, cache_dir=None) -> list:
    """Machine-independent ``--check`` gate for the mmap series.

    Re-measures (compiling only on a cold cache) and fails when a path
    install exceeds :data:`MAX_PATH_INSTALL_BYTES` at any gated size, or
    when the warm batch re-installed anything.  Returns failure strings.
    """
    failures = []
    for n in MMAP_RESIDENCY_NS:
        entry = mmap_residency_entry(family, n, cache_dir)
        if entry["path_install_bytes"] > MAX_PATH_INSTALL_BYTES:
            failures.append(
                f"{family} n={n}: path install is "
                f"{entry['path_install_bytes']}B "
                f"(> {MAX_PATH_INSTALL_BYTES}B gate)"
            )
        if entry["warm_graph_installs"]:
            failures.append(
                f"{family} n={n}: warm batch re-installed the graph "
                f"({entry['warm_graph_installs']} installs; expected 0)"
            )
        if entry["cold_graph_installs"] != entry["workers"]:
            failures.append(
                f"{family} n={n}: cold batch performed "
                f"{entry['cold_graph_installs']} installs "
                f"(expected one per worker = {entry['workers']})"
            )
        print(
            f"mmap_residency {family} n={n}: "
            f"index {entry['index_bytes']}B on disk, "
            f"path install {entry['path_install_bytes']}B, "
            f"cold batch {entry['cold_batch_payload_bytes']}B "
            f"({entry['cold_graph_installs']} installs), "
            f"warm batch {entry['warm_batch_payload_bytes']}B "
            f"({entry['warm_graph_installs']} installs)"
        )
    return failures


def run_mmap_residency_cli(
    family: str, tables, argv=None, paper_scale=None
) -> int:
    """Shared ``__main__`` flow for the fig7/fig8 benches.

    Default run: regenerate the figure tables (``tables`` is the
    caller's print-the-figure thunk) *and* record the family's
    ``mmap_residency`` series.  ``--check``: only the
    machine-independent residency gate (exit 1 on failure).
    ``--paper-scale`` (fig7) runs the n=10⁶ demonstration.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description=f"figure bench + mmap residency series ({family})"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="machine-independent gate: path-install bytes <= "
        f"{MAX_PATH_INSTALL_BYTES} at n in {MMAP_RESIDENCY_NS} "
        "(compiles into the cache only when cold; does not rewrite "
        "BENCH_sampler.json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"compiled-index cache directory (default: {BENCH_CACHE})",
    )
    if paper_scale is not None:
        parser.add_argument(
            "--paper-scale",
            action="store_true",
            help="n=10^6 synthetic demonstration: compile to disk once, "
            "serve solve_many through workers, assert O(1) installs",
        )
    args = parser.parse_args(argv)
    if paper_scale is not None and getattr(args, "paper_scale", False):
        return paper_scale(args.cache_dir)
    if args.check:
        failures = check_mmap_residency(family, args.cache_dir)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print("mmap residency gate passed")
        return 0
    tables()
    record_mmap_residency(family, args.cache_dir)
    return 0
