"""Shared helpers for the figure-regeneration benches.

Every bench module regenerates one paper figure (or a panel group from
it): it runs the same algorithms over the same sweep the figure plots,
prints the series as a table, and asserts the figure's qualitative *shape*
claims.  Budgets follow the rule ``T = BUDGET_PER_K · k`` so the sampling
effort grows with the group size, as the paper's fixed-T experiments do
relative to their (much larger) graphs.

The benches run at laptop scale: graphs of ~600 nodes instead of the
paper's 90k–1.8M-node crawls (see DESIGN.md §3), with the same degree
regimes and score models.
"""

from __future__ import annotations

import statistics
from typing import Callable, Optional

from repro.algorithms.base import Solver
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.rgreedy import RGreedy
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

#: Seed used for every bench solver run (dataset seeds live in
#: repro.bench.datasets.BENCH_SEED).
RUN_SEED = 7

#: Sampling budget per unit of group size.
BUDGET_PER_K = 60

#: Number of OCBA / CE stages used by the staged solvers in benches.
STAGES = 8

#: Start-node count for the staged solvers (paper: well below n/k works).
START_NODES = 30


def budget_for(k: int) -> int:
    return BUDGET_PER_K * k


def standard_algorithms(k: int) -> dict[str, Solver]:
    """The paper's four-way comparison, configured for group size ``k``.

    RGreedy gets a smaller sample count because each of its samples costs
    O(frontier) willingness evaluations — exactly the cost structure the
    paper reports (RGreedy is ~10² slower at equal sample counts; giving
    it T/10 keeps bench runtimes sane while leaving it slower anyway).
    """
    t = budget_for(k)
    return {
        "DGreedy": DGreedy(),
        "RGreedy": RGreedy(budget=max(20, t // 10), m=15),
        "CBAS": CBAS(budget=t, m=START_NODES, stages=STAGES),
        "CBAS-ND": CBASND(budget=t, m=START_NODES, stages=STAGES),
    }


def sweep(
    table_quality: Optional[ExperimentTable],
    table_time: Optional[ExperimentTable],
    xs,
    problem_of: Callable[[object], WASOProblem],
    algorithms_of: Callable[[object], dict[str, Solver]],
    repeats: int = 1,
) -> None:
    """Run ``algorithms_of(x)`` on ``problem_of(x)`` for every sweep point.

    Quality is averaged over ``repeats`` solver seeds; time is the mean
    wall-clock per solve.
    """
    for x in xs:
        problem = problem_of(x)
        for name, solver in algorithms_of(x).items():
            qualities, times = [], []
            for repeat in range(repeats):
                result = solver.solve(problem, rng=RUN_SEED + repeat)
                qualities.append(result.willingness)
                times.append(result.stats.elapsed_seconds)
            if table_quality is not None:
                table_quality.add(name, x, statistics.fmean(qualities))
            if table_time is not None:
                table_time.add(name, x, statistics.fmean(times))


def assert_dominates(
    table: ExperimentTable,
    winner: str,
    loser: str,
    min_fraction_of_points: float = 0.6,
    slack: float = 1.0,
) -> None:
    """Shape check: ``winner`` beats ``loser`` on most sweep points.

    ``slack`` < 1 allows the winner to trail by that factor on the points
    it loses (randomized algorithms are noisy at bench scale).
    """
    win_series = table.series[winner]
    lose_series = table.series[loser]
    common = sorted(set(win_series.points) & set(lose_series.points))
    assert common, f"no common sweep points between {winner} and {loser}"
    wins = sum(
        1
        for x in common
        if win_series.points[x] >= lose_series.points[x] * slack
    )
    assert wins >= min_fraction_of_points * len(common), (
        f"{winner} beat {loser} on only {wins}/{len(common)} points:\n"
        + table.render()
    )
