"""Ablation: number of allocation stages r (DESIGN.md §5, item 5).

One stage means no reallocation at all (pure multi-start sampling with a
CE update that never feeds back); more stages let OCBA shift budget toward
promising start nodes and let the CE vectors sharpen — at the price of
smaller per-stage sample batches (noisier elite sets).

Expected shape: quality improves from r = 1 to moderate r and then
saturates; extreme r does not keep paying.
"""

import statistics

from common import RUN_SEED
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 600
K = 20
BUDGET = 1200
STAGE_COUNTS = (1, 2, 4, 8, 12)
REPEATS = 4


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    table = ExperimentTable(
        title=f"Ablation: stage count r (CBAS-ND, k={K}, T={BUDGET})",
        x_label="r",
    )
    for stages in STAGE_COUNTS:
        solver = CBASND(budget=BUDGET, m=30, stages=stages)
        values = [
            solver.solve(problem, rng=RUN_SEED + r).willingness
            for r in range(REPEATS)
        ]
        table.add("CBAS-ND", stages, statistics.fmean(values))
    return table


def test_ablation_stage_count(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()

    series = table.series["CBAS-ND"]
    # Multi-stage beats single-stage.
    multi_best = max(series.at(r) for r in STAGE_COUNTS if r > 1)
    assert multi_best >= series.at(1), table.render()
    # The best setting is an interior/moderate r, not necessarily the max:
    # verify saturation — the top two stage counts are within 25%.
    assert series.at(STAGE_COUNTS[-1]) >= series.at(STAGE_COUNTS[-2]) * 0.75


if __name__ == "__main__":
    run_experiment().show()
