"""Ablation: budget-allocation rule (DESIGN.md §5, item 1).

Compares three ways of spending the same total budget across start nodes:

* **even** — one stage, homogeneous split (the naive baseline the paper's
  §3.1 argues against);
* **OCBA (uniform model)** — the paper's staged Theorem-3 allocation;
* **OCBA (Gaussian model)** — the Appendix-A variant.

Expected shape: staged OCBA beats the even split (the whole point of
CBAS), and the two OCBA models land close to each other (Fig. 6(b)).
"""

import statistics

from common import RUN_SEED
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 600
KS = (10, 20)
BUDGET_PER_K = 60
REPEATS = 4


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    table = ExperimentTable(
        title="Ablation: budget allocation rule (CBAS-ND quality)",
        x_label="k",
    )
    for k in KS:
        problem = WASOProblem(graph=graph, k=k)
        budget = BUDGET_PER_K * k
        variants = {
            "even-split": CBASND(budget=budget, m=30, stages=1),
            "ocba-uniform": CBASND(budget=budget, m=30, stages=8),
            "ocba-gaussian": CBASND(
                budget=budget, m=30, stages=8, allocation="gaussian"
            ),
        }
        for name, solver in variants.items():
            values = [
                solver.solve(problem, rng=RUN_SEED + r).willingness
                for r in range(REPEATS)
            ]
            table.add(name, k, statistics.fmean(values))
    return table


def test_ablation_allocation(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show()

    for k in KS:
        even = table.series["even-split"].at(k)
        uniform = table.series["ocba-uniform"].at(k)
        gaussian = table.series["ocba-gaussian"].at(k)
        # Staged OCBA beats the naive even split.
        assert uniform >= even * 0.95, table.render()
        # The two OCBA models are close (Fig. 6(b) at ablation scale).
        assert min(uniform, gaussian) >= max(uniform, gaussian) * 0.7
    top = max(KS)
    assert table.series["ocba-uniform"].at(top) >= table.series[
        "even-split"
    ].at(top), table.render()


if __name__ == "__main__":
    run_experiment().show()
