"""Fig. 5(e,f): running time and quality vs total budget T (Facebook).

Paper claims reproduced as shape checks:

* quality rises with T, and CBAS-ND's curve rises fastest (optimal
  allocation of the extra budget);
* CBAS-ND's time is only slightly above CBAS's (the sort/update overhead);
  both are far below RGreedy at equal T.
"""

from common import RUN_SEED, assert_dominates
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.rgreedy import RGreedy
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, shape_nondecreasing
from repro.core.problem import WASOProblem

N = 600
K = 20
BUDGETS = (200, 500, 1000, 2000)
REPEATS = 3


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    quality = ExperimentTable(
        title=f"Fig 5(f): quality vs T (Facebook-like, k={K})", x_label="T"
    )
    times = ExperimentTable(
        title=f"Fig 5(e): time (s) vs T (Facebook-like, k={K})", x_label="T"
    )
    for t in BUDGETS:
        algorithms = {
            "CBAS": CBAS(budget=t, m=30, stages=8),
            "CBAS-ND": CBASND(budget=t, m=30, stages=8),
            # RGreedy's per-sample cost is O(frontier); a tenth of the
            # samples keeps the bench finite, as in the other figures.
            "RGreedy": RGreedy(budget=max(20, t // 10), m=15),
        }
        for name, solver in algorithms.items():
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = solver.solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, t, total_q / REPEATS)
            times.add(name, t, total_s / REPEATS)
    return quality, times


def test_fig5ef_budget(benchmark):
    quality, times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quality.show()
    times.show(fmt="{:.4f}")

    # Shape: more budget never hurts much (noise slack 15%).
    assert shape_nondecreasing(quality.series["CBAS-ND"], slack=0.15)
    # Shape: CBAS-ND dominates CBAS at every T.
    assert_dominates(quality, "CBAS-ND", "CBAS", min_fraction_of_points=0.75)
    # Shape: CBAS-ND gains more from budget than CBAS does.
    nd_gain = quality.series["CBAS-ND"].at(max(BUDGETS)) - quality.series[
        "CBAS-ND"
    ].at(min(BUDGETS))
    cbas_gain = quality.series["CBAS"].at(max(BUDGETS)) - quality.series[
        "CBAS"
    ].at(min(BUDGETS))
    assert nd_gain >= cbas_gain * 0.8, quality.render()
    # Shape: time grows with T for the staged solvers.
    assert shape_nondecreasing(times.series["CBAS-ND"], slack=0.2)


if __name__ == "__main__":
    q, t = run_experiment()
    q.show()
    t.show(fmt="{:.4f}")
