"""Fig. 5(d): CBAS-ND execution time with 1 / 2 / 4 / 8 workers.

The paper reports a ~7.6× speedup on 8 OpenMP threads.  CPython needs
processes instead of threads (GIL), so the reproduced claim is the
*shape*: wall-clock time decreases as workers are added, and multi-worker
runs beat the single-worker baseline.

Both parallel modes are measured side by side, each driven through the
runtime layer (:class:`~repro.runtime.ExecutionContext` owns all pools):

* ``time`` / ``quality`` / ``payload_bytes`` — the solve-level best-of
  mode (``mode="solve"``): the budget is split into independent whole
  solves.  One resident solve-level pool (sized for the largest sweep
  point) is created by an outer context and shared by every worker
  count, so the series measures solving rather than per-run process
  startup — and, because the pool keeps the detached graph arrays
  resident, the timed runs ship only O(1) specs.  ``payload_bytes``
  records each timed run's actual wire bytes (the solve-mode shipping
  the overhead tables used to undercount, now observable from
  ``SolveStats.extra`` via the shared residency accounting).
* ``stage_time`` / ``stage_quality`` — the stage-level sharded-CE mode
  (``mode="stage"``): one solve whose per-stage draws are sharded across
  the context's resident stage pool.  Each context is warmed with an
  untimed solve (residency + OS-level warmup) before the timed run,
  mirroring the pool reuse of the best-of series.
"""

import os
import time

from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, geometric_speedup
from repro.core.problem import WASOProblem
from repro.runtime import ExecutionContext

N = 600
K = 20
BUDGET = 1600
STAGES = 6
M = 20
WORKER_COUNTS = (1, 2, 4, 8)


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    problem.compiled()  # freeze once, shared by every run below
    table = ExperimentTable(
        title=f"Fig 5(d): CBAS-ND time (s) vs workers (k={K}, T={BUDGET})",
        x_label="workers",
    )
    usable = [w for w in WORKER_COUNTS if w <= (os.cpu_count() or 1)]
    kwargs = dict(budget=BUDGET, m=M, stages=STAGES)

    # --- solve-level best-of: one persistent shared pool for all counts --
    with ExecutionContext(workers=max(usable)) as shared:
        # Warm the pool (process spawn + first-import cost) outside
        # every timed region.
        shared.solve(
            problem,
            "cbas-nd",
            rng=1,
            mode="solve",
            budget=max(usable) * 4,
            m=M,
            stages=2,
        )
        for workers in usable:
            with ExecutionContext(
                workers=workers, solve_pool=shared.solve_pool()
            ) as context:
                mode = "solve" if workers > 1 else "serial"
                started = time.perf_counter()
                result = context.solve(
                    problem, "cbas-nd", rng=3, mode=mode, **kwargs
                )
                elapsed = time.perf_counter() - started
            table.add("time", workers, elapsed)
            table.add("quality", workers, result.willingness)
            # Wire bytes of the timed run: with the graph resident from
            # the warm-up, only specs + seeds + solver configs ship.
            table.add(
                "payload_bytes",
                workers,
                result.stats.extra.get("batch_payload_bytes", 0),
            )
            best_of_result = result

        # --- crash-recovery overhead: the same warm max-worker run with
        # one worker SIGKILLed mid-dispatch.  The seeds travel with the
        # chunks, so the recovered result must be bit-identical; the
        # extra cost (respawn + graph re-ship + redraw) is the series'
        # overhead point.
        if max(usable) > 1:
            from repro.parallel import NEXT_RPC, FaultPlan

            pool = shared.solve_pool()
            pool.fault_plan = FaultPlan(kills=[(0, NEXT_RPC)])
            try:
                with ExecutionContext(
                    workers=max(usable), solve_pool=pool
                ) as context:
                    started = time.perf_counter()
                    recovered = context.solve(
                        problem, "cbas-nd", rng=3, mode="solve", **kwargs
                    )
                    elapsed = time.perf_counter() - started
            finally:
                pool.fault_plan = None
            assert recovered.willingness == best_of_result.willingness
            assert recovered.stats.extra["worker_restarts"] >= 1
            table.add("crash_recovery_time", max(usable), elapsed)

    # --- stage-level sharded CE: one solve, draws sharded per stage ---
    for workers in usable:
        mode = "stage" if workers > 1 else "serial"
        with ExecutionContext(workers=workers) as context:
            # Warm-up solve: index freeze, seed caches, and (sharded)
            # pool startup + payload residency.
            context.solve(problem, "cbas-nd", rng=1, mode=mode, **kwargs)
            started = time.perf_counter()
            result = context.solve(
                problem, "cbas-nd", rng=3, mode=mode, **kwargs
            )
            elapsed = time.perf_counter() - started
        table.add("stage_time", workers, elapsed)
        table.add("stage_quality", workers, result.willingness)
    return table


def test_fig5d_parallel_speedup(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show(fmt="{:.3f}")

    times = table.series["time"]
    workers = times.xs()
    if len(workers) < 2:
        return  # single-core machine: nothing to compare
    baseline = times.at(1)
    speedups = geometric_speedup(
        [times.at(w) for w in workers], baseline=baseline
    )
    print(f"best-of speedups vs 1 worker: {[f'{s:.2f}x' for s in speedups]}")
    if "crash_recovery_time" in table.series:
        recovery = table.series["crash_recovery_time"]
        clean = times.at(max(workers))
        overhead = recovery.at(max(workers)) - clean
        print(
            f"crash-recovery overhead at {max(workers)} workers: "
            f"{overhead * 1e3:+.1f} ms over a {clean * 1e3:.1f} ms clean run"
        )
    stage_times = table.series["stage_time"]
    stage_speedups = geometric_speedup(
        [stage_times.at(w) for w in workers], baseline=stage_times.at(1)
    )
    print(
        "stage-sharded speedups vs serial: "
        f"{[f'{s:.2f}x' for s in stage_speedups]}"
    )
    # Shape: the best multi-worker run beats the serial baseline, in
    # both parallel modes.
    assert min(times.at(w) for w in workers[1:]) < baseline
    assert min(stage_times.at(w) for w in workers[1:]) < stage_times.at(1)
    # Shape: quality does not collapse when the budget is split —
    # and the stage-sharded mode refits from the full elite set, so its
    # quality must stay comparable to the serial solve too.
    for name in ("quality", "stage_quality"):
        qualities = table.series[name]
        assert min(qualities.ys()) >= max(qualities.ys()) * 0.5


if __name__ == "__main__":
    run_experiment().show(fmt="{:.3f}")
