"""Fig. 5(d): CBAS-ND execution time with 1 / 2 / 4 / 8 workers.

The paper reports a ~7.6× speedup on 8 OpenMP threads.  CPython needs
processes instead of threads (GIL), which adds per-worker startup cost, so
the reproduced claim is the *shape*: wall-clock time decreases as workers
are added, and multi-worker runs beat the single-worker baseline.
"""

import os
import time

from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, geometric_speedup
from repro.core.problem import WASOProblem
from repro.parallel import ParallelSolver

N = 600
K = 20
BUDGET = 1600
WORKER_COUNTS = (1, 2, 4, 8)


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    table = ExperimentTable(
        title=f"Fig 5(d): CBAS-ND time (s) vs workers (k={K}, T={BUDGET})",
        x_label="workers",
    )
    usable = [w for w in WORKER_COUNTS if w <= (os.cpu_count() or 1)]
    for workers in usable:
        solver = ParallelSolver(
            budget=BUDGET, workers=workers, m=20, stages=6
        )
        started = time.perf_counter()
        result = solver.solve(problem, rng=3)
        elapsed = time.perf_counter() - started
        table.add("time", workers, elapsed)
        table.add("quality", workers, result.willingness)
    return table


def test_fig5d_parallel_speedup(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show(fmt="{:.3f}")

    times = table.series["time"]
    workers = times.xs()
    if len(workers) < 2:
        return  # single-core machine: nothing to compare
    baseline = times.at(1)
    speedups = geometric_speedup(
        [times.at(w) for w in workers], baseline=baseline
    )
    print(f"speedups vs 1 worker: {[f'{s:.2f}x' for s in speedups]}")
    # Shape: the best multi-worker run beats the serial baseline.
    assert min(times.at(w) for w in workers[1:]) < baseline
    # Shape: quality does not collapse when the budget is split.
    qualities = table.series["quality"]
    assert min(qualities.ys()) >= max(qualities.ys()) * 0.5


if __name__ == "__main__":
    run_experiment().show(fmt="{:.3f}")
