"""Fig. 5(d): CBAS-ND execution time with 1 / 2 / 4 / 8 workers.

The paper reports a ~7.6× speedup on 8 OpenMP threads.  CPython needs
processes instead of threads (GIL), so the reproduced claim is the
*shape*: wall-clock time decreases as workers are added, and multi-worker
runs beat the single-worker baseline.

Both parallel modes are measured side by side, each driven through the
runtime layer (:class:`~repro.runtime.ExecutionContext` owns all pools):

* ``time`` / ``quality`` / ``payload_bytes`` — the solve-level best-of
  mode (``mode="solve"``): the budget is split into independent whole
  solves.  One resident solve-level pool (sized for the largest sweep
  point) is created by an outer context and shared by every worker
  count, so the series measures solving rather than per-run process
  startup — and, because the pool keeps the detached graph arrays
  resident, the timed runs ship only O(1) specs.  ``payload_bytes``
  records each timed run's actual wire bytes (the solve-mode shipping
  the overhead tables used to undercount, now observable from
  ``SolveStats.extra`` via the shared residency accounting).
* ``stage_time`` / ``stage_quality`` — the stage-level sharded-CE mode
  (``mode="stage"``): one solve whose per-stage draws are sharded across
  the context's resident stage pool.  Each context is warmed with an
  untimed solve (residency + OS-level warmup) before the timed run,
  mirroring the pool reuse of the best-of series.

Streaming-mutation series (``graph_patch`` in ``BENCH_sampler.json``):
on the n=10k graph, an :class:`~repro.online.OnlinePlanner` with
``prune_declined=True`` plans once on a cold 2-worker stage pool (the
full detached-arrays install) and replans once after a decline — the
decline patches the frozen index in place, so the warm replan ships
only the sparse ``graph_patch`` record.  The recorded wire bytes are
pure pickle sizes, deterministic on any machine, so ``--check``
re-measures and gates *properties* rather than wall clock: the patch
must stay under 5% of the full install, and the warm patched replan
must perform zero graph installs.
"""

import json
import os
import time
from pathlib import Path

from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, dump_json, geometric_speedup
from repro.core.problem import WASOProblem
from repro.runtime import ExecutionContext

N = 600
K = 20
BUDGET = 1600
STAGES = 6
M = 20
WORKER_COUNTS = (1, 2, 4, 8)

#: The streaming-mutation series runs on the perf bench's big graph:
#: at n=10k the full install is megabytes while a decline's patch is
#: hundreds of bytes, so the gate has real headroom.
PATCH_N = 10_000
PATCH_WORKERS = 2
#: Patch wire bytes must stay under this fraction of the full install.
PATCH_FRACTION_GATE = 0.05

JSON_PATH = Path(__file__).parent.parent / "BENCH_sampler.json"


def run_experiment() -> ExperimentTable:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    problem.compiled()  # freeze once, shared by every run below
    table = ExperimentTable(
        title=f"Fig 5(d): CBAS-ND time (s) vs workers (k={K}, T={BUDGET})",
        x_label="workers",
    )
    usable = [w for w in WORKER_COUNTS if w <= (os.cpu_count() or 1)]
    kwargs = dict(budget=BUDGET, m=M, stages=STAGES)

    # --- solve-level best-of: one persistent shared pool for all counts --
    with ExecutionContext(workers=max(usable)) as shared:
        # Warm the pool (process spawn + first-import cost) outside
        # every timed region.
        shared.solve(
            problem,
            "cbas-nd",
            rng=1,
            mode="solve",
            budget=max(usable) * 4,
            m=M,
            stages=2,
        )
        for workers in usable:
            with ExecutionContext(
                workers=workers, solve_pool=shared.solve_pool()
            ) as context:
                mode = "solve" if workers > 1 else "serial"
                started = time.perf_counter()
                result = context.solve(
                    problem, "cbas-nd", rng=3, mode=mode, **kwargs
                )
                elapsed = time.perf_counter() - started
            table.add("time", workers, elapsed)
            table.add("quality", workers, result.willingness)
            # Wire bytes of the timed run: with the graph resident from
            # the warm-up, only specs + seeds + solver configs ship.
            table.add(
                "payload_bytes",
                workers,
                result.stats.extra.get("batch_payload_bytes", 0),
            )
            best_of_result = result

        # --- crash-recovery overhead: the same warm max-worker run with
        # one worker SIGKILLed mid-dispatch.  The seeds travel with the
        # chunks, so the recovered result must be bit-identical; the
        # extra cost (respawn + graph re-ship + redraw) is the series'
        # overhead point.
        if max(usable) > 1:
            from repro.parallel import NEXT_RPC, FaultPlan

            pool = shared.solve_pool()
            pool.fault_plan = FaultPlan(kills=[(0, NEXT_RPC)])
            try:
                with ExecutionContext(
                    workers=max(usable), solve_pool=pool
                ) as context:
                    started = time.perf_counter()
                    recovered = context.solve(
                        problem, "cbas-nd", rng=3, mode="solve", **kwargs
                    )
                    elapsed = time.perf_counter() - started
            finally:
                pool.fault_plan = None
            assert recovered.willingness == best_of_result.willingness
            assert recovered.stats.extra["worker_restarts"] >= 1
            table.add("crash_recovery_time", max(usable), elapsed)

    # --- stage-level sharded CE: one solve, draws sharded per stage ---
    for workers in usable:
        mode = "stage" if workers > 1 else "serial"
        with ExecutionContext(workers=workers) as context:
            # Warm-up solve: index freeze, seed caches, and (sharded)
            # pool startup + payload residency.
            context.solve(problem, "cbas-nd", rng=1, mode=mode, **kwargs)
            started = time.perf_counter()
            result = context.solve(
                problem, "cbas-nd", rng=3, mode=mode, **kwargs
            )
            elapsed = time.perf_counter() - started
        table.add("stage_time", workers, elapsed)
        table.add("stage_quality", workers, result.willingness)
    return table


def measure_graph_patch() -> dict:
    """The ``graph_patch`` series: sparse deltas vs a full re-install.

    Cold plan → full detached-arrays install to every stage worker;
    decline → ``prune_declined`` patches the frozen index in place;
    warm replan → only the ``graph_patch`` record ships.  All byte
    counts are deterministic pickle sizes.
    """
    from repro.online import OnlinePlanner

    graph = bench_graph("facebook", PATCH_N)
    problem = WASOProblem(graph=graph, k=K)
    with ExecutionContext(workers=PATCH_WORKERS, mode="stage") as context:
        with OnlinePlanner(
            problem,
            solver=context.make_solver("cbas-nd", budget=160, m=10, stages=2),
            rng=5,
            prune_declined=True,
            context=context,
        ) as planner:
            group = planner.plan()
            cold = planner.last_result.stats.extra
            full_install_bytes = cold["batch_payload_bytes"]
            installs_before = context.stage_pool().installs
            victim = next(iter(sorted(group.members, key=repr)))
            pruned_edges = graph.degree(victim)
            planner.record_decline(victim)
            warm = planner.last_result.stats.extra
            patch_bytes = warm.get("graph_patch_bytes", 0)
            replan_installs = context.stage_pool().installs - installs_before
            assert not warm.get("graph_shipped"), warm
    return {
        "n": PATCH_N,
        "workers": PATCH_WORKERS,
        "full_install_bytes": full_install_bytes,
        "patch_bytes": patch_bytes,
        "patch_fraction": patch_bytes / full_install_bytes,
        "pruned_edges": pruned_edges,
        "warm_replan_graph_installs": replan_installs,
    }


def check_graph_patch(fresh: dict, committed: "dict | None") -> "list[str]":
    """Machine-independent gates for the streaming-mutation series."""
    problems = []
    if fresh["warm_replan_graph_installs"] != 0:
        problems.append(
            "warm patched replan performed "
            f"{fresh['warm_replan_graph_installs']} graph installs "
            "(expected 0: a decline must ship a sparse patch)"
        )
    limit = PATCH_FRACTION_GATE * fresh["full_install_bytes"]
    if fresh["patch_bytes"] >= limit:
        problems.append(
            f"graph_patch bytes {fresh['patch_bytes']} not under "
            f"{PATCH_FRACTION_GATE:.0%} of the full install "
            f"({fresh['full_install_bytes']}B)"
        )
    if committed:
        # Pickle sizes are deterministic: any growth is a regression.
        for key in ("patch_bytes", "full_install_bytes"):
            if fresh[key] > committed.get(key, fresh[key]):
                problems.append(
                    f"graph_patch.{key} grew: {committed[key]} -> "
                    f"{fresh[key]}"
                )
    return problems


def write_graph_patch(series: dict) -> None:
    """Merge the series into ``BENCH_sampler.json`` (other benches own
    their own top-level keys in the same file — never drop them)."""
    merged: dict = {}
    if JSON_PATH.exists():
        with open(JSON_PATH, encoding="utf-8") as handle:
            merged = json.load(handle)
    merged["graph_patch"] = series
    dump_json(str(JSON_PATH), merged)


def test_fig5d_parallel_speedup(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table.show(fmt="{:.3f}")

    times = table.series["time"]
    workers = times.xs()
    if len(workers) < 2:
        return  # single-core machine: nothing to compare
    baseline = times.at(1)
    speedups = geometric_speedup(
        [times.at(w) for w in workers], baseline=baseline
    )
    print(f"best-of speedups vs 1 worker: {[f'{s:.2f}x' for s in speedups]}")
    if "crash_recovery_time" in table.series:
        recovery = table.series["crash_recovery_time"]
        clean = times.at(max(workers))
        overhead = recovery.at(max(workers)) - clean
        print(
            f"crash-recovery overhead at {max(workers)} workers: "
            f"{overhead * 1e3:+.1f} ms over a {clean * 1e3:.1f} ms clean run"
        )
    stage_times = table.series["stage_time"]
    stage_speedups = geometric_speedup(
        [stage_times.at(w) for w in workers], baseline=stage_times.at(1)
    )
    print(
        "stage-sharded speedups vs serial: "
        f"{[f'{s:.2f}x' for s in stage_speedups]}"
    )
    # Shape: the best multi-worker run beats the serial baseline, in
    # both parallel modes.
    assert min(times.at(w) for w in workers[1:]) < baseline
    assert min(stage_times.at(w) for w in workers[1:]) < stage_times.at(1)
    # Shape: quality does not collapse when the budget is split —
    # and the stage-sharded mode refits from the full elite set, so its
    # quality must stay comparable to the serial solve too.
    for name in ("quality", "stage_quality"):
        qualities = table.series[name]
        assert min(qualities.ys()) >= max(qualities.ys()) * 0.5


def _print_graph_patch(series: dict) -> None:
    print(
        f"graph_patch n={series['n']} workers={series['workers']}: "
        f"full install {series['full_install_bytes']}B -> decline patch "
        f"{series['patch_bytes']}B ({series['patch_fraction']:.2%}), "
        f"warm replan installs {series['warm_replan_graph_installs']}"
    )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure the graph_patch series and gate it (patch "
        "bytes < 5%% of the full install, zero installs on the warm "
        "patched replan) against the committed BENCH_sampler.json "
        "without overwriting it; exit 1 on failure",
    )
    args = parser.parse_args()

    if args.check:
        committed = None
        if JSON_PATH.exists():
            with open(JSON_PATH, encoding="utf-8") as handle:
                committed = json.load(handle).get("graph_patch")
        fresh = measure_graph_patch()
        _print_graph_patch(fresh)
        problems = check_graph_patch(fresh, committed)
        if problems:
            print("\nREGRESSIONS in the graph_patch series:")
            for line in problems:
                print(f"  - {line}")
            sys.exit(1)
        print("\ngraph_patch gates hold")
    else:
        run_experiment().show(fmt="{:.3f}")
        series = measure_graph_patch()
        _print_graph_patch(series)
        write_graph_patch(series)
        print(f"wrote {JSON_PATH}")
