"""Fig. 5(g,h): CBAS-ND quality vs smoothing w and elite quantile rho.

Paper claims reproduced as shape checks:

* (g) w = 0.9 produces the best (or near-best) quality for every k —
  strong smoothing moves the vector decisively toward the elites;
* (h) quality is *not* inversely proportional to rho: small rho fits to
  very few samples and converges prematurely, so the curve is
  non-monotone (the paper highlights exactly this).
"""

from common import RUN_SEED
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 600
KS = (10, 20, 30)
WS = (0.1, 0.3, 0.5, 0.7, 0.9)
RHOS = (0.1, 0.3, 0.5, 0.7, 0.9)
REPEATS = 3


def _mean_quality(problem, **kwargs) -> float:
    total = 0.0
    for repeat in range(REPEATS):
        solver = CBASND(m=30, stages=8, **kwargs)
        total += solver.solve(problem, rng=RUN_SEED + repeat).willingness
    return total / REPEATS


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("facebook", N)
    by_w = ExperimentTable(
        title="Fig 5(g): CBAS-ND quality vs smoothing w", x_label="w"
    )
    by_rho = ExperimentTable(
        title="Fig 5(h): CBAS-ND quality vs elite quantile rho",
        x_label="rho",
    )
    for k in KS:
        problem = WASOProblem(graph=graph, k=k)
        budget = 50 * k
        for w in WS:
            by_w.add(
                f"k={k}",
                w,
                _mean_quality(problem, budget=budget, smoothing=w),
            )
        for rho in RHOS:
            by_rho.add(
                f"k={k}",
                rho,
                _mean_quality(problem, budget=budget, rho=rho),
            )
    return by_w, by_rho


def test_fig5gh_ce_parameters(benchmark):
    by_w, by_rho = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_w.show()
    by_rho.show()

    for k in KS:
        series = by_w.series[f"k={k}"]
        best = max(series.ys())
        # Shape: substantial smoothing is where the optimum lives — the
        # best of {0.5, 0.7, 0.9} reaches the global best.  (The paper's
        # peak is at 0.9; ours sits near 0.5 — see EXPERIMENTS.md — but
        # the qualitative claim "strong smoothing helps" holds.)
        strong_best = max(series.at(0.5), series.at(0.7), series.at(0.9))
        assert strong_best >= best * 0.95, by_w.render()
    # Shape: for the larger groups, smoothing clearly beats near-none.
    for k in (20, 30):
        series = by_w.series[f"k={k}"]
        strong_best = max(series.at(0.5), series.at(0.7), series.at(0.9))
        assert strong_best >= series.at(0.1) * 1.05, by_w.render()


if __name__ == "__main__":
    w_table, rho_table = run_experiment()
    w_table.show()
    rho_table.show()
