"""Fig. 5(i,j): time and quality vs the number of start nodes m (Facebook).

Paper claims reproduced as shape checks:

* quality converges well before m reaches n/k (the paper reduces running
  time to 20% by using m = 500 instead of 2000 at almost equal quality);
* running time grows with m for the staged solvers.
"""

from common import RUN_SEED
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

N = 600
K = 10  # n/k = 60
MS = (5, 15, 30, 60)
BUDGET = 900
REPEATS = 3


def run_experiment() -> tuple[ExperimentTable, ExperimentTable]:
    graph = bench_graph("facebook", N)
    problem = WASOProblem(graph=graph, k=K)
    quality = ExperimentTable(
        title=f"Fig 5(j): quality vs m (Facebook-like, k={K})", x_label="m"
    )
    times = ExperimentTable(
        title=f"Fig 5(i): time (s) vs m (Facebook-like, k={K})", x_label="m"
    )
    for m in MS:
        for name, factory in (
            ("CBAS", lambda: CBAS(budget=BUDGET, m=m, stages=6)),
            ("CBAS-ND", lambda: CBASND(budget=BUDGET, m=m, stages=6)),
        ):
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = factory().solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, m, total_q / REPEATS)
            times.add(name, m, total_s / REPEATS)
    return quality, times


def test_fig5ij_start_nodes(benchmark):
    quality, times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quality.show()
    times.show(fmt="{:.4f}")

    nd = quality.series["CBAS-ND"]
    # Shape: quality converges before m = n/k — the mid-sweep value is
    # already within 20% of the full-m value.
    assert nd.at(30) >= nd.at(60) * 0.8, quality.render()
    # Shape: too few start nodes is clearly worse than converged m.
    assert max(nd.at(30), nd.at(60)) >= nd.at(5) * 0.95, quality.render()


if __name__ == "__main__":
    q, t = run_experiment()
    q.show()
    t.show(fmt="{:.4f}")
