"""Tier-2 perf benchmark: compiled sampling kernel vs dict-based reference.

Measures, on synthetic Facebook-regime graphs of n ∈ {1k, 10k}:

* ``add_delta`` micro-kernel throughput (calls/sec) for both evaluators —
  a tracking metric: with pair weights cached, the dict path is already
  near-optimal for single id-keyed probes, so no speedup is asserted
  here (the compiled layout's win is the sampler's int-indexed loop,
  where generation stamps replace hashing entirely);
* raw sampler ``draw`` throughput (samples/sec, uniform expansion from the
  CBAS start-node pool) for both paths;
* end-to-end uniform CBAS solve throughput (samples drawn per second of
  solve time) for both engines — this is where the compiled index's
  amortization (frozen evaluator, O(1) start ranking, cached seed state,
  skipped per-draw connectivity BFS) compounds with the fast kernel;
* end-to-end CBAS-ND solve throughput for both engines — this adds the
  cross-entropy machinery on top: the elite refit after every stage and
  the weighted frontier draw, which the compiled engine serves from the
  array-backed ``SelectionProbabilities`` (one list index per frontier
  slot, elite counts off ``Sample.indices``) versus the reference
  engine's per-node dict probes;
* end-to-end CBAS and CBAS-ND throughput for the **vector** engine —
  the numpy stage-batched kernel (``repro.vector``), which replaces the
  per-draw expansion loop with one batched kernel call per OCBA stage.
  Its solutions are not bit-identical to the scalar engines (positional
  Philox randomness, reassociated float sums), so no
  ``identical_solutions`` check applies; the differential oracle lives
  in ``tests/test_vector.py``;
* pool worker payload sizes: the detached compiled-arrays payload
  (``WASOProblem.detached()``) versus the historical dict-graph pickle
  — gated on the slim number only, since the resident pools never ship
  the dict graph (and a detached problem has no dict size at all);
* the resident serving session (``resident_solve``): wire-level payload
  bytes of a ``solve_many`` session on the n=10k graph — the first
  batch installs the detached arrays once per worker, the second batch
  and an interleaved replan ship only O(1) specs, so the per-batch
  payload series drops from megabytes to hundreds of bytes;
* stage-sharded CBAS-ND (``repro.parallel.stage_pool``) wall clock on
  one large n=10k solve (T=3200, 4 workers, persistent pool, payload
  resident before timing) versus the serial compiled engine — the
  speedup the solve-level best-of pool cannot deliver by construction.

Results are persisted to ``BENCH_sampler.json`` next to the repo root so
future PRs can diff against them.  Acceptance gates, all measured in the
same run: the compiled engine delivers ≥3× samples/sec for uniform CBAS
expansion on the n=10k graph, ≥2× for CBAS-ND on the n=10k graph, the
vector engine ≥5× over the dict reference for CBAS-ND on the n=10k
graph, the
slim worker payload is strictly smaller than the dict-graph pickle, the
resident session performs exactly one graph install per (graph, worker)
pair, both engines return identical seeded solutions, and — on machines
with at least 4 CPUs — the stage-sharded solve beats the serial wall
clock by ≥1.5× (machines with fewer cores record the numbers without
gating, matching ``bench_fig5_parallel``'s convention).

Regression checking: ``python benchmarks/bench_perf_sampler.py --check``
re-measures and compares against the *committed* ``BENCH_sampler.json``
without overwriting it, failing (exit 1) on any throughput metric more
than 20% below the baseline or on growth of any shipped payload byte
count (the slim arrays and the resident-session series; pickle sizes
are deterministic, so any growth is a real regression).  Payload bytes
are also machine-independent, so the tier-2 marker exposes them as a
standalone gate: ``pytest benchmarks/ -m tier2`` runs the payload
regression check (plus the multi-core wall-clock gates where the CPUs
exist) — the CI job documented in ROADMAP.md.  Throughput baselines are
machine-specific — regenerate them (run without ``--check``) when the
hardware changes.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.sampling import ExpansionSampler, seed_for_start
from repro.algorithms.start_nodes import select_start_nodes
from repro.bench.datasets import bench_graph
from repro.bench.harness import dump_json
from repro.core.problem import WASOProblem
from repro.core.willingness import evaluator_for
from repro.parallel.pool import worker_payload_bytes
from repro.runtime import ExecutionContext

NS = (1000, 10000)
K = 10
START_NODES = 30
DRAWS_PER_START = {1000: 60, 10000: 60}
ADD_DELTA_CALLS = 20_000
CBAS_BUDGET = 600
CBASND_BUDGET = 600
CBASND_STAGES = 6
STAGE_PARALLEL_N = 10000
STAGE_PARALLEL_BUDGET = 3200
STAGE_PARALLEL_WORKERS = 4
RESIDENT_N = 10000
RESIDENT_WORKERS = 2
RESIDENT_REQUESTS = 6
RESIDENT_BUDGET = 60
JSON_PATH = Path(__file__).parent.parent / "BENCH_sampler.json"

#: Acceptance gate for the n=10k uniform-CBAS expansion speedup.
MIN_CBAS_SPEEDUP = 3.0
#: Acceptance gate for the n=10k CBAS-ND (CE update + weighted frontier).
MIN_CBASND_SPEEDUP = 2.0
#: Acceptance gate for the vector engine's n=10k CBAS-ND solve over the
#: dict reference path (the PR-7 tentpole number).
MIN_VECTOR_CBASND_SPEEDUP = 5.0
#: Acceptance gate for the stage-sharded n=10k solve (needs >= 4 CPUs).
MIN_STAGE_PARALLEL_SPEEDUP = 1.5
#: --check fails when a throughput metric drops below baseline by more
#: than this fraction.
THROUGHPUT_TOLERANCE = 0.2


def _bench_add_delta(problem: WASOProblem, engine: str) -> float:
    """add_delta calls/sec against a fixed random group."""
    graph = problem.graph
    evaluator = evaluator_for(graph, engine)
    rng = random.Random(11)
    nodes = graph.node_list()
    group = set(rng.sample(nodes, K))
    probes = [node for node in rng.choices(nodes, k=500) if node not in group]
    add_delta = evaluator.add_delta
    calls = 0
    started = time.perf_counter()
    while calls < ADD_DELTA_CALLS:
        for node in probes:
            add_delta(node, group)
        calls += len(probes)
    elapsed = time.perf_counter() - started
    return calls / elapsed


def _bench_draw(problem: WASOProblem, engine: str, n: int) -> float:
    """Uniform draw samples/sec from the CBAS start-node pool."""
    evaluator = evaluator_for(problem.graph, engine)
    sampler = ExpansionSampler(problem, evaluator)
    starts = select_start_nodes(problem, evaluator, START_NODES)
    seeds = [seed_for_start(problem, start) for start in starts]
    rng = random.Random(7)
    for seed in seeds:  # warm caches outside the timed region
        sampler.draw(seed, rng)
    per_start = DRAWS_PER_START[n]
    drawn = 0
    started = time.perf_counter()
    for seed in seeds:
        for _ in range(per_start):
            if sampler.draw(seed, rng) is not None:
                drawn += 1
    elapsed = time.perf_counter() - started
    return drawn / elapsed


def _bench_cbas(problem: WASOProblem, engine: str) -> tuple[float, object]:
    """End-to-end uniform CBAS: (samples/sec of solve time, solution)."""
    solver = CBAS(budget=CBAS_BUDGET, m=START_NODES, stages=8, engine=engine)
    solver.solve(problem, rng=1)  # warm-up solve
    best_rate, solution = 0.0, None
    for _ in range(3):
        started = time.perf_counter()
        result = solver.solve(problem, rng=7)
        elapsed = time.perf_counter() - started
        best_rate = max(best_rate, result.stats.samples_drawn / elapsed)
        solution = result
    return best_rate, solution


def _bench_cbas_nd(problem: WASOProblem, engine: str) -> tuple[float, object]:
    """End-to-end CBAS-ND: CE elite refit + weighted frontier draws."""
    solver = CBASND(
        budget=CBASND_BUDGET,
        m=START_NODES,
        stages=CBASND_STAGES,
        engine=engine,
    )
    solver.solve(problem, rng=1)  # warm-up solve
    best_rate, solution = 0.0, None
    for _ in range(3):
        started = time.perf_counter()
        result = solver.solve(problem, rng=7)
        elapsed = time.perf_counter() - started
        best_rate = max(best_rate, result.stats.samples_drawn / elapsed)
        solution = result
    return best_rate, solution


def _bench_stage_parallel(problem: WASOProblem) -> dict:
    """Wall clock of one big CBAS-ND solve: serial vs stage-sharded.

    Both sides get one untimed warm-up solve (index freeze, seed caches,
    and — for the sharded engine — pool startup and payload residency,
    which a persistent pool amortizes across solves) and then keep the
    best of three timed solves.
    """

    def best_wall(solver) -> tuple[float, object]:
        solver.solve(problem, rng=1)  # warm-up
        best, result = float("inf"), None
        for _ in range(3):
            started = time.perf_counter()
            outcome = solver.solve(problem, rng=7)
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best, result = elapsed, outcome
        return best, result

    serial_solver = CBASND(
        budget=STAGE_PARALLEL_BUDGET, m=START_NODES, stages=CBASND_STAGES
    )
    serial_wall, serial_result = best_wall(serial_solver)
    with ExecutionContext(
        workers=STAGE_PARALLEL_WORKERS, mode="stage"
    ) as context:
        sharded_solver = context.make_solver(
            "cbas-nd",
            budget=STAGE_PARALLEL_BUDGET,
            m=START_NODES,
            stages=CBASND_STAGES,
        )
        sharded_wall, sharded_result = best_wall(sharded_solver)
    extra = sharded_result.stats.extra
    return {
        "n": STAGE_PARALLEL_N,
        "budget": STAGE_PARALLEL_BUDGET,
        "stages": CBASND_STAGES,
        "workers": STAGE_PARALLEL_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "serial_seconds": serial_wall,
        "sharded_seconds": sharded_wall,
        "speedup": serial_wall / sharded_wall,
        "serial_willingness": serial_result.willingness,
        "sharded_willingness": sharded_result.willingness,
        # Shard-protocol overhead (ROADMAP "overhead curve"): worker
        # round trips and per-stage CE-patch bytes of the timed solve.
        "shard_rpcs": extra.get("shard_rpcs"),
        "shard_patch_bytes": extra.get("shard_patch_bytes"),
    }


def _bench_resident_solve(problem: WASOProblem) -> dict:
    """Wire-level payload series of a resident serving session.

    Drives ``solve_many`` twice plus an interleaved replan over the same
    problem through one :class:`ExecutionContext` and records what each
    step actually pickled onto the worker pipes: the first batch
    installs the detached graph arrays exactly once per worker, the
    second batch and the replan ship only O(1) specs.  The byte counts
    are deterministic (pure pickle sizes), so ``--check`` and the tier-2
    payload gate treat any growth as a regression.
    """
    from repro.online import OnlinePlanner
    from repro.runtime import SolveRequest

    slim = worker_payload_bytes(problem)["compiled_arrays_bytes"]

    def batch():
        return [
            SolveRequest(
                problem, "cbas-nd", seed,
                dict(budget=RESIDENT_BUDGET, m=10, stages=3),
            )
            for seed in range(RESIDENT_REQUESTS)
        ]

    with ExecutionContext(workers=RESIDENT_WORKERS) as context:
        first = context.solve_many(batch(), mode="solve")
        installs_first = context.solve_pool().installs
        with OnlinePlanner(
            problem,
            solver=context.make_solver("cbas-nd", budget=80, m=10, stages=2),
            rng=5,
            context=context,
        ) as planner:
            group = planner.plan()
            planner.record_decline(next(iter(sorted(group.members))))
        installs_replan = context.solve_pool().installs
        second = context.solve_many(batch(), mode="solve")
        installs_second = context.solve_pool().installs
        # A warm forced-solve-mode single solve exercises the resident
        # best-of path non-vacuously (the planner's small replans route
        # serial by design, so they could never re-ship anything): the
        # graph must already be resident in both workers.
        warm = context.solve(
            problem, "cbas-nd", rng=9, mode="solve",
            budget=RESIDENT_BUDGET, m=10, stages=3,
        )
    first_extra = first[0].stats.extra
    second_extra = second[0].stats.extra
    return {
        "n": RESIDENT_N,
        "workers": RESIDENT_WORKERS,
        "requests": RESIDENT_REQUESTS,
        "budget": RESIDENT_BUDGET,
        "detached_graph_bytes": slim,
        "first_batch_payload_bytes": first_extra["batch_payload_bytes"],
        "first_batch_graph_installs": first_extra["graph_installs"],
        "second_batch_payload_bytes": second_extra["batch_payload_bytes"],
        "second_batch_graph_installs": second_extra["graph_installs"],
        "replan_graph_installs": installs_replan - installs_first,
        "warm_solve_graph_installs": warm.stats.extra["graph_installs"],
        "warm_solve_payload_bytes": warm.stats.extra["batch_payload_bytes"],
        "session_graph_installs": installs_second,
    }


def run_experiment(write: bool = True) -> dict:
    payload: dict = {"k": K, "start_nodes": START_NODES, "sizes": {}}
    for n in NS:
        problem = WASOProblem(graph=bench_graph("facebook", n), k=K)
        problem.compiled()  # one-shot freeze, reused by every compiled run
        entry: dict = {}
        for engine in ("reference", "compiled"):
            entry[engine] = {
                "add_delta_per_sec": _bench_add_delta(problem, engine),
                "draw_samples_per_sec": _bench_draw(problem, engine, n),
            }
            rate, result = _bench_cbas(problem, engine)
            entry[engine]["cbas_samples_per_sec"] = rate
            entry[engine]["cbas_willingness"] = result.willingness
            entry[engine]["cbas_members"] = sorted(
                map(repr, result.members)
            )
            nd_rate, nd_result = _bench_cbas_nd(problem, engine)
            entry[engine]["cbas_nd_samples_per_sec"] = nd_rate
            entry[engine]["cbas_nd_willingness"] = nd_result.willingness
            entry[engine]["cbas_nd_members"] = sorted(
                map(repr, nd_result.members)
            )
        # The vector engine skips the scalar micro-kernels (its add_delta
        # and single-draw paths are the inherited compiled ones); the
        # end-to-end solves are where its batched kernel runs.
        entry["vector"] = {}
        rate, result = _bench_cbas(problem, "vector")
        entry["vector"]["cbas_samples_per_sec"] = rate
        entry["vector"]["cbas_willingness"] = result.willingness
        entry["vector"]["cbas_members"] = sorted(map(repr, result.members))
        nd_rate, nd_result = _bench_cbas_nd(problem, "vector")
        entry["vector"]["cbas_nd_samples_per_sec"] = nd_rate
        entry["vector"]["cbas_nd_willingness"] = nd_result.willingness
        entry["vector"]["cbas_nd_members"] = sorted(
            map(repr, nd_result.members)
        )
        for metric in (
            "add_delta_per_sec",
            "draw_samples_per_sec",
            "cbas_samples_per_sec",
            "cbas_nd_samples_per_sec",
        ):
            entry[f"speedup_{metric}"] = (
                entry["compiled"][metric] / entry["reference"][metric]
            )
        for metric in ("cbas_samples_per_sec", "cbas_nd_samples_per_sec"):
            entry[f"speedup_vector_{metric}"] = (
                entry["vector"][metric] / entry["reference"][metric]
            )
        entry["identical_solutions"] = (
            entry["compiled"]["cbas_willingness"]
            == entry["reference"]["cbas_willingness"]
            and entry["compiled"]["cbas_members"]
            == entry["reference"]["cbas_members"]
            and entry["compiled"]["cbas_nd_willingness"]
            == entry["reference"]["cbas_nd_willingness"]
            and entry["compiled"]["cbas_nd_members"]
            == entry["reference"]["cbas_nd_members"]
        )
        entry["worker_payload"] = worker_payload_bytes(problem)
        payload["sizes"][str(n)] = entry
        if n == RESIDENT_N:
            payload["resident_solve"] = _bench_resident_solve(problem)
        if n == STAGE_PARALLEL_N:
            payload["stage_parallel"] = _bench_stage_parallel(problem)
    if write:
        # Merge: other benches own their own top-level series in the
        # same file (``serving_daemon`` from bench_serving_daemon.py)
        # — regenerating this one must not drop theirs.
        merged: dict = {}
        if JSON_PATH.exists():
            with open(JSON_PATH, encoding="utf-8") as handle:
                merged = json.load(handle)
        merged.update(payload)
        dump_json(str(JSON_PATH), merged)
    return payload


def check_against_baseline(fresh: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the committed baseline.

    Returns human-readable failure strings: any ``*_per_sec`` metric more
    than ``THROUGHPUT_TOLERANCE`` below baseline, and any *shipped*
    payload byte count above baseline (pickle sizes are deterministic,
    so any growth is a real regression, not noise).  The payload gate
    covers the slim number only — ``compiled_arrays_bytes`` plus the
    ``resident_solve`` wire series — because the dict-graph pickle is
    never shipped by the resident pools (and does not exist at all for a
    detached problem, where it reports ``None``).
    """
    failures: list[str] = []
    for n, base_entry in baseline.get("sizes", {}).items():
        fresh_entry = fresh.get("sizes", {}).get(n)
        if fresh_entry is None:
            failures.append(f"n={n}: missing from fresh results")
            continue
        for engine in ("reference", "compiled", "vector"):
            for metric, base_value in base_entry.get(engine, {}).items():
                if not metric.endswith("_per_sec"):
                    continue
                fresh_value = fresh_entry.get(engine, {}).get(metric)
                if fresh_value is None:
                    failures.append(
                        f"n={n} {engine} {metric}: missing from fresh "
                        "results (baseline schema drift — regenerate it)"
                    )
                    continue
                floor = base_value * (1.0 - THROUGHPUT_TOLERANCE)
                if fresh_value < floor:
                    failures.append(
                        f"n={n} {engine} {metric}: {fresh_value:,.0f}/s is "
                        f">{THROUGHPUT_TOLERANCE:.0%} below baseline "
                        f"{base_value:,.0f}/s"
                    )
        base_bytes = base_entry.get("worker_payload", {}).get(
            "compiled_arrays_bytes"
        )
        fresh_bytes = fresh_entry.get("worker_payload", {}).get(
            "compiled_arrays_bytes"
        )
        if base_bytes is not None:
            if fresh_bytes is None:
                failures.append(
                    f"n={n} worker_payload compiled_arrays_bytes: missing "
                    "from fresh results (baseline schema drift — "
                    "regenerate it)"
                )
            elif fresh_bytes > base_bytes:
                failures.append(
                    f"n={n} worker_payload compiled_arrays_bytes: "
                    f"{fresh_bytes}B grew past baseline {base_bytes}B"
                )
    failures.extend(_check_resident_series(fresh, baseline))
    return failures


def _check_resident_series(fresh: dict, baseline: dict) -> list[str]:
    """Payload-byte regression check for the resident-session series."""
    failures: list[str] = []
    base_resident = baseline.get("resident_solve")
    if not base_resident:
        return failures
    fresh_resident = fresh.get("resident_solve") or {}
    for field in (
        "detached_graph_bytes",
        "first_batch_payload_bytes",
        "second_batch_payload_bytes",
        "warm_solve_payload_bytes",
    ):
        base_value = base_resident.get(field)
        if base_value is None:
            continue
        fresh_value = fresh_resident.get(field)
        if fresh_value is None:
            failures.append(
                f"resident_solve {field}: missing from fresh results "
                "(baseline schema drift — regenerate it)"
            )
        elif fresh_value > base_value:
            failures.append(
                f"resident_solve {field}: {fresh_value}B grew past "
                f"baseline {base_value}B"
            )
    for field in (
        "first_batch_graph_installs",
        "second_batch_graph_installs",
        "replan_graph_installs",
        "warm_solve_graph_installs",
        "session_graph_installs",
    ):
        base_value = base_resident.get(field)
        fresh_value = fresh_resident.get(field)
        if base_value is not None and fresh_value != base_value:
            failures.append(
                f"resident_solve {field}: {fresh_value} != baseline "
                f"{base_value} (the session must ship each graph exactly "
                "once per worker)"
            )
    return failures


def test_perf_sampler(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for n, entry in payload["sizes"].items():
        print(
            f"n={n}: add_delta {entry['speedup_add_delta_per_sec']:.2f}x, "
            f"draw {entry['speedup_draw_samples_per_sec']:.2f}x, "
            f"cbas {entry['speedup_cbas_samples_per_sec']:.2f}x, "
            f"cbas-nd {entry['speedup_cbas_nd_samples_per_sec']:.2f}x, "
            f"vector cbas-nd "
            f"{entry['speedup_vector_cbas_nd_samples_per_sec']:.2f}x"
        )
        # Seeded solutions must agree bit-for-bit between the scalar
        # engines (the vector engine is tolerance-checked in
        # tests/test_vector.py, not here).
        assert entry["identical_solutions"]
        # The compiled sampler must never lose to the dict path.
        assert entry["speedup_draw_samples_per_sec"] > 1.0
        assert entry["speedup_cbas_samples_per_sec"] > 1.0
        assert entry["speedup_cbas_nd_samples_per_sec"] > 1.0
        # The batched vector kernel must never lose to the dict path
        # either, at any size.
        assert entry["speedup_vector_cbas_nd_samples_per_sec"] > 1.0
        # The slim pool payload must undercut the dict-graph pickle.
        sizes = entry["worker_payload"]
        assert sizes["compiled_arrays_bytes"] < sizes["dict_graph_bytes"], (
            "compiled-arrays worker payload is not smaller than the "
            f"dict-graph pickle: {sizes}"
        )
    # Headline gates at n=10k: uniform CBAS expansion and CBAS-ND's
    # CE update + weighted frontier.
    big = payload["sizes"]["10000"]
    assert big["speedup_cbas_samples_per_sec"] >= MIN_CBAS_SPEEDUP, (
        "compiled CBAS expansion fell below the 3x acceptance gate: "
        f"{big['speedup_cbas_samples_per_sec']:.2f}x"
    )
    assert big["speedup_cbas_nd_samples_per_sec"] >= MIN_CBASND_SPEEDUP, (
        "compiled CBAS-ND fell below the 2x acceptance gate: "
        f"{big['speedup_cbas_nd_samples_per_sec']:.2f}x"
    )
    assert (
        big["speedup_vector_cbas_nd_samples_per_sec"]
        >= MIN_VECTOR_CBASND_SPEEDUP
    ), (
        "vector CBAS-ND fell below the 5x acceptance gate over the dict "
        f"reference: {big['speedup_vector_cbas_nd_samples_per_sec']:.2f}x"
    )
    # The resident serving session: exactly one graph install per
    # (graph, worker) pair, warm batches and replans ship only specs.
    resident = payload["resident_solve"]
    print(
        f"resident session n={resident['n']}: first batch "
        f"{resident['first_batch_payload_bytes']}B "
        f"({resident['first_batch_graph_installs']} installs), second "
        f"{resident['second_batch_payload_bytes']}B "
        f"({resident['second_batch_graph_installs']} installs)"
    )
    assert resident["first_batch_graph_installs"] == resident["workers"]
    assert resident["second_batch_graph_installs"] == 0
    assert resident["replan_graph_installs"] == 0
    assert resident["warm_solve_graph_installs"] == 0
    assert resident["session_graph_installs"] == resident["workers"]
    assert (
        resident["first_batch_payload_bytes"]
        > resident["detached_graph_bytes"]
        > resident["second_batch_payload_bytes"]
    )
    stage = payload["stage_parallel"]
    print(
        f"stage-parallel n={stage['n']} T={stage['budget']} "
        f"workers={stage['workers']}: serial {stage['serial_seconds']:.3f}s, "
        f"sharded {stage['sharded_seconds']:.3f}s "
        f"({stage['speedup']:.2f}x, {stage['cpu_count']} cpus)"
    )
    # The ≥1.5x wall-clock gate lives in the tier-2
    # ``test_stage_parallel_speedup_gate`` below — it needs the workers
    # to actually run in parallel, so it auto-skips on small machines
    # while a multi-core runner enforces it.  This test only records the
    # series.
    assert JSON_PATH.exists()


@pytest.mark.tier2
def test_payload_bytes_regression_gate():
    """Tier-2 gate: shipped payload bytes must not grow past the baseline.

    Pickle sizes are deterministic and machine-independent, so this gate
    runs everywhere the tier-2 job runs (no CPU-count skip): it
    re-measures the slim worker payloads and the resident-session wire
    series and fails on any growth — the resident protocol's
    ship-once-per-(graph, worker) invariant is checked exactly, not with
    a tolerance.
    """
    if not JSON_PATH.exists():
        pytest.skip(f"no committed baseline at {JSON_PATH}")
    with open(JSON_PATH, encoding="utf-8") as handle:
        committed = json.load(handle)
    fresh: dict = {"sizes": {}}
    for n_key, base_entry in committed.get("sizes", {}).items():
        if "worker_payload" not in base_entry:
            continue
        problem = WASOProblem(graph=bench_graph("facebook", int(n_key)), k=K)
        problem.compiled()
        fresh["sizes"][n_key] = {
            "worker_payload": worker_payload_bytes(problem)
        }
        if int(n_key) == RESIDENT_N:
            fresh["resident_solve"] = _bench_resident_solve(problem)
    failures = [
        line
        for line in check_against_baseline(fresh, committed)
        if "per_sec" not in line  # payload-only re-measurement
    ]
    assert not failures, "\n".join(failures)


@pytest.mark.tier2
def test_stage_parallel_speedup_gate():
    """Tier-2 gate: stage-sharded CBAS-ND beats serial by ≥1.5× wall clock.

    Enforced only where the workers can actually run in parallel: on
    machines with fewer than ``STAGE_PARALLEL_WORKERS`` CPUs the test
    skips with a visible reason (the 1-CPU CI container records ~0.8×,
    which is expected — the ``stage_parallel`` series in
    ``BENCH_sampler.json`` still tracks the numbers there).
    """
    cpus = os.cpu_count() or 1
    if cpus < STAGE_PARALLEL_WORKERS:
        pytest.skip(
            f"stage-parallel ≥{MIN_STAGE_PARALLEL_SPEEDUP}x wall-clock gate "
            f"needs ≥{STAGE_PARALLEL_WORKERS} CPUs to run the workers in "
            f"parallel; this machine has {cpus}"
        )
    problem = WASOProblem(graph=bench_graph("facebook", STAGE_PARALLEL_N), k=K)
    problem.compiled()
    stage = _bench_stage_parallel(problem)
    print(
        f"stage-parallel gate: serial {stage['serial_seconds']:.3f}s, "
        f"sharded {stage['sharded_seconds']:.3f}s ({stage['speedup']:.2f}x)"
    )
    assert stage["speedup"] >= MIN_STAGE_PARALLEL_SPEEDUP, (
        "stage-sharded CBAS-ND fell below the "
        f"{MIN_STAGE_PARALLEL_SPEEDUP}x wall-clock gate: "
        f"{stage['speedup']:.2f}x"
    )


def _print_summary(result: dict) -> None:
    for n, entry in result["sizes"].items():
        sizes = entry["worker_payload"]
        print(
            f"n={n}: add_delta {entry['speedup_add_delta_per_sec']:.2f}x, "
            f"draw {entry['speedup_draw_samples_per_sec']:.2f}x, "
            f"cbas {entry['speedup_cbas_samples_per_sec']:.2f}x, "
            f"cbas-nd {entry['speedup_cbas_nd_samples_per_sec']:.2f}x, "
            f"vector cbas-nd "
            f"{entry['speedup_vector_cbas_nd_samples_per_sec']:.2f}x, "
            f"identical={entry['identical_solutions']}, "
            f"payload {sizes['compiled_arrays_bytes']}B vs "
            f"{sizes['dict_graph_bytes']}B dict"
        )
    resident = result.get("resident_solve")
    if resident:
        print(
            f"resident session n={resident['n']} "
            f"workers={resident['workers']}: batch1 "
            f"{resident['first_batch_payload_bytes']}B "
            f"({resident['first_batch_graph_installs']} installs) -> "
            f"batch2 {resident['second_batch_payload_bytes']}B "
            f"({resident['second_batch_graph_installs']} installs), "
            f"replan installs {resident['replan_graph_installs']}"
        )
    stage = result.get("stage_parallel")
    if stage:
        print(
            f"stage-parallel n={stage['n']} T={stage['budget']} "
            f"workers={stage['workers']}: "
            f"serial {stage['serial_seconds']:.3f}s, "
            f"sharded {stage['sharded_seconds']:.3f}s "
            f"({stage['speedup']:.2f}x on {stage['cpu_count']} cpus)"
        )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and compare against the committed "
        "BENCH_sampler.json without overwriting it; exit 1 on >20%% "
        "throughput regression or any payload-size regression",
    )
    args = parser.parse_args()

    if args.check:
        if not JSON_PATH.exists():
            print(f"no baseline at {JSON_PATH}; run without --check first")
            sys.exit(2)
        with open(JSON_PATH, encoding="utf-8") as handle:
            committed = json.load(handle)
        fresh = run_experiment(write=False)
        _print_summary(fresh)
        problems = check_against_baseline(fresh, committed)
        if problems:
            print("\nREGRESSIONS against committed baseline:")
            for line in problems:
                print(f"  - {line}")
            sys.exit(1)
        print("\nno regressions against committed baseline")
    else:
        result = run_experiment()
        _print_summary(result)
        print(f"wrote {JSON_PATH}")
