"""Tier-2 perf benchmark: compiled sampling kernel vs dict-based reference.

Measures, on synthetic Facebook-regime graphs of n ∈ {1k, 10k}:

* ``add_delta`` micro-kernel throughput (calls/sec) for both evaluators —
  a tracking metric: with pair weights cached, the dict path is already
  near-optimal for single id-keyed probes, so no speedup is asserted
  here (the compiled layout's win is the sampler's int-indexed loop,
  where generation stamps replace hashing entirely);
* raw sampler ``draw`` throughput (samples/sec, uniform expansion from the
  CBAS start-node pool) for both paths;
* end-to-end uniform CBAS solve throughput (samples drawn per second of
  solve time) for both engines — this is where the compiled index's
  amortization (frozen evaluator, O(1) start ranking, cached seed state,
  skipped per-draw connectivity BFS) compounds with the fast kernel;
* end-to-end CBAS-ND solve throughput for both engines — this adds the
  cross-entropy machinery on top: the elite refit after every stage and
  the weighted frontier draw, which the compiled engine serves from the
  array-backed ``SelectionProbabilities`` (one list index per frontier
  slot, elite counts off ``Sample.indices``) versus the reference
  engine's per-node dict probes;
* pool worker payload sizes: the detached compiled-arrays payload
  (``WASOProblem.detached()``) versus the historical dict-graph pickle.

Results are persisted to ``BENCH_sampler.json`` next to the repo root so
future PRs can diff against them.  Acceptance gates, all measured in the
same run: the compiled engine delivers ≥3× samples/sec for uniform CBAS
expansion on the n=10k graph, ≥2× for CBAS-ND on the n=10k graph, the
slim worker payload is strictly smaller than the dict-graph pickle, and
both engines return identical seeded solutions.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.sampling import ExpansionSampler, seed_for_start
from repro.algorithms.start_nodes import select_start_nodes
from repro.bench.datasets import bench_graph
from repro.bench.harness import dump_json
from repro.core.problem import WASOProblem
from repro.core.willingness import evaluator_for
from repro.parallel.pool import worker_payload_bytes

NS = (1000, 10000)
K = 10
START_NODES = 30
DRAWS_PER_START = {1000: 60, 10000: 60}
ADD_DELTA_CALLS = 20_000
CBAS_BUDGET = 600
CBASND_BUDGET = 600
CBASND_STAGES = 6
JSON_PATH = Path(__file__).parent.parent / "BENCH_sampler.json"

#: Acceptance gate for the n=10k uniform-CBAS expansion speedup.
MIN_CBAS_SPEEDUP = 3.0
#: Acceptance gate for the n=10k CBAS-ND (CE update + weighted frontier).
MIN_CBASND_SPEEDUP = 2.0


def _bench_add_delta(problem: WASOProblem, engine: str) -> float:
    """add_delta calls/sec against a fixed random group."""
    graph = problem.graph
    evaluator = evaluator_for(graph, engine)
    rng = random.Random(11)
    nodes = graph.node_list()
    group = set(rng.sample(nodes, K))
    probes = [node for node in rng.choices(nodes, k=500) if node not in group]
    add_delta = evaluator.add_delta
    calls = 0
    started = time.perf_counter()
    while calls < ADD_DELTA_CALLS:
        for node in probes:
            add_delta(node, group)
        calls += len(probes)
    elapsed = time.perf_counter() - started
    return calls / elapsed


def _bench_draw(problem: WASOProblem, engine: str, n: int) -> float:
    """Uniform draw samples/sec from the CBAS start-node pool."""
    evaluator = evaluator_for(problem.graph, engine)
    sampler = ExpansionSampler(problem, evaluator)
    starts = select_start_nodes(problem, evaluator, START_NODES)
    seeds = [seed_for_start(problem, start) for start in starts]
    rng = random.Random(7)
    for seed in seeds:  # warm caches outside the timed region
        sampler.draw(seed, rng)
    per_start = DRAWS_PER_START[n]
    drawn = 0
    started = time.perf_counter()
    for seed in seeds:
        for _ in range(per_start):
            if sampler.draw(seed, rng) is not None:
                drawn += 1
    elapsed = time.perf_counter() - started
    return drawn / elapsed


def _bench_cbas(problem: WASOProblem, engine: str) -> tuple[float, object]:
    """End-to-end uniform CBAS: (samples/sec of solve time, solution)."""
    solver = CBAS(budget=CBAS_BUDGET, m=START_NODES, stages=8, engine=engine)
    solver.solve(problem, rng=1)  # warm-up solve
    best_rate, solution = 0.0, None
    for _ in range(3):
        started = time.perf_counter()
        result = solver.solve(problem, rng=7)
        elapsed = time.perf_counter() - started
        best_rate = max(best_rate, result.stats.samples_drawn / elapsed)
        solution = result
    return best_rate, solution


def _bench_cbas_nd(problem: WASOProblem, engine: str) -> tuple[float, object]:
    """End-to-end CBAS-ND: CE elite refit + weighted frontier draws."""
    solver = CBASND(
        budget=CBASND_BUDGET,
        m=START_NODES,
        stages=CBASND_STAGES,
        engine=engine,
    )
    solver.solve(problem, rng=1)  # warm-up solve
    best_rate, solution = 0.0, None
    for _ in range(3):
        started = time.perf_counter()
        result = solver.solve(problem, rng=7)
        elapsed = time.perf_counter() - started
        best_rate = max(best_rate, result.stats.samples_drawn / elapsed)
        solution = result
    return best_rate, solution


def run_experiment() -> dict:
    payload: dict = {"k": K, "start_nodes": START_NODES, "sizes": {}}
    for n in NS:
        problem = WASOProblem(graph=bench_graph("facebook", n), k=K)
        problem.compiled()  # one-shot freeze, reused by every compiled run
        entry: dict = {}
        for engine in ("reference", "compiled"):
            entry[engine] = {
                "add_delta_per_sec": _bench_add_delta(problem, engine),
                "draw_samples_per_sec": _bench_draw(problem, engine, n),
            }
            rate, result = _bench_cbas(problem, engine)
            entry[engine]["cbas_samples_per_sec"] = rate
            entry[engine]["cbas_willingness"] = result.willingness
            entry[engine]["cbas_members"] = sorted(
                map(repr, result.members)
            )
            nd_rate, nd_result = _bench_cbas_nd(problem, engine)
            entry[engine]["cbas_nd_samples_per_sec"] = nd_rate
            entry[engine]["cbas_nd_willingness"] = nd_result.willingness
            entry[engine]["cbas_nd_members"] = sorted(
                map(repr, nd_result.members)
            )
        for metric in (
            "add_delta_per_sec",
            "draw_samples_per_sec",
            "cbas_samples_per_sec",
            "cbas_nd_samples_per_sec",
        ):
            entry[f"speedup_{metric}"] = (
                entry["compiled"][metric] / entry["reference"][metric]
            )
        entry["identical_solutions"] = (
            entry["compiled"]["cbas_willingness"]
            == entry["reference"]["cbas_willingness"]
            and entry["compiled"]["cbas_members"]
            == entry["reference"]["cbas_members"]
            and entry["compiled"]["cbas_nd_willingness"]
            == entry["reference"]["cbas_nd_willingness"]
            and entry["compiled"]["cbas_nd_members"]
            == entry["reference"]["cbas_nd_members"]
        )
        entry["worker_payload"] = worker_payload_bytes(problem)
        payload["sizes"][str(n)] = entry
    dump_json(str(JSON_PATH), payload)
    return payload


def test_perf_sampler(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for n, entry in payload["sizes"].items():
        print(
            f"n={n}: add_delta {entry['speedup_add_delta_per_sec']:.2f}x, "
            f"draw {entry['speedup_draw_samples_per_sec']:.2f}x, "
            f"cbas {entry['speedup_cbas_samples_per_sec']:.2f}x, "
            f"cbas-nd {entry['speedup_cbas_nd_samples_per_sec']:.2f}x"
        )
        # Seeded solutions must agree bit-for-bit between the engines.
        assert entry["identical_solutions"]
        # The compiled sampler must never lose to the dict path.
        assert entry["speedup_draw_samples_per_sec"] > 1.0
        assert entry["speedup_cbas_samples_per_sec"] > 1.0
        assert entry["speedup_cbas_nd_samples_per_sec"] > 1.0
        # The slim pool payload must undercut the dict-graph pickle.
        sizes = entry["worker_payload"]
        assert sizes["compiled_arrays_bytes"] < sizes["dict_graph_bytes"], (
            "compiled-arrays worker payload is not smaller than the "
            f"dict-graph pickle: {sizes}"
        )
    # Headline gates at n=10k: uniform CBAS expansion and CBAS-ND's
    # CE update + weighted frontier.
    big = payload["sizes"]["10000"]
    assert big["speedup_cbas_samples_per_sec"] >= MIN_CBAS_SPEEDUP, (
        "compiled CBAS expansion fell below the 3x acceptance gate: "
        f"{big['speedup_cbas_samples_per_sec']:.2f}x"
    )
    assert big["speedup_cbas_nd_samples_per_sec"] >= MIN_CBASND_SPEEDUP, (
        "compiled CBAS-ND fell below the 2x acceptance gate: "
        f"{big['speedup_cbas_nd_samples_per_sec']:.2f}x"
    )
    assert JSON_PATH.exists()


if __name__ == "__main__":
    result = run_experiment()
    for n, entry in result["sizes"].items():
        sizes = entry["worker_payload"]
        print(
            f"n={n}: add_delta {entry['speedup_add_delta_per_sec']:.2f}x, "
            f"draw {entry['speedup_draw_samples_per_sec']:.2f}x, "
            f"cbas {entry['speedup_cbas_samples_per_sec']:.2f}x, "
            f"cbas-nd {entry['speedup_cbas_nd_samples_per_sec']:.2f}x, "
            f"identical={entry['identical_solutions']}, "
            f"payload {sizes['compiled_arrays_bytes']}B vs "
            f"{sizes['dict_graph_bytes']}B dict"
        )
    print(f"wrote {JSON_PATH}")
