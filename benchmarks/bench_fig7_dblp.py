"""Fig. 7(a-f): quality and time sweeps on the sparse DBLP-regime graph.

Paper claims reproduced as shape checks:

* (a,b) k sweep: CBAS-ND outperforms DGreedy decisively (paper: +92%) and
  RGreedy meaningfully (paper: +32%); RGreedy remains the slowest but is
  *relatively* cheaper than on Facebook because the sparse graph's
  frontiers grow slowly (average degree 3.7 vs 26);
* (c,d) m sweep: quality converges at moderate m, time grows with m;
* (e,f) T sweep: quality grows with T, CBAS-ND fastest-growing.
"""

from common import (
    RUN_SEED,
    assert_dominates,
    standard_algorithms,
    sweep,
)
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, shape_nondecreasing
from repro.core.problem import WASOProblem

N = 700
KS = (10, 20, 30)
MS = (5, 15, 30, 60)
BUDGETS = (200, 500, 1000, 2000)
REPEATS = 2


def _dblp_problem(k: int) -> WASOProblem:
    graph = bench_graph("dblp", N)
    return WASOProblem(graph=graph, k=k)


def run_k_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    quality = ExperimentTable(
        title="Fig 7(a): quality vs k (DBLP-like)", x_label="k"
    )
    times = ExperimentTable(
        title="Fig 7(b): time (s) vs k (DBLP-like)", x_label="k"
    )
    sweep(
        quality,
        times,
        KS,
        problem_of=_dblp_problem,
        algorithms_of=standard_algorithms,
        repeats=REPEATS,
    )
    return quality, times


def run_m_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    problem = _dblp_problem(10)
    quality = ExperimentTable(
        title="Fig 7(c): quality vs m (DBLP-like, k=10)", x_label="m"
    )
    times = ExperimentTable(
        title="Fig 7(d): time (s) vs m (DBLP-like, k=10)", x_label="m"
    )
    for m in MS:
        for name, factory in (
            ("CBAS", lambda: CBAS(budget=600, m=m, stages=6)),
            ("CBAS-ND", lambda: CBASND(budget=600, m=m, stages=6)),
        ):
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = factory().solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, m, total_q / REPEATS)
            times.add(name, m, total_s / REPEATS)
    return quality, times


def run_t_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    problem = _dblp_problem(10)
    quality = ExperimentTable(
        title="Fig 7(e): quality vs T (DBLP-like, k=10)", x_label="T"
    )
    times = ExperimentTable(
        title="Fig 7(f): time (s) vs T (DBLP-like, k=10)", x_label="T"
    )
    for t in BUDGETS:
        for name, factory in (
            ("CBAS", lambda: CBAS(budget=t, m=25, stages=6)),
            ("CBAS-ND", lambda: CBASND(budget=t, m=25, stages=6)),
        ):
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = factory().solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, t, total_q / REPEATS)
            times.add(name, t, total_s / REPEATS)
    return quality, times


def run_experiment():
    return run_k_sweep(), run_m_sweep(), run_t_sweep()


def test_fig7_dblp(benchmark):
    (kq, kt), (mq, mt), (tq, tt) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    for table in (kq, kt, mq, mt, tq, tt):
        table.show(fmt="{:.4f}")

    # (a) CBAS-ND decisively beats DGreedy on the sparse graph.
    assert_dominates(kq, "CBAS-ND", "DGreedy")
    top = max(KS)
    assert kq.series["CBAS-ND"].at(top) >= kq.series["DGreedy"].at(top) * 1.2
    # (a) CBAS-ND also beats RGreedy on most points.
    assert_dominates(kq, "CBAS-ND", "RGreedy", min_fraction_of_points=0.6)
    # (c) quality converges in m: mid-sweep within 20% of the max-m value.
    nd = mq.series["CBAS-ND"]
    assert nd.at(30) >= nd.at(60) * 0.8, mq.render()
    # (e) quality grows with T (15% noise slack).
    assert shape_nondecreasing(tq.series["CBAS-ND"], slack=0.15)


def _paper_scale(cache_dir) -> int:
    """n=10⁶ out-of-core demonstration (``--paper-scale``).

    Builds a million-node ring graph *directly in compiled-array form*
    (the dict-based SocialGraph would need gigabytes of adjacency dicts
    just to freeze it), saves it to the bench cache once, then serves a
    ``solve_many`` batch through two workers off the mmap-backed index —
    asserting the only graph traffic on the worker pipes is the O(1)
    path-install message, never the array pickle.
    """
    import pickle
    import time
    from array import array
    from pathlib import Path

    from common import BENCH_CACHE, MAX_PATH_INSTALL_BYTES
    from repro.graph.compiled import CompiledGraph
    from repro.graph.storage import MANIFEST_NAME, save_compiled
    from repro.runtime import ExecutionContext, SolveRequest

    n = 1_000_000
    index = Path(cache_dir or BENCH_CACHE) / f"ring-n{n}"
    if not (index / MANIFEST_NAME).is_file():
        started = time.perf_counter()
        ring = CompiledGraph.__new__(CompiledGraph)
        ring.nodes = list(range(n))
        ring.offsets = array("q", range(0, 2 * n + 1, 2))
        ring.targets = array(
            "q",
            (
                neighbour
                for node in range(n)
                for neighbour in ((node - 1) % n, (node + 1) % n)
            ),
        )
        # Constant scores: a·η=0.25, b=0.5, τ=1 both ways → pair weight
        # 0.5·1 + 0.5·1 = 1.0 on every edge.
        ring.out_w = array("d", [0.5]) * (2 * n)
        ring.pair_w = array("d", [1.0]) * (2 * n)
        ring.weighted_interest = array("d", [0.25]) * n
        ring.tightness_weight = array("d", [0.5]) * n
        # Potential = self-interest + two unit pair weights, with a small
        # deterministic ripple so the start ranking is not one giant tie.
        ring.potential = array(
            "d", (2.25 + (node % 97) / 970.0 for node in range(n))
        )
        ring._component_sizes = array("q", [n]) * n
        ring._component_labels = array("q", [0]) * n
        save_compiled(ring, index)
        print(
            f"compiled ring n={n} into {index} "
            f"in {time.perf_counter() - started:.1f}s"
        )

    started = time.perf_counter()
    compiled = CompiledGraph.load(index)
    load_s = time.perf_counter() - started
    problem = WASOProblem(graph=compiled.graph, k=10)
    install_bytes = len(
        pickle.dumps(
            ("graph_path", compiled.payload_token, compiled.disk_home, ())
        )
    )
    requests = [
        SolveRequest(
            problem, "cbas-nd", 1000 + offset, dict(budget=40, m=5, stages=2)
        )
        for offset in range(4)
    ]
    started = time.perf_counter()
    with ExecutionContext(workers=2) as context:
        results = context.solve_many(requests, mode="solve")
    solve_s = time.perf_counter() - started
    extra = results[0].stats.extra
    index_bytes = sum(child.stat().st_size for child in index.iterdir())
    print(
        f"paper scale: n={n}, index {index_bytes / 1e6:.0f}MB on disk, "
        f"mmap load {load_s:.2f}s, 4-request batch over 2 workers "
        f"in {solve_s:.1f}s"
    )
    print(
        f"wire traffic: path install {install_bytes}B, batch payload "
        f"{extra['batch_payload_bytes']}B, "
        f"{extra['graph_installs']} graph installs"
    )
    failures = []
    if install_bytes > MAX_PATH_INSTALL_BYTES:
        failures.append(
            f"path install {install_bytes}B exceeds the "
            f"{MAX_PATH_INSTALL_BYTES}B gate"
        )
    if extra["graph_installs"] != 2:
        failures.append(
            "expected one install per worker (2), saw "
            f"{extra['graph_installs']}"
        )
    if extra["batch_payload_bytes"] > 100_000:
        failures.append(
            f"batch payload {extra['batch_payload_bytes']}B — a full "
            "array pickle crossed the worker pipes"
        )
    compiled.close()
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("paper-scale demonstration passed")
    return 0


if __name__ == "__main__":
    import sys

    from common import run_mmap_residency_cli

    def _tables() -> None:
        for pair in run_experiment():
            for table in pair:
                table.show(fmt="{:.4f}")

    sys.exit(
        run_mmap_residency_cli("dblp", _tables, paper_scale=_paper_scale)
    )
