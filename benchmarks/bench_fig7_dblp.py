"""Fig. 7(a-f): quality and time sweeps on the sparse DBLP-regime graph.

Paper claims reproduced as shape checks:

* (a,b) k sweep: CBAS-ND outperforms DGreedy decisively (paper: +92%) and
  RGreedy meaningfully (paper: +32%); RGreedy remains the slowest but is
  *relatively* cheaper than on Facebook because the sparse graph's
  frontiers grow slowly (average degree 3.7 vs 26);
* (c,d) m sweep: quality converges at moderate m, time grows with m;
* (e,f) T sweep: quality grows with T, CBAS-ND fastest-growing.
"""

from common import (
    RUN_SEED,
    assert_dominates,
    standard_algorithms,
    sweep,
)
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable, shape_nondecreasing
from repro.core.problem import WASOProblem

N = 700
KS = (10, 20, 30)
MS = (5, 15, 30, 60)
BUDGETS = (200, 500, 1000, 2000)
REPEATS = 2


def _dblp_problem(k: int) -> WASOProblem:
    graph = bench_graph("dblp", N)
    return WASOProblem(graph=graph, k=k)


def run_k_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    quality = ExperimentTable(
        title="Fig 7(a): quality vs k (DBLP-like)", x_label="k"
    )
    times = ExperimentTable(
        title="Fig 7(b): time (s) vs k (DBLP-like)", x_label="k"
    )
    sweep(
        quality,
        times,
        KS,
        problem_of=_dblp_problem,
        algorithms_of=standard_algorithms,
        repeats=REPEATS,
    )
    return quality, times


def run_m_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    problem = _dblp_problem(10)
    quality = ExperimentTable(
        title="Fig 7(c): quality vs m (DBLP-like, k=10)", x_label="m"
    )
    times = ExperimentTable(
        title="Fig 7(d): time (s) vs m (DBLP-like, k=10)", x_label="m"
    )
    for m in MS:
        for name, factory in (
            ("CBAS", lambda: CBAS(budget=600, m=m, stages=6)),
            ("CBAS-ND", lambda: CBASND(budget=600, m=m, stages=6)),
        ):
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = factory().solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, m, total_q / REPEATS)
            times.add(name, m, total_s / REPEATS)
    return quality, times


def run_t_sweep() -> tuple[ExperimentTable, ExperimentTable]:
    problem = _dblp_problem(10)
    quality = ExperimentTable(
        title="Fig 7(e): quality vs T (DBLP-like, k=10)", x_label="T"
    )
    times = ExperimentTable(
        title="Fig 7(f): time (s) vs T (DBLP-like, k=10)", x_label="T"
    )
    for t in BUDGETS:
        for name, factory in (
            ("CBAS", lambda: CBAS(budget=t, m=25, stages=6)),
            ("CBAS-ND", lambda: CBASND(budget=t, m=25, stages=6)),
        ):
            total_q, total_s = 0.0, 0.0
            for repeat in range(REPEATS):
                result = factory().solve(problem, rng=RUN_SEED + repeat)
                total_q += result.willingness
                total_s += result.stats.elapsed_seconds
            quality.add(name, t, total_q / REPEATS)
            times.add(name, t, total_s / REPEATS)
    return quality, times


def run_experiment():
    return run_k_sweep(), run_m_sweep(), run_t_sweep()


def test_fig7_dblp(benchmark):
    (kq, kt), (mq, mt), (tq, tt) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    for table in (kq, kt, mq, mt, tq, tt):
        table.show(fmt="{:.4f}")

    # (a) CBAS-ND decisively beats DGreedy on the sparse graph.
    assert_dominates(kq, "CBAS-ND", "DGreedy")
    top = max(KS)
    assert kq.series["CBAS-ND"].at(top) >= kq.series["DGreedy"].at(top) * 1.2
    # (a) CBAS-ND also beats RGreedy on most points.
    assert_dominates(kq, "CBAS-ND", "RGreedy", min_fraction_of_points=0.6)
    # (c) quality converges in m: mid-sweep within 20% of the max-m value.
    nd = mq.series["CBAS-ND"]
    assert nd.at(30) >= nd.at(60) * 0.8, mq.render()
    # (e) quality grows with T (15% noise slack).
    assert shape_nondecreasing(tq.series["CBAS-ND"], slack=0.15)


if __name__ == "__main__":
    for pair in run_experiment():
        for table in pair:
            table.show(fmt="{:.4f}")
