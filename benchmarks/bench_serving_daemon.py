"""Tier-2 serving benchmark: the daemon under open-loop overload.

Drives :class:`repro.serving.ServingDaemon` end to end — real TCP
socket, real JSONL protocol, real resident pools — with the open-loop
load generator (:class:`repro.parallel.faults.ArrivalScript`: each
request is sent at its scheduled instant regardless of how the server
is coping, which is what makes overload visible).  Three series:

* **deterministic overload** — a burst bigger than the admission queue
  while a :class:`~repro.parallel.faults.FaultPlan` queue stall holds
  the dispatch loop, so every arrival lands before the first drain.
  Which requests are shed is then a pure function of the arrival order:
  exactly ``max_queue`` admitted and solved, the rest rejected with
  ``kind="shed"``, in one batch.  These quantities are bit-exact across
  machines, so ``--check`` compares them against the committed baseline
  with zero tolerance;
* **load curves vs worker count** — a seeded Poisson arrival process
  replayed against daemons of increasing worker count, recording p50 /
  p99 reply latency and the shed rate.  Latencies are machine-specific
  (recorded, never gated);
* **SLO routing** — requests carrying ``slo_s`` instead of ``budget``,
  recording the budgets the online-calibrated work-rate model bought
  and the promised-vs-achieved latencies.

Results merge into ``BENCH_sampler.json`` under the
``"serving_daemon"`` key (the other series in that file are preserved).

Acceptance gates — the *deterministic* quantities only, enforced both
by the ``@pytest.mark.tier2`` test and by ``--check``:

* **zero dropped-without-reply**: every request sent receives exactly
  one reply, shed or served, in every scenario;
* **shed accounting**: the admission counters balance —
  ``received == admitted + shed`` and every admitted request settles as
  exactly one of completed / failed / queue-timeout / deadline-missed —
  and the queue drains to zero;
* **deterministic shed set**: the stalled burst sheds exactly
  ``DET_COUNT - DET_MAX_QUEUE`` requests, serves the rest in one batch,
  and (under ``--check``) the shed id set matches the committed
  baseline bit for bit.

Regression checking: ``python benchmarks/bench_serving_daemon.py
--check`` re-runs all three series and compares against the committed
``BENCH_sampler.json`` without overwriting it, failing (exit 1) on any
accounting violation or deterministic-quantity drift.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.bench.datasets import bench_graph
from repro.bench.harness import dump_json
from repro.exceptions import RequestFailure
from repro.parallel.faults import ArrivalScript, FaultPlan
from repro.serving import ServingDaemon

N = 1000
K = 5
BUDGET = 60
#: Pool routing on the 1-CPU CI container, mirroring the chaos suite.
CPU_COUNT = 4
WORKER_COUNTS = (1, 2)
#: Deterministic-overload scenario: burst size, queue bound, stall.
DET_COUNT = 12
DET_MAX_QUEUE = 4
DET_STALL_S = 0.5
#: Poisson load curve: arrivals, mean rate (1/s), seed, queue bound.
#: The rate is chosen past the single-worker service capacity so the
#: bounded queue actually fills and the shed rate is non-trivial.
LOAD_COUNT = 32
LOAD_RATE = 600.0
LOAD_SEED = 11
LOAD_MAX_QUEUE = 6
#: SLO series: request count and latency objective.
SLO_COUNT = 4
SLO_S = 0.5
JSON_PATH = Path(__file__).parent.parent / "BENCH_sampler.json"
SERIES_KEY = "serving_daemon"

#: Error kinds a reply may legally carry (the typed failure vocabulary
#: plus the daemon's pre-admission ``"invalid"``).
REPLY_KINDS = frozenset(RequestFailure.KINDS) | {"invalid"}

#: Admission counters compared bit-exactly in the deterministic series.
DET_COUNTER_KEYS = (
    "received",
    "admitted",
    "shed",
    "queue_timeouts",
    "deadline_missed",
    "completed",
    "failed",
)


def _specs(count: int, **extra) -> "list[dict]":
    return [
        {
            "id": f"r{index}",
            "solver": "cbas-nd",
            "k": K,
            "budget": BUDGET,
            "m": 4,
            "stages": 2,
            "seed": 20 + index,
            **extra,
        }
        for index in range(count)
    ]


async def _run_scenario(
    daemon_kwargs: dict, script: ArrivalScript, specs: "list[dict]"
) -> "tuple[dict, dict, dict]":
    """Replay one arrival script against a fresh daemon.

    Returns ``(replies, latencies, status)``: reply payloads and
    send-to-reply latencies keyed by request id, plus the daemon's
    status snapshot taken after the last reply, before shutdown.
    """
    graph = bench_graph("facebook", N)
    daemon = ServingDaemon({"default": graph}, **daemon_kwargs)
    host, port = await daemon.start()
    reader, writer = await asyncio.open_connection(host, port)
    send_at: "dict[object, float]" = {}
    replies: "dict[object, tuple[dict, float]]" = {}

    async def _collect() -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            payload = json.loads(line)
            replies[payload["id"]] = (payload, time.monotonic())

    collector = asyncio.create_task(_collect())
    epoch = time.monotonic()
    for offset, spec in zip(script, specs):
        hold = epoch + offset - time.monotonic()
        if hold > 0:
            await asyncio.sleep(hold)
        send_at[spec["id"]] = time.monotonic()
        writer.write((json.dumps(spec) + "\n").encode())
        await writer.drain()
    writer.write_eof()
    await collector  # EOF arrives only after every owed reply
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    status = daemon.status()
    await daemon.shutdown()
    latencies = {
        request_id: done - send_at[request_id]
        for request_id, (_, done) in replies.items()
        if request_id in send_at
    }
    return replies, latencies, status


def _percentile(values: "list[float]", q: float) -> "float | None":
    """Nearest-rank percentile (small open-loop samples, no interp)."""
    if not values:
        return None
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))]


def _summarize(
    specs: "list[dict]", replies: dict, latencies: dict, status: dict
) -> dict:
    outcomes: "dict[str, int]" = {}
    ok_latencies: "list[float]" = []
    for spec in specs:
        reply = replies.get(spec["id"])
        if reply is None:
            outcomes["missing"] = outcomes.get("missing", 0) + 1
            continue
        payload, _ = reply
        if payload.get("ok"):
            outcomes["ok"] = outcomes.get("ok", 0) + 1
            ok_latencies.append(latencies[spec["id"]])
        else:
            kind = payload.get("error", {}).get("kind", "missing")
            outcomes[kind] = outcomes.get(kind, 0) + 1
    return {
        "sent": len(specs),
        "replies": len(replies),
        "outcomes": outcomes,
        "shed_rate": outcomes.get("shed", 0) / len(specs),
        "p50_s": _percentile(ok_latencies, 0.5),
        "p99_s": _percentile(ok_latencies, 0.99),
        "batches": status["batches"],
        "counters": {
            key: status["admission"][key] for key in DET_COUNTER_KEYS
        },
        "queue_depth": status["admission"]["queue_depth"],
    }


def _run_deterministic() -> dict:
    """The stalled burst: every quantity here is machine-independent."""
    specs = _specs(DET_COUNT)
    replies, latencies, status = asyncio.run(
        _run_scenario(
            dict(
                workers=2,
                cpu_count=CPU_COUNT,
                max_queue=DET_MAX_QUEUE,
                batch_max=DET_MAX_QUEUE,
                fault_plan=FaultPlan(stalls={1: DET_STALL_S}),
            ),
            ArrivalScript.burst(DET_COUNT),
            specs,
        )
    )
    summary = _summarize(specs, replies, latencies, status)
    summary["max_queue"] = DET_MAX_QUEUE
    summary["stall_s"] = DET_STALL_S
    summary["shed_ids"] = sorted(
        str(request_id)
        for request_id, (payload, _) in replies.items()
        if not payload.get("ok")
        and payload.get("error", {}).get("kind") == "shed"
    )
    return summary


def _run_load(workers: int) -> dict:
    """Seeded Poisson arrivals against a ``workers``-wide daemon."""
    specs = _specs(LOAD_COUNT)
    replies, latencies, status = asyncio.run(
        _run_scenario(
            dict(
                workers=workers,
                cpu_count=CPU_COUNT,
                max_queue=LOAD_MAX_QUEUE,
            ),
            ArrivalScript.poisson(LOAD_SEED, LOAD_COUNT, LOAD_RATE),
            specs,
        )
    )
    summary = _summarize(specs, replies, latencies, status)
    summary["workers"] = workers
    summary["arrivals"] = {
        "kind": "poisson",
        "seed": LOAD_SEED,
        "rate_per_s": LOAD_RATE,
        "count": LOAD_COUNT,
    }
    return summary


def _run_slo() -> dict:
    """SLO-routed requests: budgets bought and promised-vs-achieved."""
    specs = _specs(SLO_COUNT, slo_s=SLO_S)
    for spec in specs:
        spec.pop("budget")  # the SLO buys the budget
    replies, latencies, status = asyncio.run(
        _run_scenario(
            dict(workers=2, cpu_count=CPU_COUNT),
            ArrivalScript.uniform(SLO_COUNT, rate=20.0),
            specs,
        )
    )
    summary = _summarize(specs, replies, latencies, status)
    contracts = []
    for spec in specs:
        reply = replies.get(spec["id"])
        if reply is None or not reply[0].get("ok"):
            continue
        extra = reply[0].get("extra", {})
        contracts.append(
            {
                "budget": extra.get("slo_budget"),
                "promised_s": extra.get("slo_promised_s"),
                "achieved_s": extra.get("slo_achieved_s"),
                "overrun": bool(extra.get("slo_overrun", False)),
            }
        )
    summary["slo_s"] = SLO_S
    summary["contracts"] = contracts
    return summary


def run_experiment(write: bool = True) -> dict:
    series = {
        "n": N,
        "k": K,
        "budget": BUDGET,
        "deterministic": _run_deterministic(),
        "load": {str(workers): _run_load(workers) for workers in WORKER_COUNTS},
        "slo": _run_slo(),
    }
    if write:
        merged: dict = {}
        if JSON_PATH.exists():
            with open(JSON_PATH, encoding="utf-8") as handle:
                merged = json.load(handle)
        merged[SERIES_KEY] = series
        dump_json(str(JSON_PATH), merged)
    return series


def check_accounting(label: str, summary: dict) -> "list[str]":
    """The invariants that hold on every scenario, loaded or not."""
    failures: "list[str]" = []
    counters = summary["counters"]
    if summary["replies"] != summary["sent"]:
        failures.append(
            f"{label}: sent {summary['sent']} requests but got "
            f"{summary['replies']} replies — requests dropped without a "
            "reply"
        )
    if counters["received"] != counters["admitted"] + counters["shed"]:
        failures.append(
            f"{label}: received != admitted + shed: {counters}"
        )
    settled = (
        counters["completed"]
        + counters["failed"]
        + counters["queue_timeouts"]
        + counters["deadline_missed"]
    )
    if counters["admitted"] != settled:
        failures.append(
            f"{label}: {counters['admitted']} admitted but {settled} "
            f"settled: {counters}"
        )
    if summary["queue_depth"] != 0:
        failures.append(
            f"{label}: queue depth {summary['queue_depth']} after drain"
        )
    unknown = set(summary["outcomes"]) - (REPLY_KINDS | {"ok"})
    if unknown:
        failures.append(f"{label}: untyped reply outcomes {sorted(unknown)}")
    return failures


def check_against_baseline(fresh: dict, baseline: dict) -> "list[str]":
    """Accounting on every fresh series + bit-exact deterministic diff."""
    failures = check_accounting("deterministic", fresh["deterministic"])
    for workers, summary in fresh["load"].items():
        failures.extend(check_accounting(f"load workers={workers}", summary))
    failures.extend(check_accounting("slo", fresh["slo"]))
    base_det = (baseline or {}).get("deterministic")
    if not base_det:
        return failures
    fresh_det = fresh["deterministic"]
    for field in ("sent", "outcomes", "batches", "shed_ids", "counters"):
        if fresh_det.get(field) != base_det.get(field):
            failures.append(
                f"deterministic {field}: {fresh_det.get(field)!r} != "
                f"baseline {base_det.get(field)!r} (the stalled burst is "
                "machine-independent — any drift is a real behaviour "
                "change)"
            )
    return failures


@pytest.mark.tier2
def test_serving_daemon_accounting_gate():
    """Tier-2 gate: shed accounting balances, nobody goes unanswered.

    Machine-independent (the queue stall removes all timing from the
    shed decision), so it runs everywhere the tier-2 job runs: the
    stalled burst must shed exactly ``DET_COUNT - DET_MAX_QUEUE``
    requests with typed rejections, serve the remaining
    ``DET_MAX_QUEUE`` in one coalesced batch, reply to every request,
    and leave the admission counters balanced — matching the committed
    ``serving_daemon`` baseline exactly when one exists.
    """
    det = _run_deterministic()
    failures = check_accounting("deterministic", det)
    assert not failures, "\n".join(failures)
    assert det["outcomes"].get("shed") == DET_COUNT - DET_MAX_QUEUE, (
        f"expected exactly {DET_COUNT - DET_MAX_QUEUE} shed: "
        f"{det['outcomes']}"
    )
    assert det["outcomes"].get("ok") == DET_MAX_QUEUE, det["outcomes"]
    assert det["batches"] == 1, (
        f"the stalled burst must coalesce into one batch: {det['batches']}"
    )
    assert len(det["shed_ids"]) == DET_COUNT - DET_MAX_QUEUE
    if JSON_PATH.exists():
        with open(JSON_PATH, encoding="utf-8") as handle:
            committed = json.load(handle).get(SERIES_KEY)
        if committed:
            drift = check_against_baseline(
                {"deterministic": det, "load": {}, "slo": det}, committed
            )
            # check_accounting already passed above; only diff lines left.
            drift = [line for line in drift if "baseline" in line]
            assert not drift, "\n".join(drift)


def _print_summary(series: dict) -> None:
    det = series["deterministic"]
    print(
        f"deterministic burst x{det['sent']} (queue {det['max_queue']}): "
        f"{det['outcomes'].get('ok', 0)} served / "
        f"{det['outcomes'].get('shed', 0)} shed in {det['batches']} batch"
    )
    for workers, load in sorted(series["load"].items()):
        print(
            f"load workers={workers}: p50 {load['p50_s']:.3f}s, "
            f"p99 {load['p99_s']:.3f}s, shed rate {load['shed_rate']:.2f} "
            f"({load['outcomes']})"
        )
    slo = series["slo"]
    budgets = [contract["budget"] for contract in slo["contracts"]]
    overruns = sum(contract["overrun"] for contract in slo["contracts"])
    print(
        f"slo {slo['slo_s']}s x{slo['sent']}: budgets {budgets}, "
        f"{overruns} overruns"
    )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run and compare against the committed BENCH_sampler.json "
        "serving_daemon series without overwriting it; exit 1 on any "
        "accounting violation or deterministic-quantity drift",
    )
    args = parser.parse_args()

    if args.check:
        if not JSON_PATH.exists():
            print(f"no baseline at {JSON_PATH}; run without --check first")
            sys.exit(2)
        with open(JSON_PATH, encoding="utf-8") as handle:
            committed = json.load(handle).get(SERIES_KEY)
        fresh = run_experiment(write=False)
        _print_summary(fresh)
        problems = check_against_baseline(fresh, committed or {})
        if committed is None:
            problems.append(
                f"no '{SERIES_KEY}' series in {JSON_PATH}; run without "
                "--check first to record it"
            )
        if problems:
            print("\nREGRESSIONS against committed baseline:")
            for line in problems:
                print(f"  - {line}")
            sys.exit(1)
        print("\nno regressions against committed baseline")
    else:
        series = run_experiment()
        _print_summary(series)
        print(f"wrote {JSON_PATH} ({SERIES_KEY} series)")
