"""Fig. 5(c): running time vs network size n (Facebook, k = 10).

Paper claims reproduced as shape checks:

* DGreedy is always the fastest (deterministic, one sequence);
* CBAS and CBAS-ND stay within seconds while RGreedy is orders of
  magnitude slower (paper: >10³ s vs <10 s).
"""

from common import standard_algorithms, sweep
from repro.bench.datasets import bench_graph
from repro.bench.harness import ExperimentTable
from repro.core.problem import WASOProblem

NS = (300, 600, 1200, 2400)
K = 10


def run_experiment() -> ExperimentTable:
    times = ExperimentTable(
        title="Fig 5(c): execution time (s) vs n (Facebook-like, k=10)",
        x_label="n",
    )
    sweep(
        None,
        times,
        NS,
        problem_of=lambda n: WASOProblem(graph=bench_graph("facebook", n), k=K),
        algorithms_of=lambda n: standard_algorithms(K),
    )
    return times


def test_fig5c_facebook_n(benchmark):
    times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    times.show(fmt="{:.4f}")

    for n in NS:
        assert times.series["DGreedy"].at(n) <= times.series["CBAS"].at(n)
        assert times.series["DGreedy"].at(n) <= times.series["CBAS-ND"].at(n)
    # RGreedy pays O(frontier) per expansion step: slowest at scale even
    # with a tenth of the samples.
    top = max(NS)
    assert times.series["RGreedy"].at(top) > times.series["CBAS"].at(top)


if __name__ == "__main__":
    run_experiment().show(fmt="{:.4f}")
