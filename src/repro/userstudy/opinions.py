"""Opinion model for Fig. 4(f).

After seeing the recommended group, each participant rated it against the
group they assembled by hand: *Better*, *Acceptable*, or *Not acceptable*.
We model the judgement as a willingness-ratio comparison with a personal
subjective tolerance: the participant perceives the two groups' quality
with some slack and calls the recommendation

* **Better** when it beats their own group beyond their tolerance,
* **Acceptable** when the two are within tolerance,
* **Not acceptable** when their own group seems clearly superior.

Since CBAS-ND's willingness is near-optimal while manual groups average
~2/3 of it, the model yields the paper's headline (~98.5 % rate the
recommendation better-or-acceptable) *endogenously* — no percentage is
hard-coded.
"""

from __future__ import annotations

from enum import Enum

from repro.algorithms.base import coerce_rng

__all__ = ["Opinion", "judge_opinion"]


class Opinion(Enum):
    """Participant verdict on the recommended group."""

    BETTER = "better"
    ACCEPTABLE = "acceptable"
    NOT_ACCEPTABLE = "not_acceptable"


def judge_opinion(
    recommended_willingness: float,
    manual_willingness: float,
    rng=None,
    tolerance_mean: float = 0.05,
    tolerance_std: float = 0.03,
) -> Opinion:
    """Judge a recommendation against the participant's own group.

    ``tolerance_mean``/``tolerance_std`` describe the population of
    subjective slack values (each participant draws one, floored at 1 %).
    """
    generator = coerce_rng(rng)
    tolerance = max(0.01, generator.gauss(tolerance_mean, tolerance_std))
    if manual_willingness <= 0.0:
        return Opinion.BETTER
    ratio = recommended_willingness / manual_willingness
    if ratio > 1.0 + tolerance:
        return Opinion.BETTER
    if ratio >= 1.0 - tolerance:
        return Opinion.ACCEPTABLE
    return Opinion.NOT_ACCEPTABLE
