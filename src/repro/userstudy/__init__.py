"""Simulated user study (paper §5.2, Fig. 4).

The paper recruited 137 people, had each plan 10 activities manually on
their own Facebook ego networks, and compared the hand-picked groups with
CBAS-ND and the CPLEX optimum.  Humans and their Facebook graphs are not
available offline, so this package substitutes a **bounded-rationality
manual-coordination model** (:mod:`repro.userstudy.manual`) whose
mechanisms are the ones the paper's Fig. 4 narrative relies on:

* humans see only local neighbourhood information (like greedy);
* their perception of scores is noisy;
* their patience is finite — at n = 30 and k = 13 "some users start to
  give up", which caps their search and even *reduces* their time spent;
* their preference weight λ between interest and tightness is personal
  (the paper measured λ ∈ [0.37, 0.66], mean ≈ 0.503).

:mod:`repro.userstudy.study` orchestrates the full experiment and
produces the data behind every panel of Fig. 4.
"""

from repro.userstudy.manual import ManualCoordinator, ManualResult
from repro.userstudy.opinions import Opinion, judge_opinion
from repro.userstudy.study import (
    StudyConfig,
    StudyOutcome,
    UserStudy,
    sample_lambda,
)

__all__ = [
    "ManualCoordinator",
    "ManualResult",
    "Opinion",
    "judge_opinion",
    "UserStudy",
    "StudyConfig",
    "StudyOutcome",
    "sample_lambda",
]
