"""The user-study experiment driver (paper §5.2, Fig. 4).

One :class:`UserStudy` simulates the paper's protocol:

* ``participants`` simulated users, each with a personal preference
  weight λ drawn from the distribution the paper measured (clipped normal,
  mean ≈ 0.503, support [0.37, 0.66] — Fig. 4(a));
* each participant owns an ego-style social graph (dense, clustered,
  paper score models) in which they are node 0;
* for every requested network size ``n`` (Fig. 4(b,c)) and group size
  ``k`` (Fig. 4(d,e)) the participant plans the activity three ways —
  manually, with CBAS-ND, and with the exact IP — both *with initiator*
  (the participant must attend; "-i") and *without* ("-ni");
* finally each participant rates the CBAS-ND group against their own
  (Fig. 4(f)).

Solver times are measured wall-clock; manual times come from the
behaviour model's simulated seconds.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Optional

from repro.algorithms.base import Solver
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.ip import IPSolver
from repro.core.problem import WASOProblem
from repro.graph.generators import random_social_graph
from repro.userstudy.manual import ManualCoordinator
from repro.userstudy.opinions import Opinion, judge_opinion

__all__ = ["StudyConfig", "StudyOutcome", "UserStudy", "sample_lambda"]

#: Support of the measured λ distribution (paper Fig. 4(a)).
LAMBDA_LOW = 0.37
LAMBDA_HIGH = 0.66
LAMBDA_MEAN = 0.503
LAMBDA_STD = 0.055


def sample_lambda(rng: random.Random) -> float:
    """Draw one participant's λ from the paper-measured distribution."""
    while True:
        value = rng.gauss(LAMBDA_MEAN, LAMBDA_STD)
        if LAMBDA_LOW <= value <= LAMBDA_HIGH:
            return value


@dataclass
class StudyConfig:
    """Knobs of the simulated study (defaults = the paper's settings)."""

    participants: int = 137
    network_sizes: tuple[int, ...] = (15, 20, 25, 30)
    group_sizes: tuple[int, ...] = (7, 9, 11, 13)
    base_k: int = 7
    base_n: int = 25
    solver_budget: int = 150
    seed: int = 2013


@dataclass
class CellResult:
    """Aggregated measurements for one (mode, sweep-value) cell."""

    quality: list[float] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    def mean_quality(self) -> float:
        return statistics.fmean(self.quality) if self.quality else 0.0

    def mean_seconds(self) -> float:
        return statistics.fmean(self.seconds) if self.seconds else 0.0


@dataclass
class StudyOutcome:
    """Everything Fig. 4 plots.

    ``by_n`` / ``by_k`` map mode names (``manual-i``, ``cbasnd-i``,
    ``ip-i``, ``manual-ni``, ...) to ``{sweep value: CellResult}``.
    """

    lambdas: list[float]
    by_n: dict[str, dict[int, CellResult]]
    by_k: dict[str, dict[int, CellResult]]
    opinions_i: dict[Opinion, int]
    opinions_ni: dict[Opinion, int]

    def lambda_histogram(self) -> dict[str, float]:
        """Fraction of participants per Fig. 4(a) bin."""
        bins = [
            ("0.37-0.45", LAMBDA_LOW, 0.45),
            ("0.45-0.5", 0.45, 0.50),
            ("0.5-0.55", 0.50, 0.55),
            ("0.55-0.6", 0.55, 0.60),
            ("0.6-0.66", 0.60, LAMBDA_HIGH + 1e-9),
        ]
        total = max(1, len(self.lambdas))
        histogram = {}
        for label, low, high in bins:
            count = sum(1 for lam in self.lambdas if low <= lam < high)
            histogram[label] = count / total
        return histogram

    def opinion_percentages(self, with_initiator: bool) -> dict[str, float]:
        counts = self.opinions_i if with_initiator else self.opinions_ni
        total = max(1, sum(counts.values()))
        return {
            opinion.value: counts.get(opinion, 0) / total
            for opinion in Opinion
        }


class UserStudy:
    """Run the simulated user study."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        manual: Optional[ManualCoordinator] = None,
        solver: Optional[Solver] = None,
        optimum: Optional[Solver] = None,
    ) -> None:
        self.config = config if config is not None else StudyConfig()
        self.manual = manual if manual is not None else ManualCoordinator()
        self.solver = (
            solver
            if solver is not None
            else CBASND(budget=self.config.solver_budget, m=8, stages=5)
        )
        self.optimum = optimum if optimum is not None else IPSolver()

    # ------------------------------------------------------------------
    def run(self) -> StudyOutcome:
        config = self.config
        rng = random.Random(config.seed)
        lambdas = [sample_lambda(rng) for _ in range(config.participants)]

        modes = [
            "manual-i",
            "cbasnd-i",
            "ip-i",
            "manual-ni",
            "cbasnd-ni",
            "ip-ni",
        ]
        by_n: dict[str, dict[int, CellResult]] = {
            mode: {n: CellResult() for n in config.network_sizes}
            for mode in modes
        }
        by_k: dict[str, dict[int, CellResult]] = {
            mode: {k: CellResult() for k in config.group_sizes}
            for mode in modes
        }
        opinions_i: dict[Opinion, int] = {}
        opinions_ni: dict[Opinion, int] = {}

        for participant, lam in enumerate(lambdas):
            seed = config.seed * 1000 + participant
            for n in config.network_sizes:
                graph = self._participant_graph(n, lam, seed + n)
                self._run_cell(
                    graph, config.base_k, by_n, n, seed + n, rng
                )
            for k in config.group_sizes:
                graph = self._participant_graph(
                    config.base_n, lam, seed + 7 * k
                )
                results = self._run_cell(
                    graph, k, by_k, k, seed + 7 * k, rng
                )
                if k == config.base_k:
                    # Opinion ratings use the base configuration.
                    self._record_opinion(
                        opinions_i, results, "manual-i", "cbasnd-i", rng
                    )
                    self._record_opinion(
                        opinions_ni, results, "manual-ni", "cbasnd-ni", rng
                    )

        return StudyOutcome(
            lambdas=lambdas,
            by_n=by_n,
            by_k=by_k,
            opinions_i=opinions_i,
            opinions_ni=opinions_ni,
        )

    # ------------------------------------------------------------------
    def _participant_graph(self, n: int, lam: float, seed: int):
        """Ego-style personal network: dense, clustered, participant = 0."""
        graph = random_social_graph(
            n, average_degree=min(n - 1, 8.0), seed=seed
        )
        for node in graph.nodes():
            graph.set_lam(node, lam)
        # Guarantee connectivity by chaining stray components to node 0.
        components = graph.connected_components()
        anchor_component = components[0]
        anchor = next(iter(anchor_component))
        for component in components[1:]:
            member = next(iter(component))
            graph.add_edge(anchor, member, 0.1)
        return graph

    def _run_cell(
        self,
        graph,
        k: int,
        table: dict[str, dict[int, CellResult]],
        key: int,
        seed: int,
        rng: random.Random,
    ) -> dict[str, float]:
        """Run all six modes on one graph; record quality and time."""
        ego = next(iter(graph.nodes()))
        problems = {
            "i": WASOProblem(graph=graph, k=k, required=frozenset({ego})),
            "ni": WASOProblem(graph=graph, k=k),
        }
        qualities: dict[str, float] = {}
        for suffix, problem in problems.items():
            manual = self.manual.coordinate(problem, rng=seed)
            table[f"manual-{suffix}"][key].quality.append(manual.willingness)
            table[f"manual-{suffix}"][key].seconds.append(
                manual.simulated_seconds
            )
            qualities[f"manual-{suffix}"] = manual.willingness

            solved = self.solver.solve(problem, rng=seed)
            table[f"cbasnd-{suffix}"][key].quality.append(solved.willingness)
            table[f"cbasnd-{suffix}"][key].seconds.append(
                solved.stats.elapsed_seconds
            )
            qualities[f"cbasnd-{suffix}"] = solved.willingness

            optimal = self.optimum.solve(problem, rng=seed)
            table[f"ip-{suffix}"][key].quality.append(optimal.willingness)
            table[f"ip-{suffix}"][key].seconds.append(
                optimal.stats.elapsed_seconds
            )
            qualities[f"ip-{suffix}"] = optimal.willingness
        return qualities

    @staticmethod
    def _record_opinion(
        counter: dict[Opinion, int],
        qualities: dict[str, float],
        manual_key: str,
        solver_key: str,
        rng: random.Random,
    ) -> None:
        opinion = judge_opinion(
            qualities[solver_key], qualities[manual_key], rng=rng
        )
        counter[opinion] = counter.get(opinion, 0) + 1
