"""Bounded-rationality model of manual group coordination.

The model captures how a person assembles an activity group by hand on a
social-network page:

1. **Anchoring** — the organizer starts from themselves (initiator mode)
   or from the person who seems most enthusiastic about the topic.
2. **Local, noisy evaluation** — at each step they look at people adjacent
   to the tentative group, but only a limited number of them
   (``attention_span``), and judge each candidate's added value with
   multiplicative perception noise.
3. **Limited revision** — after the group is full they try a few swap
   improvements (again noisy), not an exhaustive search.
4. **Fatigue** — every candidate considered costs simulated seconds;
   when the accumulated effort exceeds the user's patience they *give up*:
   revision stops and remaining picks are made hastily (pure noise).
   Patience pressure grows with both ``n`` and ``k``, reproducing the
   paper's observation that at n = 30 / k = 13 manual coordination breaks
   down and (counter-intuitively) takes *less* time because users quit.

The output quality therefore trails the optimizer most when the network is
large, the group is big, or the organizer is unconstrained by their own
membership ("-ni" mode considers many more candidate groups — the paper
notes exactly this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algorithms.base import coerce_rng
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError
from repro.graph.social_graph import NodeId

__all__ = ["ManualCoordinator", "ManualResult"]


@dataclass(frozen=True)
class ManualResult:
    """Outcome of one simulated manual coordination."""

    members: frozenset
    willingness: float
    simulated_seconds: float
    gave_up: bool
    candidates_considered: int


class ManualCoordinator:
    """Simulated human organizer.

    Parameters
    ----------
    perception_noise:
        Std-dev of the multiplicative noise on perceived candidate value
        (0.25 default — humans misjudge closeness/interest substantially).
    attention_span:
        Maximum number of frontier candidates examined per step.
    patience_seconds:
        Base effort budget; the *effective* budget shrinks as
        ``n·k`` grows (fatigue), creating the give-up regime.
    seconds_per_candidate:
        Simulated time to inspect one candidate profile.
    revision_rounds:
        Swap-improvement attempts after the initial pick.
    """

    def __init__(
        self,
        perception_noise: float = 0.25,
        attention_span: int = 5,
        patience_seconds: float = 150.0,
        seconds_per_candidate: float = 1.5,
        revision_rounds: int = 3,
    ) -> None:
        if perception_noise < 0.0:
            raise ValueError("perception_noise must be >= 0")
        if attention_span < 1:
            raise ValueError("attention_span must be >= 1")
        if patience_seconds <= 0.0:
            raise ValueError("patience_seconds must be > 0")
        if seconds_per_candidate <= 0.0:
            raise ValueError("seconds_per_candidate must be > 0")
        if revision_rounds < 0:
            raise ValueError("revision_rounds must be >= 0")
        self.perception_noise = perception_noise
        self.attention_span = attention_span
        self.patience_seconds = patience_seconds
        self.seconds_per_candidate = seconds_per_candidate
        self.revision_rounds = revision_rounds

    # ------------------------------------------------------------------
    def coordinate(self, problem: WASOProblem, rng=None) -> ManualResult:
        """Simulate one manual planning session for ``problem``."""
        problem.ensure_feasible()
        generator = coerce_rng(rng)
        evaluator = WillingnessEvaluator(problem.graph)
        graph = problem.graph
        allowed = set(problem.candidates())
        n = graph.number_of_nodes()
        k = problem.k

        # Fatigue: pressure grows steeply with network size (a person must
        # keep the whole candidate pool in mind, and working memory decays
        # fast) and linearly with group size, but only *binds* once it
        # exceeds 1 — small instances get the full patience budget, so
        # manual time first grows with n and k, then collapses when
        # give-ups start (the paper observes exactly this at n = 30 and
        # k = 13).  The "-ni" mode costs more time through the anchoring
        # skim over the full candidate list, not through extra pressure.
        pressure = ((n / 26.0) ** 3) * (k / 9.5) * 1.4
        effective_patience = self.patience_seconds / max(1.0, pressure)

        considered = 0
        elapsed = 0.0
        gave_up = False

        def look(
            candidates: list[NodeId], skim_all: bool = False
        ) -> list[NodeId]:
            """The subset of candidates the user actually inspects.

            ``skim_all`` models scrolling through the entire list (the
            anchoring step): every profile costs time even though only
            ``attention_span`` of them get real consideration.
            """
            nonlocal considered, elapsed, gave_up
            charged = len(candidates)
            if len(candidates) > self.attention_span:
                candidates = generator.sample(candidates, self.attention_span)
            if not skim_all:
                charged = len(candidates)
            considered += charged
            elapsed += charged * self.seconds_per_candidate
            if elapsed > effective_patience:
                gave_up = True
            return candidates

        def perceived(value: float) -> float:
            noise = generator.gauss(1.0, self.perception_noise)
            return value * max(0.0, noise)

        # --- anchoring ------------------------------------------------
        members: set[NodeId] = set(problem.required)
        if not members:
            pool = look(list(allowed), skim_all=True)
            anchor = max(
                pool,
                key=lambda node: perceived(evaluator.weighted_interest(node)),
            )
            members.add(anchor)

        # --- greedy-ish construction -----------------------------------
        while len(members) < k:
            frontier = self._frontier(problem, members, allowed)
            if not frontier:
                raise SolverError("manual coordination stalled")
            if gave_up:
                # Hasty finish: grab whoever is visible first.
                members.add(generator.choice(frontier))
                continue
            pool = look(frontier)
            choice = max(
                pool,
                key=lambda node: perceived(
                    evaluator.add_delta(node, members)
                ),
            )
            members.add(choice)

        # --- limited revision ------------------------------------------
        current = evaluator.value(members)
        for _ in range(self.revision_rounds):
            if gave_up:
                break
            swappable = [
                node for node in members if node not in problem.required
            ]
            if not swappable:
                break
            leaving = generator.choice(swappable)
            reduced = set(members)
            reduced.remove(leaving)
            frontier = self._frontier(problem, reduced, allowed)
            frontier = [node for node in frontier if node != leaving]
            if not frontier:
                continue
            pool = look(frontier)
            entering = max(
                pool,
                key=lambda node: perceived(evaluator.add_delta(node, reduced)),
            )
            candidate = reduced | {entering}
            if problem.connected and not graph.is_connected_subset(candidate):
                continue
            value = evaluator.value(candidate)
            if value > current:
                members = candidate
                current = value

        if problem.connected and not graph.is_connected_subset(members):
            # The hasty finish may have left the group disconnected; the
            # human would notice and patch it greedily.
            members = self._reconnect(problem, members, evaluator, generator)
            current = evaluator.value(members)

        return ManualResult(
            members=frozenset(members),
            willingness=current,
            simulated_seconds=elapsed,
            gave_up=gave_up,
            candidates_considered=considered,
        )

    # ------------------------------------------------------------------
    def _frontier(
        self,
        problem: WASOProblem,
        members: set[NodeId],
        allowed: set[NodeId],
    ) -> list[NodeId]:
        if not problem.connected:
            return [node for node in allowed if node not in members]
        if not members:
            return list(allowed)
        frontier: set[NodeId] = set()
        for member in members:
            for neighbour in problem.graph.neighbors(member):
                if neighbour in allowed and neighbour not in members:
                    frontier.add(neighbour)
        return list(frontier)

    def _reconnect(
        self,
        problem: WASOProblem,
        members: set[NodeId],
        evaluator: WillingnessEvaluator,
        generator: random.Random,
    ) -> set[NodeId]:
        """Greedy repair: regrow a connected group from the seed component."""
        allowed = set(problem.candidates())
        seed_pool = set(problem.required) or members
        anchor = next(iter(seed_pool))
        connected = {anchor} | set(problem.required)
        while len(connected) < problem.k:
            frontier = self._frontier(problem, connected, allowed)
            if not frontier:
                raise SolverError("manual repair stalled")
            preferred = [node for node in frontier if node in members]
            pool = preferred or frontier
            choice = max(
                pool, key=lambda node: evaluator.add_delta(node, connected)
            )
            connected.add(choice)
        return connected
