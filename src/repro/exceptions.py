"""Exception hierarchy for the WASO reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Specific subclasses communicate *which* invariant was
violated; they are raised eagerly (fail fast) rather than propagating bad
state into the solvers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """A structural problem with a :class:`~repro.graph.SocialGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """Attempted to add a node id that already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class GraphStorageError(GraphError):
    """An on-disk compiled-graph index is missing, malformed, or unusable.

    Raised by :mod:`repro.graph.storage` for structural problems with a
    saved index directory: no manifest, unparseable manifest, missing
    array files, or node ids that the format cannot represent.
    """


class StorageVersionError(GraphStorageError):
    """A saved index's manifest version is not supported by this build.

    Carries ``found`` and ``supported`` so front doors (the serving
    daemon's ``graph_path`` tenants, the CLI) can answer with a typed
    rejection instead of a crash.
    """

    def __init__(self, found: object, supported: int) -> None:
        super().__init__(
            f"compiled-graph index version {found!r} is not supported "
            f"(this build reads version {supported}); re-run `waso "
            "compile` to regenerate the index"
        )
        self.found = found
        self.supported = supported


class StorageChecksumError(GraphStorageError):
    """A saved index's array bytes do not match its manifest.

    Either the file size diverges from the declared shape or a sha256
    digest mismatches — the index is truncated or corrupted and must be
    regenerated, never silently loaded.
    """


class ProblemSpecificationError(ReproError, ValueError):
    """A :class:`~repro.core.WASOProblem` is ill-formed.

    Examples: ``k`` larger than the graph, a required node that does not
    exist, or required and forbidden sets overlapping.
    """


class InfeasibleProblemError(ReproError):
    """The problem instance admits no feasible solution.

    Raised, for instance, when no connected component can host ``k`` nodes
    together with all required attendees.
    """


class SolverError(ReproError):
    """A solver failed to produce a feasible solution."""


class WorkerCrashError(ReproError):
    """A pool worker process died (or its pipe broke) mid-RPC.

    This is the supervision layer's internal signal: the resident pools
    catch it, respawn the worker, invalidate its residency ledger, and
    re-dispatch the affected work.  It surfaces to callers only as a
    :class:`RequestFailure` with ``kind="worker_crash"`` once the retry
    budget is exhausted.
    """

    def __init__(self, worker: int, message: "str | None" = None) -> None:
        super().__init__(
            message or f"pool worker {worker} died (pipe closed mid-RPC)"
        )
        self.worker = worker


class DeadlineExpiredError(SolverError):
    """An RPC wait outlived its request's deadline.

    Raised by the pools' timeout-aware waits; the offending dispatch is
    cancelled (the worker is killed and respawned) and the expired
    request fails into :class:`BatchExecutionError` with a
    ``kind="deadline"`` :class:`RequestFailure` — the rest of the batch
    is unaffected.
    """

    def __init__(self, worker: "int | None" = None) -> None:
        where = f" (worker {worker})" if worker is not None else ""
        super().__init__(f"request deadline expired mid-dispatch{where}")
        self.worker = worker


class RequestFailure(str):
    """One failed request of a batch, with structured failure fields.

    A ``str`` subclass so historical callers that treated
    ``BatchExecutionError.failures`` values as plain traceback strings
    (``"..." in failure``, ``failure.splitlines()``) keep working, while
    new callers can distinguish retryable from fatal failures:

    * ``kind`` — ``"worker_crash"`` (pool worker died and the retry
      budget ran out; retryable — the request itself may be fine),
      ``"deadline"`` (the request's ``deadline_s`` expired; retryable
      with a larger budget), ``"solver_error"`` (the solve itself
      raised — e.g. infeasible; fatal, a retry would fail identically),
      or one of the serving daemon's admission rejections
      (:mod:`repro.serving`): ``"shed"`` (the request was refused at
      arrival — bounded queue full, tenant over its in-flight limit, or
      the daemon draining; retryable after backing off) and
      ``"queue_timeout"`` (the request was admitted but waited in the
      queue past the admission controller's patience; retryable);
    * ``retries`` — how many re-dispatches were attempted before giving
      up;
    * ``index`` — the request's position in the batch (``None`` when
      unknown).
    """

    KINDS = (
        "worker_crash",
        "deadline",
        "solver_error",
        "shed",
        "queue_timeout",
    )

    def __new__(
        cls,
        message: str,
        kind: str = "solver_error",
        retries: int = 0,
        index: "int | None" = None,
    ) -> "RequestFailure":
        if kind not in cls.KINDS:
            raise ValueError(
                f"kind must be one of {cls.KINDS}, got {kind!r}"
            )
        self = super().__new__(cls, message)
        self.kind = kind
        self.retries = retries
        self.index = index
        return self


class BatchExecutionError(SolverError):
    """One or more requests of a ``solve_many`` batch failed.

    The batch drains fully before this is raised — completed requests
    are never discarded by a neighbour's failure.  ``results`` holds the
    batch outcome in request order (``None`` at each failed slot) and
    ``failures`` maps the failed request indices to
    :class:`RequestFailure` records (``str`` subclasses carrying the
    worker-side traceback plus ``kind`` / ``retries`` / ``index``, so
    callers can tell a crashed worker from an infeasible request); every
    completed result also records the failed indices in
    ``stats.extra["failed_requests"]``.
    """

    def __init__(self, failures: dict, results: list) -> None:
        self.failures = {
            index: (
                failure
                if isinstance(failure, RequestFailure)
                else RequestFailure(failure, index=index)
            )
            for index, failure in dict(failures).items()
        }
        self.results = list(results)
        indices = sorted(self.failures)
        head = self.failures[indices[0]]
        first = head.strip().splitlines()[-1] if head.strip() else head.kind
        super().__init__(
            f"{len(indices)} of {len(results)} batched requests failed "
            f"(indices {indices}); first failure "
            f"[{head.kind}]: {first}"
        )


class BudgetExhaustedError(SolverError):
    """The computational budget ran out before any feasible sample."""


class ConvergenceError(SolverError):
    """An iterative component (CE update, Gaussian OCBA) failed to converge."""
