"""Exception hierarchy for the WASO reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Specific subclasses communicate *which* invariant was
violated; they are raised eagerly (fail fast) rather than propagating bad
state into the solvers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """A structural problem with a :class:`~repro.graph.SocialGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """Attempted to add a node id that already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class ProblemSpecificationError(ReproError, ValueError):
    """A :class:`~repro.core.WASOProblem` is ill-formed.

    Examples: ``k`` larger than the graph, a required node that does not
    exist, or required and forbidden sets overlapping.
    """


class InfeasibleProblemError(ReproError):
    """The problem instance admits no feasible solution.

    Raised, for instance, when no connected component can host ``k`` nodes
    together with all required attendees.
    """


class SolverError(ReproError):
    """A solver failed to produce a feasible solution."""


class BatchExecutionError(SolverError):
    """One or more requests of a ``solve_many`` batch failed.

    The batch drains fully before this is raised — completed requests
    are never discarded by a neighbour's failure.  ``results`` holds the
    batch outcome in request order (``None`` at each failed slot) and
    ``failures`` maps the failed request indices to their worker-side
    tracebacks; every completed result also records the failed indices
    in ``stats.extra["failed_requests"]``.
    """

    def __init__(self, failures: dict, results: list) -> None:
        self.failures = dict(failures)
        self.results = list(results)
        indices = sorted(self.failures)
        first = self.failures[indices[0]].strip().splitlines()[-1]
        super().__init__(
            f"{len(indices)} of {len(results)} batched requests failed "
            f"(indices {indices}); first failure: {first}"
        )


class BudgetExhaustedError(SolverError):
    """The computational budget ran out before any feasible sample."""


class ConvergenceError(SolverError):
    """An iterative component (CE update, Gaussian OCBA) failed to converge."""
