"""Shared graph-residency machinery for the persistent worker pools.

Both parallel modes keep the O(V+E) detached
:class:`~repro.graph.compiled.CompiledGraph` arrays *resident* in their
worker processes so a serving session ships each frozen graph **exactly
once per (graph, worker) pair** — follow-up solves, batches, and online
re-planning rounds send only the O(1)
:meth:`~repro.core.problem.WASOProblem.payload_spec` plus per-request
seeds and budgets.  This module is the single implementation of that
protocol; :class:`~repro.parallel.stage_pool.StagePool` (stage-level)
and :class:`~repro.parallel.pool.ResidentSolvePool` (solve-level) both
build on it instead of duplicating the bookkeeping.

The protocol has three parts:

* **generation tags** — every freeze of a graph mints a fresh
  :attr:`~repro.graph.compiled.CompiledGraph.payload_token`; the token
  survives pickling and :meth:`~repro.graph.compiled.CompiledGraph.
  detach`, so "the arrays already resident in a worker" and "a new
  freeze that must be shipped" are distinguishable without comparing
  arrays.  A graph mutation produces a new freeze and therefore a new
  tag, transparently invalidating stale residency.
* **parent-driven eviction** — long serving sessions touch many graphs,
  so each worker's resident cache is bounded
  (:data:`DEFAULT_RESIDENT_GRAPHS` per worker) with least-recently-used
  eviction.  The parent holds one :class:`ResidencyLedger` per worker (a
  mirror of that worker's cache) and *decides* the evictions itself,
  attaching them to the install message — both sides therefore agree on
  the resident set without any handshake, and the parent can answer
  "would shipping be needed?" locally.
* **uniform accounting** — :func:`record_shipping` writes the same
  ``SolveStats.extra`` keys (``graph_shipped``, ``graph_installs``,
  ``batch_payload_bytes``) for every consumer, so stage-sharded solves,
  multiplexed ``solve_many`` chunks, and best-of budget splits are
  comparable in one overhead curve (the benches persist these series).
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from typing import Iterable, Optional

__all__ = [
    "DEFAULT_RESIDENT_GRAPHS",
    "ResidentGraphStore",
    "ResidencyLedger",
    "WorkerPoolBase",
    "record_shipping",
]

#: How many distinct graphs' frozen arrays a worker keeps resident
#: before the least-recently-used one is evicted.  Payloads are O(V+E),
#: so the bound exists to keep long multi-tenant serving sessions (many
#: graphs cycling through one pool) from pinning unbounded memory in
#: every worker; sessions over fewer graphs never evict at all.
DEFAULT_RESIDENT_GRAPHS = 4


class ResidentGraphStore:
    """Worker-side cache of detached compiled-graph arrays, by token.

    The store itself is a plain mapping: capacity and LRU order live in
    the parent's :class:`ResidencyLedger`, which sends explicit eviction
    lists with each install, so the two sides can never disagree about
    what is resident.
    """

    def __init__(self) -> None:
        self._graphs: dict = {}

    def install(self, token: str, compiled, evict: Iterable[str] = ()) -> None:
        """Make ``compiled`` resident under ``token``, dropping ``evict``."""
        for stale in evict:
            self._graphs.pop(stale, None)
        self._graphs[token] = compiled

    def get(self, token: str):
        """The resident arrays for ``token`` (protocol error when absent)."""
        try:
            return self._graphs[token]
        except KeyError:
            raise RuntimeError(
                f"graph {token!r} is not resident in this worker "
                f"(resident: {sorted(self._graphs)})"
            ) from None

    def __contains__(self, token: str) -> bool:
        return token in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def tokens(self) -> tuple:
        return tuple(self._graphs)


class ResidencyLedger:
    """Parent-side mirror of one worker's resident-graph cache.

    :meth:`plan` is the single decision point: it marks the token as
    just-used and answers whether the arrays must be shipped, and which
    resident tokens the worker must evict to make room.  Because every
    install the parent performs goes through here, the mirror is exact.
    """

    def __init__(self, capacity: int = DEFAULT_RESIDENT_GRAPHS) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        #: Number of installs planned so far (monotone; tests / stats).
        self.installs = 0

    def plan(
        self, token: str, pinned: "Iterable[str]" = ()
    ) -> "tuple[bool, tuple[str, ...]]":
        """Record a use of ``token``; return ``(ship, evictions)``.

        ``ship`` is ``True`` when the worker does not hold the arrays
        and they must be sent; ``evictions`` lists the least-recently
        used tokens the install must displace to respect the capacity.
        ``pinned`` tokens are never selected for eviction — a dispatch
        touching several graphs pins the whole set it is about to
        reference, because installs are shipped ahead of the work that
        uses them (the cache may transiently exceed its capacity when
        one dispatch references more graphs than fit; it shrinks back
        on later plans).
        """
        if token in self._lru:
            self._lru.move_to_end(token)
            return False, ()
        pinned = set(pinned)
        evictions = []
        for candidate in list(self._lru):  # least recently used first
            if len(self._lru) - len(evictions) < self.capacity:
                break
            if candidate in pinned:
                continue
            evictions.append(candidate)
        for stale in evictions:
            del self._lru[stale]
        self._lru[token] = None
        self.installs += 1
        return True, tuple(evictions)

    def is_resident(self, token: str) -> bool:
        return token in self._lru

    def resident_tokens(self) -> tuple:
        """Tokens currently resident, least recently used first."""
        return tuple(self._lru)

    def most_recent(self) -> Optional[str]:
        """The most recently used resident token (``None`` when empty)."""
        return next(reversed(self._lru)) if self._lru else None


class WorkerPoolBase:
    """Process-lifecycle scaffolding shared by the resident pools.

    Owns the spawn loop (one pipe-connected daemon process per worker),
    idempotent :meth:`close` (graceful ``("close",)`` message, join,
    terminate stragglers), context-manager support, and the terminal
    failure path :meth:`_fail`: a pipe-level protocol failure (a worker
    died, a connection broke) leaves worker state unknowable, so the
    pool tears itself down and raises instead of serving desynchronized
    residency state to later dispatches.
    """

    def __init__(self, workers: int, worker_main) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        context = multiprocessing.get_context()
        self._procs = []
        self._conns = []
        for _ in range(workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._procs)

    def _fail(self, reason: str) -> None:
        """Tear the pool down after a protocol-level failure and raise."""
        self.close()
        raise RuntimeError(reason)

    def close(self) -> None:
        """Shut the workers down (best effort, idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"{type(self).__name__}(workers={self.workers}, {state})"


def record_shipping(
    extra: dict,
    shipped: bool,
    payload_bytes: "Optional[int]" = None,
    installs: "Optional[int]" = None,
) -> None:
    """Uniform ``SolveStats.extra`` accounting for residency shipping.

    Every consumer of a resident pool — the stage-sharded executor, the
    ``solve_many`` multiplexer, and the best-of budget split — records
    its shipping through this one function so the keys (and therefore
    the bench overhead curves) stay comparable:

    * ``graph_shipped`` — whether this solve / batch installed resident
      graph arrays into any worker (``False`` on every warm follow-up,
      and always ``False`` on the dict-graph reference path, which has
      no resident representation — its per-request problem pickles show
      up in the byte count below instead);
    * ``graph_installs`` — how many (graph, worker) installs it
      performed (omitted when the caller does not track per-worker
      installs);
    * ``batch_payload_bytes`` — total pickled bytes put on the wire for
      the solve / batch: graph installs, problem specs, *and* any
      full dict problems shipped for reference-engine requests.
    """
    extra["graph_shipped"] = shipped
    if installs is not None:
        extra["graph_installs"] = installs
    if payload_bytes is not None:
        extra["batch_payload_bytes"] = payload_bytes
