"""Shared graph-residency machinery for the persistent worker pools.

Both parallel modes keep the O(V+E) detached
:class:`~repro.graph.compiled.CompiledGraph` arrays *resident* in their
worker processes so a serving session ships each frozen graph **exactly
once per (graph, worker) pair** — follow-up solves, batches, and online
re-planning rounds send only the O(1)
:meth:`~repro.core.problem.WASOProblem.payload_spec` plus per-request
seeds and budgets.  This module is the single implementation of that
protocol; :class:`~repro.parallel.stage_pool.StagePool` (stage-level)
and :class:`~repro.parallel.pool.ResidentSolvePool` (solve-level) both
build on it instead of duplicating the bookkeeping.

The protocol has three parts:

* **generation tags** — every freeze of a graph mints a fresh
  :attr:`~repro.graph.compiled.CompiledGraph.payload_token`; the token
  survives pickling and :meth:`~repro.graph.compiled.CompiledGraph.
  detach`, so "the arrays already resident in a worker" and "a new
  freeze that must be shipped" are distinguishable without comparing
  arrays.  An out-of-band graph mutation produces a new freeze and
  therefore a new tag, transparently invalidating stale residency;
  a mutation routed through :meth:`~repro.graph.compiled.CompiledGraph.
  apply_deltas` instead keeps the token and bumps its integer
  *generation*.  The ledger mirrors the generation each worker holds,
  and :func:`plan_graph_message` upgrades a stale-but-resident worker
  with a sparse ``("graph_patch", token, gen, batches)`` message —
  O(|delta|) bytes replayed against the resident arrays — falling back
  to a full re-install when the worker is too far behind the bounded
  replay log or holds a read-only path-installed (mmap) copy.
* **parent-driven eviction** — long serving sessions touch many graphs,
  so each worker's resident cache is bounded
  (:data:`DEFAULT_RESIDENT_GRAPHS` per worker) with least-recently-used
  eviction.  The parent holds one :class:`ResidencyLedger` per worker (a
  mirror of that worker's cache) and *decides* the evictions itself,
  attaching them to the install message — both sides therefore agree on
  the resident set without any handshake, and the parent can answer
  "would shipping be needed?" locally.
* **uniform accounting** — :func:`record_shipping` writes the same
  ``SolveStats.extra`` keys (``graph_shipped``, ``graph_installs``,
  ``batch_payload_bytes``) for every consumer, so stage-sharded solves,
  multiplexed ``solve_many`` chunks, and best-of budget splits are
  comparable in one overhead curve (the benches persist these series).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import OrderedDict, deque
from typing import Iterable, Optional

from repro.exceptions import DeadlineExpiredError, WorkerCrashError

__all__ = [
    "DEFAULT_RESIDENT_GRAPHS",
    "DEFAULT_MAX_RETRIES",
    "ResidentGraphStore",
    "ResidencyLedger",
    "WorkerPoolBase",
    "plan_graph_message",
    "apply_graph_patch",
    "record_shipping",
    "record_recovery",
]

#: How many distinct graphs' frozen arrays a worker keeps resident
#: before the least-recently-used one is evicted.  Payloads are O(V+E),
#: so the bound exists to keep long multi-tenant serving sessions (many
#: graphs cycling through one pool) from pinning unbounded memory in
#: every worker; sessions over fewer graphs never evict at all.
DEFAULT_RESIDENT_GRAPHS = 4

#: How many times a crashed dispatch (a solve-pool chunk, a stage
#: shard) is re-sent to a respawned worker before the failure is
#: reported (solve pool) or the work falls back to in-parent execution
#: (stage pool).  Every dispatch carries explicit seeds, so a retry is
#: bit-identical to the original — the bound exists only to stop a
#: deterministically-crashing dispatch (e.g. a worker OOM reproduced by
#: its own payload) from respawn-looping forever.
DEFAULT_MAX_RETRIES = 2


class ResidentGraphStore:
    """Worker-side cache of detached compiled-graph arrays, by token.

    The store itself is a plain mapping: capacity and LRU order live in
    the parent's :class:`ResidencyLedger`, which sends explicit eviction
    lists with each install, so the two sides can never disagree about
    what is resident.
    """

    def __init__(self) -> None:
        self._graphs: dict = {}

    def install(self, token: str, compiled, evict: Iterable[str] = ()) -> None:
        """Make ``compiled`` resident under ``token``, dropping ``evict``.

        An evicted graph that is mmap-backed (path-installed from a
        frozen on-disk index) is explicitly closed so the worker's
        mapping is released immediately rather than at whatever point
        the garbage collector notices — resident-set bytes stay bounded
        by the ledger capacity even for out-of-core graphs.
        """
        for stale in evict:
            old = self._graphs.pop(stale, None)
            if old is not None and getattr(old, "is_mmap_backed", False):
                old.close()
        # A re-install over the same token (e.g. a path-installed graph
        # demoted to arrays because it was patched in the parent) must
        # release the old copy's mappings immediately too.
        old = self._graphs.get(token)
        if (
            old is not None
            and old is not compiled
            and getattr(old, "is_mmap_backed", False)
        ):
            old.close()
        self._graphs[token] = compiled

    def get(self, token: str):
        """The resident arrays for ``token`` (protocol error when absent)."""
        try:
            return self._graphs[token]
        except KeyError:
            raise RuntimeError(
                f"graph {token!r} is not resident in this worker "
                f"(resident: {sorted(self._graphs)})"
            ) from None

    def __contains__(self, token: str) -> bool:
        return token in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def tokens(self) -> tuple:
        return tuple(self._graphs)


class ResidencyLedger:
    """Parent-side mirror of one worker's resident-graph cache.

    :meth:`plan` is the single decision point: it marks the token as
    just-used and answers whether the arrays must be shipped, and which
    resident tokens the worker must evict to make room.  Because every
    install the parent performs goes through here, the mirror is exact.
    """

    def __init__(self, capacity: int = DEFAULT_RESIDENT_GRAPHS) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        #: Number of installs planned so far (monotone; tests / stats).
        self.installs = 0
        #: Per-token ``(generation, by_path)`` of what the worker holds:
        #: the generation its resident arrays were last installed at or
        #: patched to, and whether the install mapped a read-only on-disk
        #: index (path installs cannot be patched in place).
        self._meta: dict = {}

    def plan(
        self, token: str, pinned: "Iterable[str]" = ()
    ) -> "tuple[bool, tuple[str, ...]]":
        """Record a use of ``token``; return ``(ship, evictions)``.

        ``ship`` is ``True`` when the worker does not hold the arrays
        and they must be sent; ``evictions`` lists the least-recently
        used tokens the install must displace to respect the capacity.
        ``pinned`` tokens are never selected for eviction — a dispatch
        touching several graphs pins the whole set it is about to
        reference, because installs are shipped ahead of the work that
        uses them (the cache may transiently exceed its capacity when
        one dispatch references more graphs than fit; it shrinks back
        on later plans).
        """
        if token in self._lru:
            self._lru.move_to_end(token)
            return False, ()
        pinned = set(pinned)
        evictions = []
        for candidate in list(self._lru):  # least recently used first
            if len(self._lru) - len(evictions) < self.capacity:
                break
            if candidate in pinned:
                continue
            evictions.append(candidate)
        for stale in evictions:
            del self._lru[stale]
            self._meta.pop(stale, None)
        self._lru[token] = None
        self.installs += 1
        return True, tuple(evictions)

    # ------------------------------------------------------------------
    # Generation mirror — what epoch of the arrays the worker holds.
    # ------------------------------------------------------------------
    def record_install(
        self, token: str, generation: int = 0, by_path: bool = False
    ) -> None:
        """Record a full install of ``token`` at ``generation``."""
        self._meta[token] = (int(generation), bool(by_path))

    def record_patch(self, token: str, generation: int) -> None:
        """Record that the worker's resident copy was patched forward."""
        self._meta[token] = (int(generation), False)

    def resident_generation(self, token: str) -> "Optional[int]":
        """Generation the worker's resident copy sits at (None if unknown)."""
        entry = self._meta.get(token)
        return None if entry is None else entry[0]

    def installed_by_path(self, token: str) -> bool:
        """Whether the resident copy maps a read-only on-disk index."""
        entry = self._meta.get(token)
        return False if entry is None else entry[1]

    def reset(self) -> None:
        """Forget the mirror: the worker's cache is gone (respawn).

        A respawned worker starts with an empty
        :class:`ResidentGraphStore`, so its ledger must forget every
        resident token and any pinned-payload accounting with it — the
        next :meth:`plan` for any token then answers "ship", which is
        exactly how the generation-tag protocol re-converges.  The
        monotone ``installs`` counter is deliberately kept: it counts
        work performed, not work still resident.
        """
        self._lru.clear()
        self._meta.clear()

    def is_resident(self, token: str) -> bool:
        return token in self._lru

    def resident_tokens(self) -> tuple:
        """Tokens currently resident, least recently used first."""
        return tuple(self._lru)

    def most_recent(self) -> Optional[str]:
        """The most recently used resident token (``None`` when empty)."""
        return next(reversed(self._lru)) if self._lru else None


def plan_graph_message(ledger, token, compiled, ship, evictions, payload):
    """Resolve one worker's graph message after ``ledger.plan``.

    The single decision point both pools share for the mutable-graph
    protocol.  ``ship``/``evictions`` are :meth:`ResidencyLedger.plan`'s
    answer; ``payload()`` lazily produces the full-install pickle object
    (a detached :class:`~repro.graph.compiled.CompiledGraph`), called
    only when an array install is actually needed.

    Returns ``(message, kind)``:

    * ``(None, None)`` — the worker is resident at the current
      generation; nothing to send.
    * ``(("graph_patch", token, gen, batches), "patch")`` — resident but
      stale; the O(|delta|) replay batches bring it current.  Recorded
      via :meth:`ResidencyLedger.record_patch`; *not* counted as an
      install.
    * ``(("graph"|"graph_path", ...), "install")`` — a full install:
      cold worker, or a stale one demoted because it maps a read-only
      path-installed index or has fallen behind the bounded replay log.
      A demotion bumps ``ledger.installs`` (the plan did not).
    """
    generation = getattr(compiled, "generation", 0)
    home = getattr(compiled, "disk_home", None)
    if not ship:
        held = ledger.resident_generation(token)
        if held == generation:
            return None, None
        batches = None
        if not ledger.installed_by_path(token):
            since = getattr(compiled, "delta_batches_since", None)
            if since is not None:
                batches = since(held)
        if batches:
            ledger.record_patch(token, generation)
            return ("graph_patch", token, generation, batches), "patch"
        # Demotion to a full re-install: a path-installed worker maps
        # the saved read-only arrays (unpatchable in place), and a
        # worker behind the compacted replay log has nothing to replay
        # from.  The resident slot is reused, so no evictions.
        ledger.installs += 1
        evictions = ()
    if home is not None:
        ledger.record_install(token, generation, by_path=True)
        return ("graph_path", token, home, evictions), "install"
    ledger.record_install(token, generation, by_path=False)
    return ("graph", token, payload(), evictions), "install"


def apply_graph_patch(store: "ResidentGraphStore", token, generation, batches):
    """Worker-side handler for a ``("graph_patch", ...)`` install.

    Replays the delta batches against the resident arrays (one
    generation bump per batch, mirroring the parent's commits) and
    verifies the copy lands exactly on the advertised generation — a
    mismatch is a protocol error the worker reports instead of serving
    silently-diverged arrays.
    """
    compiled = store.get(token)
    for batch in batches:
        compiled.apply_deltas(batch)
    if getattr(compiled, "generation", None) != generation:
        raise RuntimeError(
            f"graph_patch for {token!r} landed at generation "
            f"{getattr(compiled, 'generation', None)!r}, expected "
            f"{generation!r}"
        )


class WorkerPoolBase:
    """Process-lifecycle scaffolding shared by the resident pools.

    Owns the spawn loop (one pipe-connected daemon process per worker),
    hang-free idempotent :meth:`close` (graceful ``("close",)`` message,
    bounded drain, terminate, kill), context-manager support — and the
    *supervision* layer both pools' self-healing builds on:

    * :meth:`_send_bytes` / :meth:`_recv` are the single send/receive
      choke points.  Every send increments the worker's RPC sequence
      number (monotone per worker *slot*, surviving respawns) and every
      wait polls with liveness detection, so a dead worker surfaces as
      :class:`~repro.exceptions.WorkerCrashError` instead of a hung
      ``recv`` — and a wait given a deadline raises
      :class:`~repro.exceptions.DeadlineExpiredError` when it passes
      without a reply (a reply that is already available is always
      delivered: completed work is never discarded for missing a
      deadline while queued).
    * :meth:`respawn` replaces a dead (or cancellation-killed) worker
      with a fresh process and calls the :meth:`_on_respawn` hook, where
      subclasses invalidate the worker's residency ledger — the
      respawned worker's :class:`ResidentGraphStore` is empty, so every
      mirrored token must be forgotten for the generation-tag protocol
      to re-ship what the retried dispatches need.
    * ``fault_plan`` (default ``None``) is the test-only hook for
      :class:`~repro.parallel.faults.FaultPlan`: deterministic kills,
      reply drops, and reply delays keyed by ``(worker, rpc)``, checked
      at the same two choke points.

    :meth:`_fail` remains the terminal path for *protocol* errors (a
    worker replying with a message-level error, i.e. a bug rather than
    a crash): the pool tears itself down and raises.
    """

    def __init__(self, workers: int, worker_main) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self._mp = multiprocessing.get_context()
        self._worker_main = worker_main
        self._procs = []
        self._conns = []
        for _ in range(workers):
            proc, conn = self._spawn_worker()
            self._procs.append(proc)
            self._conns.append(conn)
        #: RPCs sent per worker slot (1-based sequence; monotone across
        #: respawns, so a fault plan can name any point in the session).
        self._sends = [0] * workers
        #: Send-sequence numbers awaiting replies, per worker, in order
        #: — replies arrive in send order per pipe, so the head is the
        #: RPC the next reply answers (fault plans key dispositions on
        #: it).  Cleared on respawn: a fresh worker owes nothing.
        self._awaiting: "list[deque]" = [deque() for _ in range(workers)]
        #: Worker processes respawned over the pool's lifetime.
        self.worker_restarts = 0
        #: Test-only :class:`~repro.parallel.faults.FaultPlan` hook.
        self.fault_plan = None
        self._closed = False

    def _spawn_worker(self):
        parent_conn, child_conn = self._mp.Pipe()
        proc = self._mp.Process(
            target=self._worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    @property
    def workers(self) -> int:
        return len(self._procs)

    # ------------------------------------------------------------------
    # Supervised RPC primitives
    # ------------------------------------------------------------------
    def _send_bytes(self, worker: int, data: bytes) -> None:
        """Send one pre-pickled message to ``worker`` (never raises).

        A send into a dead worker's pipe either lands in the OS buffer
        or fails outright; both leave the same observable state — no
        reply will ever come — so send failures are swallowed here and
        the crash surfaces at the next :meth:`_recv`'s liveness check,
        keeping one recovery path instead of two.
        """
        self._sends[worker] += 1
        seq = self._sends[worker]
        plan = self.fault_plan
        if plan is not None and plan.kill_before_send(worker, seq):
            self._procs[worker].kill()
            self._procs[worker].join(timeout=5.0)
        self._awaiting[worker].append(seq)
        try:
            self._conns[worker].send_bytes(data)
        except (BrokenPipeError, OSError):
            pass

    def _recv(self, worker: int, deadline: "Optional[float]" = None):
        """Wait for ``worker``'s next reply with liveness and deadline.

        Raises :class:`~repro.exceptions.WorkerCrashError` when the
        process is dead with no buffered reply, and
        :class:`~repro.exceptions.DeadlineExpiredError` when
        ``deadline`` (a ``time.monotonic()`` instant) passes first.  A
        reply that is already available is delivered even at or past the
        deadline — the work is done; only a *missing* reply expires.
        """
        conn = self._conns[worker]
        queue = self._awaiting[worker]
        plan = self.fault_plan
        disposition = None
        if plan is not None and queue:
            disposition = plan.reply_disposition(worker, queue[0])
        held = None
        hold_until = 0.0
        while True:
            ready = held is None and conn.poll(0)
            if not ready:
                now = time.monotonic()
                if held is not None and now >= hold_until:
                    if queue:
                        queue.popleft()
                    return held
                if deadline is not None and now >= deadline:
                    raise DeadlineExpiredError(worker)
                if held is None:
                    if not self._procs[worker].is_alive() and not conn.poll(0):
                        raise WorkerCrashError(worker)
                    if not conn.poll(0.02):
                        continue
                else:
                    time.sleep(min(0.02, hold_until - now))
                    continue
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                raise WorkerCrashError(worker) from None
            if disposition == "drop":
                # Injected reply loss: the message is gone; the wait
                # continues (and starves into its deadline, if any).
                disposition = None
                continue
            if disposition is not None:
                # Injected delay: hold the reply, then deliver — unless
                # the deadline fires first, in which case the dispatch
                # is cancelled exactly as with a genuinely late worker.
                held = reply
                hold_until = time.monotonic() + float(disposition)
                disposition = None
                continue
            if queue:
                queue.popleft()
            return reply

    def respawn(self, worker: int) -> None:
        """Replace ``worker``'s process with a fresh one.

        Used both for genuinely dead workers and as the cancellation
        path for an expired deadline (the only way to cancel a dispatch
        already executing in a worker is to kill the worker).  The old
        process is killed and joined (no zombies), the pipe replaced,
        pending-reply bookkeeping cleared, and :meth:`_on_respawn` lets
        the subclass invalidate the worker's residency ledger — the
        fresh worker holds nothing.
        """
        old = self._procs[worker]
        if old.is_alive():
            old.kill()
        old.join(timeout=5.0)
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - already broken
            pass
        self._procs[worker], self._conns[worker] = self._spawn_worker()
        self._awaiting[worker].clear()
        self.worker_restarts += 1
        self._on_respawn(worker)

    def _on_respawn(self, worker: int) -> None:
        """Subclass hook: reset the worker's parent-side mirrors."""

    def _fail(self, reason: str) -> None:
        """Tear the pool down after a protocol-level failure and raise."""
        self.close()
        raise RuntimeError(reason)

    def close(self) -> None:
        """Shut the workers down (idempotent, hang-free).

        Dead or wedged workers must never block shutdown: the graceful
        ``("close",)`` send is best-effort, the join budget is shared
        across all workers rather than paid per process, and stragglers
        are escalated terminate → kill.  Safe to call any number of
        times, including when every worker already crashed.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.join(timeout=max(0.05, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"{type(self).__name__}(workers={self.workers}, {state})"


def record_shipping(
    extra: dict,
    shipped: bool,
    payload_bytes: "Optional[int]" = None,
    installs: "Optional[int]" = None,
    patch_bytes: "Optional[int]" = None,
) -> None:
    """Uniform ``SolveStats.extra`` accounting for residency shipping.

    Every consumer of a resident pool — the stage-sharded executor, the
    ``solve_many`` multiplexer, and the best-of budget split — records
    its shipping through this one function so the keys (and therefore
    the bench overhead curves) stay comparable:

    * ``graph_shipped`` — whether this solve / batch installed resident
      graph arrays into any worker (``False`` on every warm follow-up,
      and always ``False`` on the dict-graph reference path, which has
      no resident representation — its per-request problem pickles show
      up in the byte count below instead);
    * ``graph_installs`` — how many (graph, worker) installs it
      performed (omitted when the caller does not track per-worker
      installs);
    * ``batch_payload_bytes`` — total pickled bytes put on the wire for
      the solve / batch: graph installs, problem specs, *and* any
      full dict problems shipped for reference-engine requests;
    * ``graph_patch_bytes`` — bytes of sparse ``graph_patch`` upgrades
      sent to stale-but-resident workers (written only when non-zero,
      so patch-free stats stay byte-identical to the committed
      baselines; patches are deliberately *not* counted in
      ``graph_installs`` — that key keeps meaning full array installs).
    """
    extra["graph_shipped"] = shipped
    if installs is not None:
        extra["graph_installs"] = installs
    if payload_bytes is not None:
        extra["batch_payload_bytes"] = payload_bytes
    if patch_bytes:
        extra["graph_patch_bytes"] = patch_bytes


def record_recovery(
    extra: dict,
    restarts: int = 0,
    retries: int = 0,
    degraded: int = 0,
    deadline_missed: int = 0,
) -> None:
    """Uniform ``SolveStats.extra`` accounting for recovery events.

    The self-healing counterpart of :func:`record_shipping`: every
    consumer (the ``solve_many`` multiplexer, the stage-sharded
    executor, the best-of split) reports what its pool had to survive
    through the same keys —

    * ``worker_restarts`` — worker processes respawned during the solve
      / batch;
    * ``chunk_retries`` — chunks or stage shards re-dispatched after a
      crash (each retry is bit-identical to the original dispatch: the
      seeds travel with the work);
    * ``degraded_to_serial`` — requests (or shards) that fell back to
      in-parent execution after the retry budget was exhausted;
    * ``deadline_missed`` — dispatches cancelled because a request's
      deadline expired.

    Keys are written only when non-zero, so a fault-free solve's stats
    are byte-identical to what they were before the supervision layer
    existed — the differential suites stay strict.
    """
    if restarts:
        extra["worker_restarts"] = restarts
    if retries:
        extra["chunk_retries"] = retries
    if degraded:
        extra["degraded_to_serial"] = degraded
    if deadline_missed:
        extra["deadline_missed"] = deadline_missed
