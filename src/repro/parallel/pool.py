"""Multi-worker execution of the randomized solvers.

The paper parallelizes CBAS / CBAS-ND with OpenMP and reports a ~7.6×
speedup on 8 threads (Fig. 5(d)); the samples drawn from different start
nodes are independent, so the workload is embarrassingly parallel.  CPython
threads cannot exploit that (GIL), so the equivalent here is a *process*
pool: the total budget ``T`` is split into one share per worker (the
remainder spread over the first workers so no sample is dropped), each
worker runs the underlying solver on its share with an independent RNG
stream, and the best of the partial results wins.

This is the same statistical computation as a single run with budget ``T``
up to budget-allocation granularity (each worker re-derives its own OCBA
allocation from its own samples), which mirrors the paper's OpenMP loop —
its threads also synchronize only at stage boundaries.

Worker payloads are slim: when every worker solver runs the compiled
engine (the default), the pool ships ``problem.detached()`` — the frozen
flat arrays behind an :class:`~repro.graph.compiled.ArrayBackedGraph`
facade, **no adjacency dicts** — and each worker reconstructs its solve
state locally from the arrays.  Only a solver explicitly configured with
``engine="reference"`` falls back to pickling the full dict graph.
"""

from __future__ import annotations

import pickle
import random
from concurrent.futures import ProcessPoolExecutor

from repro.algorithms.base import RngLike, SolveResult, Solver, SolveStats, coerce_rng
from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem

__all__ = [
    "ParallelSolver",
    "parallel_solve",
    "split_budget",
    "worker_payload_bytes",
]


def _worker(args) -> tuple[frozenset, float, int, int]:
    """Run one budget share in a worker process (module-level: picklable)."""
    problem, solver, seed = args
    result = solver.solve(problem, rng=seed)
    return (
        result.solution.members,
        result.solution.willingness,
        result.stats.samples_drawn,
        result.stats.failed_samples,
    )


def split_budget(total_budget: int, workers: int) -> list[int]:
    """Per-worker budget shares summing exactly to ``total_budget``.

    The remainder of ``total_budget // workers`` lands one sample at a
    time on the first workers instead of being silently dropped.
    """
    share, remainder = divmod(total_budget, workers)
    shares = [share + 1 if index < remainder else share for index in range(workers)]
    assert sum(shares) == total_budget, (shares, total_budget)
    return shares


def worker_payload_bytes(problem: WASOProblem) -> dict[str, int]:
    """Pickled payload sizes: slim compiled arrays vs the dict graph.

    ``compiled_arrays_bytes`` measures ``problem.detached()`` — what the
    pool ships to compiled-engine workers; ``dict_graph_bytes`` measures
    the problem over the plain dict-backed graph (compiled cache
    excluded), i.e. the historical payload.  Benchmarks gate the former
    strictly below the latter.
    """
    graph = problem.graph
    if not hasattr(graph, "_compiled_cache"):
        raise ValueError(
            "worker_payload_bytes needs a problem over the dict-backed "
            "SocialGraph; this one is already array-backed (detached)"
        )
    slim = len(pickle.dumps(problem.detached()))
    cache = graph._compiled_cache
    graph._compiled_cache = None
    try:
        full = len(pickle.dumps(problem))
    finally:
        graph._compiled_cache = cache
    return {"compiled_arrays_bytes": slim, "dict_graph_bytes": full}


def parallel_solve(
    problem: WASOProblem,
    solver_factory,
    total_budget: int,
    workers: int,
    rng: RngLike = None,
) -> SolveResult:
    """Split ``total_budget`` across ``workers`` processes and merge.

    ``solver_factory(budget)`` must build a solver configured with the
    given per-worker budget.  ``workers == 1`` runs inline (no process
    overhead), so speedup measurements have an honest baseline.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if total_budget < workers:
        raise ValueError(
            f"budget {total_budget} cannot be split over {workers} workers"
        )
    generator = coerce_rng(rng)
    seeds = [generator.randrange(2**31) for _ in range(workers)]

    if workers == 1:
        return solver_factory(total_budget).solve(problem, rng=seeds[0])

    shares = split_budget(total_budget, workers)
    solvers = [solver_factory(share) for share in shares]
    # Freeze the compiled index once before building payloads: both
    # flavours below reuse it instead of re-freezing per process.
    problem.compiled()
    if all(getattr(s, "engine", None) == "compiled" for s in solvers):
        # Compiled-only workers never touch the dict graph: ship the
        # detached flat arrays and let each worker rebuild locally.
        payload = problem.detached()
        payload_kind = "compiled-arrays"
    else:
        # Reference-engine workers need the dict graph; the frozen index
        # cache rides along so they still skip the re-freeze.
        payload = problem
        payload_kind = "dict-graph"
    tasks = [
        (payload, solver, seed) for solver, seed in zip(solvers, seeds)
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_worker, tasks))

    best_members, best_value = None, -float("inf")
    stats = SolveStats()
    for members, value, drawn, failed in outcomes:
        stats.samples_drawn += drawn
        stats.failed_samples += failed
        if value > best_value:
            best_members, best_value = members, value
    stats.extra["workers"] = workers
    stats.extra["worker_budgets"] = shares
    stats.extra["payload"] = payload_kind

    from repro.core.solution import GroupSolution

    solution = GroupSolution(members=best_members, willingness=best_value)
    return SolveResult(solution=solution, stats=stats)


class ParallelSolver(Solver):
    """Solver wrapper that distributes a CBAS-ND budget over processes.

    Parameters
    ----------
    budget:
        Total computational budget ``T``.
    workers:
        Number of processes (1 = inline execution).
    solver_kwargs:
        Extra arguments for each worker's :class:`CBASND` (``m``,
        ``stages``, ``rho``, ...).
    """

    name = "cbas-nd-parallel"

    def __init__(
        self,
        budget: int = 400,
        workers: int = 2,
        **solver_kwargs,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.budget = budget
        self.workers = workers
        self.solver_kwargs = solver_kwargs

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        def factory(share: int) -> CBASND:
            return CBASND(budget=share, **self.solver_kwargs)

        return parallel_solve(
            problem,
            factory,
            total_budget=self.budget,
            workers=self.workers,
            rng=rng,
        )
