"""Solve-level multi-worker execution (best-of over budget slices).

This module is the *solve-level* of the two parallel modes (see
:mod:`repro.parallel` for when to use which): the total budget ``T`` is
split into one share per worker (the remainder spread over the first
workers so no sample is dropped), each worker runs an **independent
whole solve** on its share with its own RNG stream, and the best of the
partial results wins.  CPython threads cannot exploit the paper's OpenMP
parallelism (GIL), so workers are processes.

The statistical fine print: each worker re-derives its own OCBA
allocation — and, for CBAS-ND, refits its own cross-entropy vectors —
from only its ``T/W`` slice of the evidence.  That weakens the CE fit
relative to one solve with the full budget, and it cannot accelerate a
*single* large solve.  Both limitations are what the stage-level mode
(:mod:`repro.parallel.stage_pool`) exists for; this mode remains the
right tool for portfolio-style throughput (many independent restarts,
keep the best).

Worker payloads are slim: when every worker solver runs the compiled
engine (the default), the pool ships ``problem.detached()`` — the frozen
flat arrays behind an :class:`~repro.graph.compiled.ArrayBackedGraph`
facade, **no adjacency dicts** — and each worker reconstructs its solve
state locally from the arrays.  Only a solver explicitly configured with
``engine="reference"`` falls back to pickling the full dict graph.
Callers that run many measurements (e.g. the Fig. 5(d) bench sweeping
worker counts) can pass a pre-started ``ProcessPoolExecutor`` via
``pool=`` so per-run process startup does not pollute the timings.
"""

from __future__ import annotations

import pickle
import random
from concurrent.futures import ProcessPoolExecutor

from repro.algorithms.base import RngLike, SolveResult, Solver, SolveStats, coerce_rng
from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem

__all__ = [
    "ParallelSolver",
    "parallel_solve",
    "split_budget",
    "worker_payload_bytes",
]


def _worker(args) -> tuple[frozenset, float, int, int]:
    """Run one budget share in a worker process (module-level: picklable)."""
    problem, solver, seed = args
    result = solver.solve(problem, rng=seed)
    return (
        result.solution.members,
        result.solution.willingness,
        result.stats.samples_drawn,
        result.stats.failed_samples,
    )


def split_budget(total_budget: int, workers: int) -> list[int]:
    """Per-worker budget shares summing exactly to ``total_budget``.

    The remainder of ``total_budget // workers`` lands one sample at a
    time on the first workers instead of being silently dropped.
    """
    share, remainder = divmod(total_budget, workers)
    shares = [share + 1 if index < remainder else share for index in range(workers)]
    assert sum(shares) == total_budget, (shares, total_budget)
    return shares


def worker_payload_bytes(problem: WASOProblem) -> dict[str, int]:
    """Pickled payload sizes: slim compiled arrays vs the dict graph.

    ``compiled_arrays_bytes`` measures ``problem.detached()`` — what the
    pool ships to compiled-engine workers; ``dict_graph_bytes`` measures
    the problem over the plain dict-backed graph (compiled cache
    excluded), i.e. the historical payload.  Benchmarks gate the former
    strictly below the latter.
    """
    graph = problem.graph
    if not hasattr(graph, "_compiled_cache"):
        raise ValueError(
            "worker_payload_bytes needs a problem over the dict-backed "
            "SocialGraph; this one is already array-backed (detached)"
        )
    slim = len(pickle.dumps(problem.detached()))
    cache = graph._compiled_cache
    graph._compiled_cache = None
    try:
        full = len(pickle.dumps(problem))
    finally:
        graph._compiled_cache = cache
    return {"compiled_arrays_bytes": slim, "dict_graph_bytes": full}


def parallel_solve(
    problem: WASOProblem,
    solver_factory,
    total_budget: int,
    workers: int,
    rng: RngLike = None,
    pool: "ProcessPoolExecutor | None" = None,
) -> SolveResult:
    """Split ``total_budget`` across ``workers`` processes and merge.

    ``solver_factory(budget)`` must build a solver configured with the
    given per-worker budget.  ``workers == 1`` runs inline (no process
    overhead), so speedup measurements have an honest baseline.

    ``pool`` reuses a caller-owned ``ProcessPoolExecutor`` (it must offer
    at least ``workers`` processes and is *not* shut down here) so a
    sweep over worker counts measures solving, not process startup; by
    default a fresh pool is created and torn down per call.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if total_budget < workers:
        raise ValueError(
            f"budget {total_budget} cannot be split over {workers} workers"
        )
    generator = coerce_rng(rng)
    seeds = [generator.randrange(2**31) for _ in range(workers)]

    if workers == 1:
        return solver_factory(total_budget).solve(problem, rng=seeds[0])

    shares = split_budget(total_budget, workers)
    solvers = [solver_factory(share) for share in shares]
    # Freeze the compiled index once before building payloads: both
    # flavours below reuse it instead of re-freezing per process.
    problem.compiled()
    if all(getattr(s, "engine", None) == "compiled" for s in solvers):
        # Compiled-only workers never touch the dict graph: ship the
        # detached flat arrays and let each worker rebuild locally.
        payload = problem.detached()
        payload_kind = "compiled-arrays"
    else:
        # Reference-engine workers need the dict graph; the frozen index
        # cache rides along so they still skip the re-freeze.
        payload = problem
        payload_kind = "dict-graph"
    tasks = [
        (payload, solver, seed) for solver, seed in zip(solvers, seeds)
    ]
    if pool is not None:
        outcomes = list(pool.map(_worker, tasks))
    else:
        with ProcessPoolExecutor(max_workers=workers) as owned_pool:
            outcomes = list(owned_pool.map(_worker, tasks))

    best_members, best_value = None, -float("inf")
    stats = SolveStats()
    for members, value, drawn, failed in outcomes:
        stats.samples_drawn += drawn
        stats.failed_samples += failed
        if value > best_value:
            best_members, best_value = members, value
    stats.extra["workers"] = workers
    stats.extra["worker_budgets"] = shares
    stats.extra["payload"] = payload_kind

    from repro.core.solution import GroupSolution

    solution = GroupSolution(members=best_members, willingness=best_value)
    return SolveResult(solution=solution, stats=stats)


class ParallelSolver(Solver):
    """Solver wrapper that distributes a CBAS-ND budget over processes.

    Parameters
    ----------
    budget:
        Total computational budget ``T``.
    workers:
        Number of processes (1 = inline execution).
    pool:
        Optional caller-owned ``ProcessPoolExecutor`` reused across
        solves (see :func:`parallel_solve`); the solver never shuts it
        down.
    solver_kwargs:
        Extra arguments for each worker's :class:`CBASND` (``m``,
        ``stages``, ``rho``, ...).
    """

    name = "cbas-nd-parallel"

    def __init__(
        self,
        budget: int = 400,
        workers: int = 2,
        pool: "ProcessPoolExecutor | None" = None,
        **solver_kwargs,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.budget = budget
        self.workers = workers
        self.pool = pool
        self.solver_kwargs = solver_kwargs

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        def factory(share: int) -> CBASND:
            return CBASND(budget=share, **self.solver_kwargs)

        return parallel_solve(
            problem,
            factory,
            total_budget=self.budget,
            workers=self.workers,
            rng=rng,
            pool=self.pool,
        )
