"""Solve-level multi-worker execution with resident graph payloads.

This module is the *solve-level* of the two parallel modes (see
:mod:`repro.parallel` for the split and :mod:`repro.runtime.router` for
which one a request should use): whole solves run inside worker
processes — either one request per worker chunk
(:meth:`~repro.runtime.context.ExecutionContext.solve_many`'s
multiplexer) or one budget slice per worker with the best result winning
(:func:`parallel_solve` / :class:`ParallelSolver`).  CPython threads
cannot exploit the paper's OpenMP parallelism (GIL), so workers are
processes.

The statistical fine print of the best-of split: each worker re-derives
its own OCBA allocation — and, for CBAS-ND, refits its own cross-entropy
vectors — from only its ``T/W`` slice of the evidence.  That weakens the
CE fit relative to one solve with the full budget, and it cannot
accelerate a *single* large solve.  Both limitations are what the
stage-level mode (:mod:`repro.parallel.stage_pool`) exists for; the
solve level remains the right tool for portfolio-style throughput and
for multiplexing many independent requests.

Worker payloads follow the residency protocol of
:mod:`repro.parallel.residency`: a :class:`ResidentSolvePool` keeps W
long-lived worker processes whose caches hold detached
:class:`~repro.graph.compiled.CompiledGraph` arrays keyed by
:attr:`~repro.graph.compiled.CompiledGraph.payload_token`.  A serving
session therefore pickles each frozen graph **at most once per (graph,
worker) pair** — every later chunk, batch, or re-plan on that graph
ships only the O(1) :meth:`~repro.core.problem.WASOProblem.
payload_spec` plus per-request seeds and budgets.  Only solvers
explicitly configured with ``engine="reference"`` (or without an engine
knob at all) fall back to pickling the full dict graph per request —
the dict path has no resident representation.

A plain ``concurrent.futures`` executor is still accepted by
``parallel_solve(pool=...)`` for callers that manage their own
processes; it gets the pre-residency protocol (detached graph pickled
per task).
"""

from __future__ import annotations

import pickle
import random
import time
import traceback
from typing import Optional

from repro.algorithms.base import RngLike, SolveResult, Solver, SolveStats, coerce_rng
from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem, problem_from_payload_spec
from repro.graph.compiled import CompiledGraph
from repro.exceptions import (
    DeadlineExpiredError,
    RequestFailure,
    WorkerCrashError,
)
from repro.parallel.residency import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RESIDENT_GRAPHS,
    ResidencyLedger,
    ResidentGraphStore,
    WorkerPoolBase,
    apply_graph_patch,
    plan_graph_message,
    record_recovery,
    record_shipping,
)

__all__ = [
    "ParallelSolver",
    "ResidentSolvePool",
    "parallel_solve",
    "split_budget",
    "worker_payload_bytes",
]

def _worker(args) -> tuple[frozenset, float, int, int]:
    """Run one budget share in a worker process (module-level: picklable).

    This is the legacy executor-pool task — kept for callers that pass a
    plain ``concurrent.futures`` pool to :func:`parallel_solve`.
    """
    problem, solver, seed = args
    result = solver.solve(problem, rng=seed)
    return (
        result.solution.members,
        result.solution.willingness,
        result.stats.samples_drawn,
        result.stats.failed_samples,
    )


def split_budget(total_budget: int, workers: int) -> list[int]:
    """Per-worker budget shares summing exactly to ``total_budget``.

    The remainder of ``total_budget // workers`` lands one sample at a
    time on the first workers instead of being silently dropped.
    """
    share, remainder = divmod(total_budget, workers)
    shares = [share + 1 if index < remainder else share for index in range(workers)]
    assert sum(shares) == total_budget, (shares, total_budget)
    return shares


def worker_payload_bytes(problem: WASOProblem) -> dict:
    """Pickled payload sizes: slim compiled arrays vs the dict graph.

    ``compiled_arrays_bytes`` measures the detached flat-array payload —
    what the resident pools install into a worker exactly once per
    session; ``dict_graph_bytes`` measures the problem over the plain
    dict-backed graph (compiled cache excluded), i.e. the historical
    payload.  An already array-backed (detached) problem *is* the slim
    payload, so it reports its own pickled size with
    ``dict_graph_bytes=None`` — there is no dict graph left to measure
    (this is exactly the shape the resident pools account for, so
    raising here would break payload accounting on the resident path).
    Benchmarks gate on the slim number only.
    """
    graph = problem.graph
    if not hasattr(graph, "_compiled_cache"):
        # Already detached: the problem is the compiled-arrays payload.
        slim = len(pickle.dumps(problem))
        return {"compiled_arrays_bytes": slim, "dict_graph_bytes": None}
    slim = len(pickle.dumps(problem.detached()))
    cache = graph._compiled_cache
    graph._compiled_cache = None
    try:
        full = len(pickle.dumps(problem))
    finally:
        graph._compiled_cache = cache
    return {"compiled_arrays_bytes": slim, "dict_graph_bytes": full}


# ----------------------------------------------------------------------
# Worker side of the resident solve pool
# ----------------------------------------------------------------------
def _run_solve_entry(store: ResidentGraphStore, entry: dict):
    """Execute one whole-solve entry; failures are captured per entry.

    Returns ``("ok", index, members, willingness, samples_drawn,
    failed_samples, stages, extra)`` or ``("error", index, traceback)``
    so one failing request never discards its chunk-mates' results
    (the parent re-raises after the batch drains).
    """
    index = entry["index"]
    try:
        problem = entry["problem"]
        if isinstance(problem, dict):
            compiled = store.get(problem["token"])
            problem = problem_from_payload_spec(compiled, problem)
        solver = entry.get("solver_obj")
        if solver is None:
            from repro.algorithms.registry import make_solver

            solver = make_solver(entry["solver"], **entry["kwargs"])
        result = solver.solve(problem, rng=entry["seed"])
        return (
            "ok",
            index,
            result.solution.members,
            result.solution.willingness,
            result.stats.samples_drawn,
            result.stats.failed_samples,
            result.stats.stages,
            result.stats.extra,
        )
    except BaseException:
        return ("error", index, traceback.format_exc())


def _solve_worker_main(conn) -> None:
    """Worker loop: resident graph store + whole-solve chunk execution."""
    store = ResidentGraphStore()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "close":
            break
        try:
            if kind == "graph":
                _, token, compiled, evict = message
                store.install(token, compiled, evict)
                reply = ("ok", token)
            elif kind == "graph_path":
                # Zero-copy install: the parent sent a frozen index's
                # manifest path (O(1) bytes); map the shared arrays
                # here.  verify=False — the parent checked the manifest
                # when it loaded the graph, and the path round-trips a
                # content-derived token, so a mismatch is impossible
                # short of on-disk corruption mid-session.
                _, token, path, evict = message
                compiled = CompiledGraph.load(path, mmap=True, verify=False)
                if compiled.payload_token != token:
                    raise RuntimeError(
                        f"frozen index at {path!r} resolves to token "
                        f"{compiled.payload_token!r}, expected {token!r}"
                    )
                store.install(token, compiled, evict)
                reply = ("ok", token)
            elif kind == "graph_patch":
                # Sparse upgrade of a resident graph: replay the
                # parent's delta batches against the arrays already
                # here — O(|delta|) bytes instead of a full re-install.
                _, token, generation, batches = message
                apply_graph_patch(store, token, generation, batches)
                reply = ("ok", token)
            elif kind == "chunk":
                _, entries = message
                reply = (
                    "ok",
                    [_run_solve_entry(store, entry) for entry in entries],
                )
            else:
                raise RuntimeError(f"unknown solve-pool message {kind!r}")
        except BaseException:
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ResidentSolvePool(WorkerPoolBase):
    """W persistent whole-solve workers with resident graph payloads.

    The solve-level twin of :class:`~repro.parallel.stage_pool.
    StagePool`: create it once per serving session, dispatch any number
    of chunk batches (one in flight at a time), and :meth:`close` it
    when done (also usable as a context manager).  Each worker caches
    detached compiled-graph arrays keyed by payload token
    (:mod:`repro.parallel.residency`), bounded to ``resident_graphs``
    entries with parent-driven LRU eviction, so a session ships each
    graph at most once per (graph, worker) pair.

    Dispatch is two-phase so large stage-routed solves can run on the
    parent while chunks are in flight: :meth:`ship` sends one worker's
    chunk (prefixing any graph installs that worker still needs), and
    :meth:`collect` drains every outstanding reply — several chunks per
    worker are fine; outcomes come back in shipping order.  Per-request
    solve failures travel inside ``"ok"`` replies.

    The pool is *self-healing*: a worker that dies mid-dispatch is
    respawned (its residency ledger reset — the fresh worker holds
    nothing), and the chunks it owed are re-dispatched, re-shipping
    whatever graphs they reference, up to ``max_retries`` times with
    bounded backoff.  Every entry carries its explicit seed, so a retry
    is bit-identical to the original dispatch — crash recovery is
    invisible in results.  An entry whose ``"deadline"`` (an absolute
    ``time.monotonic()`` instant) passes while its dispatch is pending
    is cancelled: the worker is killed and respawned, the expired entry
    fails as a ``kind="deadline"`` :class:`~repro.exceptions.
    RequestFailure`, and its live chunk-mates are retried.  Exhausted
    retries fail the affected entries as ``kind="worker_crash"`` and
    mark the pool ``healthy = False`` so callers can degrade to serial
    execution.  Recovery accounting (``batch_restarts`` /
    ``batch_retries`` / ``batch_deadline_missed``) resets with each
    :meth:`begin_batch`.  Only *protocol*-level errors (a live worker
    replying with a message-level error, i.e. a bug rather than a
    crash) remain terminal: the pool closes itself and raises.
    """

    def __init__(
        self,
        workers: int,
        resident_graphs: int = DEFAULT_RESIDENT_GRAPHS,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        super().__init__(workers, _solve_worker_main)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self._ledgers = [
            ResidencyLedger(resident_graphs) for _ in range(workers)
        ]
        #: In-flight dispatch records per worker, in send order —
        #: replies arrive in the same order per pipe, so the head record
        #: is what the next reply answers.  Install records are
        #: ``{"kind": "install"}``; chunk records carry everything a
        #: crash recovery needs to re-dispatch (entries with their
        #: seeds, the graphs they reference, the retry count, the
        #: earliest entry deadline).
        self._inflight: "list[list[dict]]" = [[] for _ in range(workers)]
        #: Chunk ids in shipping order (collect returns outcomes in it).
        self._chunk_order: "list[int]" = []
        self._next_chunk_id = 0
        self._batch_bytes = 0
        self._batch_installs = 0
        self._batch_patch_bytes = 0
        #: Recovery events since the last :meth:`begin_batch`.
        self.batch_restarts = 0
        self.batch_retries = 0
        self.batch_deadline_missed = 0
        #: Sticky health flag: cleared when a dispatch exhausts its
        #: retry budget.  Callers should route around an unhealthy pool
        #: (``ExecutionContext`` degrades the remainder to serial).
        self.healthy = True

    # ------------------------------------------------------------------
    @property
    def installs(self) -> int:
        """Total (graph, worker) installs performed over the session."""
        return sum(ledger.installs for ledger in self._ledgers)

    def resident_tokens(self, worker: int) -> tuple:
        """Tokens resident in ``worker`` (least recently used first)."""
        return self._ledgers[worker].resident_tokens()

    @property
    def batch_payload_bytes(self) -> int:
        """Pickled bytes shipped since the last :meth:`begin_batch`."""
        return self._batch_bytes

    @property
    def batch_installs(self) -> int:
        """(graph, worker) installs since the last :meth:`begin_batch`."""
        return self._batch_installs

    @property
    def batch_patch_bytes(self) -> int:
        """Bytes of sparse ``graph_patch`` messages this batch.

        Patches upgrade stale-but-resident arrays in place; they are
        counted in :attr:`batch_payload_bytes` (they ride the same wire)
        but *not* in :attr:`batch_installs`.
        """
        return self._batch_patch_bytes

    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Reset the per-batch shipping and recovery accounting."""
        if self._chunk_order or any(self._inflight):
            raise RuntimeError(
                "cannot begin a batch while replies are outstanding; "
                "collect() the previous dispatch first"
            )
        self._batch_bytes = 0
        self._batch_installs = 0
        self._batch_patch_bytes = 0
        self.batch_restarts = 0
        self.batch_retries = 0
        self.batch_deadline_missed = 0

    def _on_respawn(self, worker: int) -> None:
        # The fresh worker's ResidentGraphStore is empty: forget every
        # mirrored token so the next plan() re-ships what retries need.
        self._ledgers[worker].reset()

    def _send(self, worker: int, message, record: dict) -> int:
        data = pickle.dumps(message)
        self._send_bytes(worker, data)
        self._batch_bytes += len(data)
        self._inflight[worker].append(record)
        return len(data)

    def _plan_installs(
        self, worker: int, entries: "list[dict]", graphs: dict
    ) -> None:
        """Ship whatever resident graphs ``entries`` need that
        ``worker``'s ledger says it lacks (also the re-ship path after a
        respawn, where the reset ledger answers "ship" for everything)."""
        ledger = self._ledgers[worker]
        # Every token this chunk references is pinned against eviction:
        # the installs all travel ahead of the chunk, so a later install
        # must never displace arrays an earlier entry still needs.
        chunk_tokens = {
            entry["problem"]["token"]
            for entry in entries
            if isinstance(entry["problem"], dict)
        }
        planned = set()
        for entry in entries:
            problem = entry["problem"]
            if not isinstance(problem, dict):
                continue
            token = problem["token"]
            if token in planned:
                continue
            planned.add(token)
            ship, evictions = ledger.plan(token, pinned=chunk_tokens)
            graph = graphs[token]
            # Resolve full install vs sparse generation patch vs nothing
            # (resident and current) through the shared protocol helper;
            # path-installable graphs ship the manifest path (O(1) bytes
            # at any graph size) and the worker maps the arrays itself.
            message, kind = plan_graph_message(
                ledger, token, graph, ship, evictions, lambda: graph
            )
            if message is None:
                continue
            sent = self._send(worker, message, {"kind": "install"})
            if kind == "install":
                self._batch_installs += 1
            else:
                self._batch_patch_bytes += sent

    @staticmethod
    def _entries_deadline(entries: "list[dict]") -> "Optional[float]":
        deadlines = [
            entry["deadline"]
            for entry in entries
            if entry.get("deadline") is not None
        ]
        return min(deadlines) if deadlines else None

    def ship(self, worker: int, entries: "list[dict]", graphs: dict) -> None:
        """Send one chunk of whole-solve entries to ``worker``.

        ``entries`` is a list of entry dicts (``index`` / ``problem`` /
        ``solver``+``kwargs`` or ``solver_obj`` / ``seed``, plus an
        optional ``deadline`` — an absolute ``time.monotonic()``
        instant); an entry whose ``problem`` is a payload-spec dict
        references ``graphs[token]`` — the detached compiled arrays —
        which are installed first *only* where the worker's ledger says
        they are missing.  Replies are deferred: call :meth:`collect`
        after every chunk of the batch has been shipped.
        """
        if self._closed:
            raise RuntimeError("resident solve pool is closed")
        entries = list(entries)
        record = {
            "kind": "chunk",
            "id": self._next_chunk_id,
            "entries": entries,
            "graphs": graphs,
            "retries": 0,
            "deadline": self._entries_deadline(entries),
        }
        self._next_chunk_id += 1
        self._plan_installs(worker, entries, graphs)
        self._send(worker, ("chunk", entries), record)
        self._chunk_order.append(record["id"])

    def collect(self) -> "list[list]":
        """Drain every outstanding reply; one outcome list per chunk,
        in shipping order (several chunks per worker parse correctly —
        each worker's reply stream is matched against the send-order
        records kept by :meth:`ship`).

        Per-request solve failures come back inside the outcomes as
        ``("error", index, failure)``, where ``failure`` is the
        worker-side traceback string or — for a crash that exhausted its
        retries or an expired deadline — a structured
        :class:`~repro.exceptions.RequestFailure`.  A dead worker is
        *not* terminal: it is respawned, its ledger reset, and its
        chunks re-dispatched (see the class docstring).  Only a
        protocol-level error reply closes the pool and raises.
        """
        results: "dict[int, list]" = {}
        for worker in range(self.workers):
            self._drain_worker(worker, results)
        order, self._chunk_order = self._chunk_order, []
        return [results.get(chunk_id, []) for chunk_id in order]

    def _worker_deadline(self, worker: int) -> "Optional[float]":
        deadlines = [
            record["deadline"]
            for record in self._inflight[worker]
            if record["kind"] == "chunk" and record["deadline"] is not None
        ]
        return min(deadlines) if deadlines else None

    def _drain_worker(self, worker: int, results: "dict[int, list]") -> None:
        while self._inflight[worker]:
            record = self._inflight[worker][0]
            try:
                reply = self._recv(
                    worker, deadline=self._worker_deadline(worker)
                )
            except WorkerCrashError:
                self._recover(worker, results, expired=False)
                continue
            except DeadlineExpiredError:
                self._recover(worker, results, expired=True)
                continue
            self._inflight[worker].pop(0)
            kind, payload = reply
            if kind == "error":
                self._fail(
                    f"solve-pool worker {worker} replied with a protocol "
                    f"error; the pool has been closed:\n{payload}"
                )
            if record["kind"] == "chunk":
                results.setdefault(record["id"], []).extend(payload)

    def _recover(
        self, worker: int, results: "dict[int, list]", expired: bool
    ) -> None:
        """Respawn ``worker`` and re-dispatch (or fail) what it owed.

        ``expired`` distinguishes a deadline cancellation (the worker
        may still be alive, wedged past a request's deadline — respawn
        kills it) from a genuine crash.  Either way the fresh worker's
        ledger is reset via :meth:`_on_respawn`, expired entries fail as
        ``kind="deadline"``, and live entries are retried bit-identically
        (their seeds are in the entries) until ``max_retries`` runs out,
        at which point they fail as ``kind="worker_crash"`` and the pool
        goes unhealthy.
        """
        records = list(self._inflight[worker])
        self._inflight[worker].clear()
        self.respawn(worker)
        self.batch_restarts += 1
        now = time.monotonic()
        for record in records:
            if record["kind"] != "chunk":
                continue  # installs are re-planned against the reset ledger
            live = []
            for entry in record["entries"]:
                deadline = entry.get("deadline")
                if expired and deadline is not None and now >= deadline:
                    self.batch_deadline_missed += 1
                    failure = RequestFailure(
                        f"request deadline expired mid-dispatch "
                        f"(worker {worker}); the dispatch was cancelled",
                        kind="deadline",
                        retries=record["retries"],
                        index=entry["index"],
                    )
                    results.setdefault(record["id"], []).append(
                        ("error", entry["index"], failure)
                    )
                else:
                    live.append(entry)
            if not live:
                continue
            if record["retries"] >= self.max_retries:
                self.healthy = False
                for entry in live:
                    failure = RequestFailure(
                        f"pool worker died mid-dispatch and the retry "
                        f"budget is exhausted "
                        f"({record['retries']} of {self.max_retries} "
                        f"retries used)",
                        kind="worker_crash",
                        retries=record["retries"],
                        index=entry["index"],
                    )
                    results.setdefault(record["id"], []).append(
                        ("error", entry["index"], failure)
                    )
                continue
            record["entries"] = live
            record["deadline"] = self._entries_deadline(live)
            record["retries"] += 1
            self.batch_retries += 1
            # Bounded backoff: enough to let a transient cause (memory
            # pressure, a dying sibling) clear, never enough to wedge.
            time.sleep(min(0.01 * (2 ** (record["retries"] - 1)), 0.1))
            self._plan_installs(worker, live, record["graphs"])
            self._send(worker, ("chunk", live), record)


# ----------------------------------------------------------------------
# Best-of budget split
# ----------------------------------------------------------------------
def parallel_solve(
    problem: WASOProblem,
    solver_factory,
    total_budget: int,
    workers: int,
    rng: RngLike = None,
    pool=None,
) -> SolveResult:
    """Split ``total_budget`` across ``workers`` processes and merge.

    ``solver_factory(budget)`` must build a solver configured with the
    given per-worker budget.  ``workers == 1`` runs inline (no process
    overhead), so speedup measurements have an honest baseline.

    ``pool`` reuses a caller-owned :class:`ResidentSolvePool` (it must
    offer at least ``workers`` processes and is *not* shut down here) so
    a serving session — or a sweep over worker counts — ships each graph
    once per worker instead of once per call; by default a fresh pool is
    created and torn down per call.  A plain ``concurrent.futures``
    executor is also accepted for backward compatibility and gets the
    pre-residency payload (detached problem pickled per task).
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if total_budget < workers:
        raise ValueError(
            f"budget {total_budget} cannot be split over {workers} workers"
        )
    generator = coerce_rng(rng)
    seeds = [generator.randrange(2**31) for _ in range(workers)]

    if workers == 1:
        return solver_factory(total_budget).solve(problem, rng=seeds[0])

    shares = split_budget(total_budget, workers)
    solvers = [solver_factory(share) for share in shares]
    # Freeze the compiled index once before building payloads: both
    # flavours below reuse it instead of re-freezing per process.
    problem.compiled()
    compiled_only = all(
        getattr(s, "engine", None) == "compiled" for s in solvers
    )

    if pool is not None and not isinstance(pool, ResidentSolvePool):
        # Legacy executor pool: detached problem pickled per task.
        outcomes = _legacy_pool_solve(
            pool, problem, solvers, seeds, compiled_only
        )
        return _merge_best_of(outcomes, workers, shares, compiled_only)

    if compiled_only:
        # Compiled-only workers never touch the dict graph: install the
        # detached flat arrays once per (graph, worker) and ship only
        # the O(1) problem spec afterwards.
        spec = problem.payload_spec()
        graphs = {spec["token"]: problem.compiled().detach()}
        payloads = [spec] * workers
    else:
        # Reference-engine workers need the dict graph; the frozen index
        # cache rides along so they still skip the re-freeze.  No
        # resident representation exists for the dict path, so the full
        # problem ships per task.
        graphs = {}
        payloads = [problem] * workers

    owned = pool is None
    if owned:
        pool = ResidentSolvePool(workers)
    elif pool.workers < workers:
        raise ValueError(
            f"pool offers {pool.workers} workers, {workers} requested"
        )
    try:
        pool.begin_batch()
        for index, (payload, solver, seed) in enumerate(
            zip(payloads, solvers, seeds)
        ):
            entry = {
                "index": index,
                "problem": payload,
                "solver_obj": solver,
                "seed": seed,
            }
            pool.ship(index, [entry], graphs)
        replies = pool.collect()
        shipped_bytes = pool.batch_payload_bytes
        installs = pool.batch_installs
        patch_bytes = pool.batch_patch_bytes
        restarts = pool.batch_restarts
        retries = pool.batch_retries
    finally:
        if owned:
            pool.close()

    outcomes: "list" = [None] * workers
    failures = []
    for chunk in replies:
        for outcome in chunk:
            if outcome[0] == "error":
                failures.append(outcome[2])
            else:
                _, index, members, value, drawn, failed, _, _ = outcome
                outcomes[index] = (members, value, drawn, failed)
    if failures:
        raise RuntimeError(
            "parallel_solve worker failed:\n" + "\n".join(failures)
        )
    result = _merge_best_of(outcomes, workers, shares, compiled_only)
    record_shipping(
        result.stats.extra,
        shipped=installs > 0,
        payload_bytes=shipped_bytes,
        installs=installs,
        patch_bytes=patch_bytes,
    )
    record_recovery(result.stats.extra, restarts=restarts, retries=retries)
    return result


def _legacy_pool_solve(pool, problem, solvers, seeds, compiled_only):
    """Pre-residency path for caller-owned ``concurrent.futures`` pools."""
    payload = problem.detached() if compiled_only else problem
    tasks = [(payload, solver, seed) for solver, seed in zip(solvers, seeds)]
    return list(pool.map(_worker, tasks))


def _merge_best_of(outcomes, workers, shares, compiled_only) -> SolveResult:
    """Fold per-worker best-of outcomes into one :class:`SolveResult`."""
    best_members, best_value = None, -float("inf")
    stats = SolveStats()
    for members, value, drawn, failed in outcomes:
        stats.samples_drawn += drawn
        stats.failed_samples += failed
        if value > best_value:
            best_members, best_value = members, value
    stats.extra["workers"] = workers
    stats.extra["worker_budgets"] = shares
    stats.extra["payload"] = (
        "compiled-arrays" if compiled_only else "dict-graph"
    )

    from repro.core.solution import GroupSolution

    solution = GroupSolution(members=best_members, willingness=best_value)
    return SolveResult(solution=solution, stats=stats)


class ParallelSolver(Solver):
    """Solver wrapper that distributes a CBAS-ND budget over processes.

    Parameters
    ----------
    budget:
        Total computational budget ``T``.
    workers:
        Number of processes (1 = inline execution).
    pool:
        Optional caller-owned :class:`ResidentSolvePool` reused across
        solves — repeated solves on one graph then ship its arrays only
        once per worker (see :func:`parallel_solve`); the solver never
        shuts it down.  A ``concurrent.futures`` executor is accepted
        for backward compatibility.
    solver_kwargs:
        Extra arguments for each worker's :class:`CBASND` (``m``,
        ``stages``, ``rho``, ...).
    """

    name = "cbas-nd-parallel"

    def __init__(
        self,
        budget: int = 400,
        workers: int = 2,
        pool: "Optional[ResidentSolvePool]" = None,
        **solver_kwargs,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.budget = budget
        self.workers = workers
        self.pool = pool
        self.solver_kwargs = solver_kwargs

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        def factory(share: int) -> CBASND:
            return CBASND(budget=share, **self.solver_kwargs)

        return parallel_solve(
            problem,
            factory,
            total_budget=self.budget,
            workers=self.workers,
            rng=rng,
            pool=self.pool,
        )
