"""Multi-worker execution of the randomized solvers.

The paper parallelizes CBAS / CBAS-ND with OpenMP and reports a ~7.6×
speedup on 8 threads (Fig. 5(d)); the samples drawn from different start
nodes are independent, so the workload is embarrassingly parallel.  CPython
threads cannot exploit that (GIL), so the equivalent here is a *process*
pool: the total budget ``T`` is split into one share per worker, each
worker runs the underlying solver on its share with an independent RNG
stream, and the best of the partial results wins.

This is the same statistical computation as a single run with budget ``T``
up to budget-allocation granularity (each worker re-derives its own OCBA
allocation from its own samples), which mirrors the paper's OpenMP loop —
its threads also synchronize only at stage boundaries.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor

from repro.algorithms.base import RngLike, SolveResult, Solver, SolveStats, coerce_rng
from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem

__all__ = ["ParallelSolver", "parallel_solve"]


def _worker(args) -> tuple[frozenset, float, int, int]:
    """Run one budget share in a worker process (module-level: picklable)."""
    problem, solver, seed = args
    result = solver.solve(problem, rng=seed)
    return (
        result.solution.members,
        result.solution.willingness,
        result.stats.samples_drawn,
        result.stats.failed_samples,
    )


def parallel_solve(
    problem: WASOProblem,
    solver_factory,
    total_budget: int,
    workers: int,
    rng: RngLike = None,
) -> SolveResult:
    """Split ``total_budget`` across ``workers`` processes and merge.

    ``solver_factory(budget)`` must build a solver configured with the
    given per-worker budget.  ``workers == 1`` runs inline (no process
    overhead), so speedup measurements have an honest baseline.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if total_budget < workers:
        raise ValueError(
            f"budget {total_budget} cannot be split over {workers} workers"
        )
    generator = coerce_rng(rng)
    share = total_budget // workers
    seeds = [generator.randrange(2**31) for _ in range(workers)]

    if workers == 1:
        return solver_factory(total_budget).solve(problem, rng=seeds[0])

    # Freeze the compiled index once before pickling: the cache rides on
    # the graph, so every worker receives the flat arrays ready-made
    # instead of re-freezing the adjacency dicts per process.
    problem.compiled()
    tasks = [(problem, solver_factory(share), seed) for seed in seeds]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_worker, tasks))

    best_members, best_value = None, -float("inf")
    stats = SolveStats()
    for members, value, drawn, failed in outcomes:
        stats.samples_drawn += drawn
        stats.failed_samples += failed
        if value > best_value:
            best_members, best_value = members, value
    stats.extra["workers"] = workers

    from repro.core.solution import GroupSolution

    solution = GroupSolution(members=best_members, willingness=best_value)
    return SolveResult(solution=solution, stats=stats)


class ParallelSolver(Solver):
    """Solver wrapper that distributes a CBAS-ND budget over processes.

    Parameters
    ----------
    budget:
        Total computational budget ``T``.
    workers:
        Number of processes (1 = inline execution).
    solver_kwargs:
        Extra arguments for each worker's :class:`CBASND` (``m``,
        ``stages``, ``rho``, ...).
    """

    name = "cbas-nd-parallel"

    def __init__(
        self,
        budget: int = 400,
        workers: int = 2,
        **solver_kwargs,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.budget = budget
        self.workers = workers
        self.solver_kwargs = solver_kwargs

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        def factory(share: int) -> CBASND:
            return CBASND(budget=share, **self.solver_kwargs)

        return parallel_solve(
            problem,
            factory,
            total_budget=self.budget,
            workers=self.workers,
            rng=rng,
        )
