"""Parallel execution of the randomized solvers (paper Fig. 5(d))."""

from repro.parallel.pool import (
    ParallelSolver,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)

__all__ = [
    "ParallelSolver",
    "parallel_solve",
    "split_budget",
    "worker_payload_bytes",
]
