"""Parallel execution of the randomized solvers (paper Fig. 5(d)).

Two complementary modes, both process-based (CPython's GIL rules out the
paper's OpenMP threads) and both **resident**: each mode's persistent
worker pool caches detached :class:`~repro.graph.compiled.CompiledGraph`
arrays keyed by :attr:`~repro.graph.compiled.CompiledGraph.
payload_token`, so a serving session ships each frozen graph at most
once per (graph, worker) pair — follow-up solves, batches, and online
re-planning rounds send only the O(1) problem spec plus seeds and
budgets.  The protocol (generation-tagged payloads, parent-driven LRU
eviction for long sessions over many graphs, uniform
``SolveStats.extra`` shipping accounting) lives in one place:
:mod:`repro.parallel.residency`.

* **Solve-level** (:mod:`repro.parallel.pool`,
  :class:`ResidentSolvePool` / :class:`ParallelSolver`): whole solves
  run inside workers.  ``solve_many`` multiplexes many independent
  requests onto the pool (each one a full-strength serial solve inside
  one worker); :func:`parallel_solve` splits one budget ``T`` into
  ``W`` independent best-of slices — portfolio throughput, but each
  worker refits its CE vectors from only ``T/W`` of the evidence.
* **Stage-level sharded CE** (:mod:`repro.parallel.stage_pool`,
  :class:`StagePool` + :class:`ShardedStageExecutor`): the draws
  *inside* each CBAS/CBAS-ND stage are sharded across the pool and
  merged at stage boundaries, so every Eq. (4) refit sees the *full*
  elite set — exactly the paper's OpenMP loop.  The only mode that
  accelerates a *single* large solve at full statistical strength.

Which mode when?  That decision lives in the runtime layer: the cost
model in :mod:`repro.runtime.router` resolves ``mode="auto"`` per
request (``choose_mode`` — thresholds recalibrated for the resident
wire protocol), and :class:`~repro.runtime.context.ExecutionContext`
owns both pool lifecycles — prefer going through it rather than
instantiating the classes here directly.  The modes compose with
everything else (engines, warm starts); residency requires
``engine="compiled"`` because workers hold only the detached flat
arrays — reference-engine solvers fall back to shipping the dict graph
per task.
"""

from repro.parallel.pool import (
    ParallelSolver,
    ResidentSolvePool,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)
from repro.parallel.residency import (
    DEFAULT_RESIDENT_GRAPHS,
    ResidencyLedger,
    ResidentGraphStore,
    record_shipping,
)
from repro.parallel.stage_pool import ShardedStageExecutor, StagePool

__all__ = [
    "DEFAULT_RESIDENT_GRAPHS",
    "ParallelSolver",
    "ResidencyLedger",
    "ResidentGraphStore",
    "ResidentSolvePool",
    "ShardedStageExecutor",
    "StagePool",
    "parallel_solve",
    "record_shipping",
    "split_budget",
    "worker_payload_bytes",
]
