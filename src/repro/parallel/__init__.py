"""Parallel execution of the randomized solvers (paper Fig. 5(d))."""

from repro.parallel.pool import ParallelSolver, parallel_solve

__all__ = ["ParallelSolver", "parallel_solve"]
