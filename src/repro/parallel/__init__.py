"""Parallel execution of the randomized solvers (paper Fig. 5(d)).

Two complementary modes, both process-based (CPython's GIL rules out the
paper's OpenMP threads):

* **Solve-level best-of** (:mod:`repro.parallel.pool`,
  :class:`ParallelSolver`): the budget ``T`` is split into ``W``
  independent whole solves and the best result wins.  Each worker
  re-derives its OCBA allocation — and CBAS-ND's cross-entropy fit —
  from only its ``T/W`` slice of the evidence.  Use it for
  portfolio-style throughput: many independent restarts on small/medium
  instances, where statistical diversity across workers is the point and
  nothing needs to be shared between them.
* **Stage-level sharded CE** (:mod:`repro.parallel.stage_pool`,
  :class:`StagePool` + :class:`ShardedStageExecutor`): the draws *inside*
  each CBAS/CBAS-ND stage are sharded across a persistent worker pool
  and merged at stage boundaries, so every Eq. (4) refit sees the *full*
  elite set — exactly the paper's OpenMP loop, with the frozen graph
  arrays resident in the workers across stages, solves, and online
  re-planning rounds.  Use it to accelerate a *single* large solve
  (big ``n``/``T``) at full statistical strength, and for re-planning
  loops where re-shipping the graph per solve would dominate.

Which mode when?  That decision now lives in the runtime layer: the
cost model in :mod:`repro.runtime.router` (one big solve → stage-level;
many small solves → solve-level; one core → serial) resolves
``mode="auto"`` per request, and
:class:`~repro.runtime.context.ExecutionContext` owns the pool
lifecycles — prefer going through it rather than instantiating the
classes here directly.  The modes compose with everything else (engines,
warm starts); stage-level requires ``engine="compiled"`` because workers
hold only the detached flat arrays.
"""

from repro.parallel.pool import (
    ParallelSolver,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)
from repro.parallel.stage_pool import ShardedStageExecutor, StagePool

__all__ = [
    "ParallelSolver",
    "ShardedStageExecutor",
    "StagePool",
    "parallel_solve",
    "split_budget",
    "worker_payload_bytes",
]
