"""Parallel execution of the randomized solvers (paper Fig. 5(d)).

Two complementary modes, both process-based (CPython's GIL rules out the
paper's OpenMP threads) and both **resident**: each mode's persistent
worker pool caches detached :class:`~repro.graph.compiled.CompiledGraph`
arrays keyed by :attr:`~repro.graph.compiled.CompiledGraph.
payload_token`, so a serving session ships each frozen graph at most
once per (graph, worker) pair — follow-up solves, batches, and online
re-planning rounds send only the O(1) problem spec plus seeds and
budgets.  The protocol (generation-tagged payloads, parent-driven LRU
eviction for long sessions over many graphs, uniform
``SolveStats.extra`` shipping accounting) lives in one place:
:mod:`repro.parallel.residency`.

Resident graphs are *mutable in place*: :meth:`~repro.graph.compiled.
CompiledGraph.apply_deltas` patches the frozen CSR arrays and bumps the
graph's generation, and the wire protocol ships warm workers a sparse
``("graph_patch", token, gen, batches)`` record — the O(|delta|) tail
of the graph's bounded delta log — instead of a full re-install
(:func:`~repro.parallel.residency.plan_graph_message` decides which;
:func:`~repro.parallel.residency.apply_graph_patch` replays it
worker-side).  Workers behind a compacted log, path-installed (mmap)
graphs, and freshly respawned workers all demote to a full install at
the current generation, and every problem spec carries the generation
it was built against — patching is an optimisation, never a
correctness hazard (``tests/test_graph_deltas.py`` holds patched
residents bit-identical to a full refreeze of the mutated source).

* **Solve-level** (:mod:`repro.parallel.pool`,
  :class:`ResidentSolvePool` / :class:`ParallelSolver`): whole solves
  run inside workers.  ``solve_many`` multiplexes many independent
  requests onto the pool (each one a full-strength serial solve inside
  one worker); :func:`parallel_solve` splits one budget ``T`` into
  ``W`` independent best-of slices — portfolio throughput, but each
  worker refits its CE vectors from only ``T/W`` of the evidence.
* **Stage-level sharded CE** (:mod:`repro.parallel.stage_pool`,
  :class:`StagePool` + :class:`ShardedStageExecutor`): the draws
  *inside* each CBAS/CBAS-ND stage are sharded across the pool and
  merged at stage boundaries, so every Eq. (4) refit sees the *full*
  elite set — exactly the paper's OpenMP loop.  The only mode that
  accelerates a *single* large solve at full statistical strength.

Which mode when?  That decision lives in the runtime layer: the cost
model in :mod:`repro.runtime.router` resolves ``mode="auto"`` per
request (``choose_mode`` — thresholds recalibrated for the resident
wire protocol), and :class:`~repro.runtime.context.ExecutionContext`
owns both pool lifecycles — prefer going through it rather than
instantiating the classes here directly.  The modes compose with
everything else (engines, warm starts); residency requires
``engine="compiled"`` because workers hold only the detached flat
arrays — reference-engine solvers fall back to shipping the dict graph
per task.

Fault tolerance
---------------
Both pools are *self-healing* — built for the long-lived serving
sessions the runtime layer targets, where a worker OOM or segfault must
not take down the process:

* **Supervision** — every RPC wait polls worker liveness
  (:class:`~repro.parallel.residency.WorkerPoolBase`), so a dead worker
  surfaces as a typed crash instead of a hung ``recv``.  The worker is
  respawned and its residency ledger reset (the fresh process holds
  nothing; the payload-token generation tags make re-shipping exactly
  as cheap as it needs to be).
* **Deterministic retry** — the dead worker's chunk (solve level) or
  stage shard (stage level) is re-dispatched, re-shipping whatever
  graphs it references, up to ``max_retries`` times with bounded
  backoff.  Every dispatch carries its explicit seeds, so a retried
  dispatch is **bit-identical** to the original: crash recovery is
  provably invisible in results (the chaos suite,
  ``tests/test_faults.py``, asserts equality against fault-free runs at
  every dispatch position).
* **Deadlines** — a :class:`~repro.runtime.requests.SolveRequest` with
  ``deadline_s`` bounds its wall-clock: an RPC wait that outlives the
  deadline cancels the dispatch (the worker is killed and respawned)
  and the request fails cleanly into
  :class:`~repro.exceptions.BatchExecutionError` with a
  ``kind="deadline"`` :class:`~repro.exceptions.RequestFailure` — the
  rest of the batch is unaffected, and a reply that already arrived is
  always delivered.
* **Graceful degradation** — once a retry budget is exhausted the pool
  goes ``healthy = False``: ``solve_many`` re-runs the affected
  requests serially in-parent (still bit-identical — the seeds are in
  the requests), the stage executor computes exhausted shards itself,
  and the router sends subsequent work serial until the pools are
  discarded.
* **Accounting** — recovery events surface uniformly in
  ``SolveStats.extra`` via :func:`~repro.parallel.residency.
  record_recovery`: ``worker_restarts``, ``chunk_retries``,
  ``degraded_to_serial``, ``deadline_missed`` — written only when
  non-zero, so fault-free stats are byte-identical to pre-supervision
  builds.
* **Fault injection** — :class:`~repro.parallel.faults.FaultPlan`
  (test-only, via the pools' ``fault_plan`` attribute) deterministically
  kills a worker before its Nth RPC, drops a reply, or delays one past
  a deadline, so recovery behaviour is asserted exactly rather than
  observed anecdotally.  The same plans target the serving daemon
  (:mod:`repro.serving`): ``stalls`` hold its dispatch loop to force
  deterministic overload, and :class:`~repro.parallel.faults.
  ArrivalScript` replays seeded open-loop arrival schedules against it.
"""

from repro.parallel.faults import NEXT_RPC, ArrivalScript, FaultPlan
from repro.parallel.pool import (
    ParallelSolver,
    ResidentSolvePool,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)
from repro.parallel.residency import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RESIDENT_GRAPHS,
    ResidencyLedger,
    ResidentGraphStore,
    apply_graph_patch,
    plan_graph_message,
    record_recovery,
    record_shipping,
)
from repro.parallel.stage_pool import ShardedStageExecutor, StagePool

__all__ = [
    "ArrivalScript",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RESIDENT_GRAPHS",
    "FaultPlan",
    "NEXT_RPC",
    "ParallelSolver",
    "ResidencyLedger",
    "ResidentGraphStore",
    "ResidentSolvePool",
    "ShardedStageExecutor",
    "StagePool",
    "apply_graph_patch",
    "parallel_solve",
    "plan_graph_message",
    "record_recovery",
    "record_shipping",
    "split_budget",
    "worker_payload_bytes",
]
