"""Deterministic fault injection for the resident worker pools.

The self-healing machinery in :mod:`repro.parallel.residency` (liveness
detection, respawn, ledger invalidation, chunk retry, deadline
cancellation) is only trustworthy if its exact behaviour can be
asserted — "kill a worker and see if it recovers" is not a test unless
*which* worker dies, *when*, is reproducible.  This module provides that
reproducibility: a :class:`FaultPlan` names faults by ``(worker,
rpc)`` coordinates, where ``rpc`` counts the parent's sends to that
worker slot (1-based, monotone across respawns), and both pools consult
the plan at their single send/receive choke points
(:meth:`~repro.parallel.residency.WorkerPoolBase._send_bytes` /
:meth:`~repro.parallel.residency.WorkerPoolBase._recv`).

Three fault kinds, mirroring the failure modes a long-lived serving
process actually sees:

* **kill** — the worker process is SIGKILLed immediately before the
  parent sends it the named RPC: the send lands in a dead pipe (or a
  soon-to-close one) and the crash surfaces at the next liveness-aware
  wait, exactly like an OOM-killed or segfaulted worker;
* **drop** — the worker's reply to the named RPC is received and
  discarded by the parent, so the wait starves: with a deadline the
  dispatch is cancelled and fails as ``kind="deadline"``, without one it
  models a wedged reply stream;
* **delay** — the reply is held for the given number of seconds before
  delivery, so a generous hold with a short ``deadline_s`` exercises the
  deadline path without any real slowness.

Because every chunk and shard carries explicit seeds, a dispatch retried
after an injected kill is bit-identical to the original — the chaos
suite (``tests/test_faults.py``) asserts equality against fault-free
runs at every dispatch position.

The hook is test-only by design: pools expose a ``fault_plan``
attribute, ``None`` by default, with zero cost on the hot path beyond
one attribute check.  Production code must never set it.
"""

from __future__ import annotations

import random

__all__ = ["FaultPlan", "NEXT_RPC"]

#: Sentinel RPC position: the fault fires on the *next* send to the
#: worker, whatever its absolute sequence number — convenient for
#: injecting into an already-warm pool (the bench does this).
NEXT_RPC = "next"


class FaultPlan:
    """A deterministic schedule of injected pool faults.

    Parameters
    ----------
    kills:
        Iterable of ``(worker, rpc)``: SIGKILL the worker's process just
        before the parent sends it its ``rpc``-th message (1-based; the
        count is monotone per worker slot, surviving respawns).  ``rpc``
        may be :data:`NEXT_RPC` to fire on the next send regardless of
        position.
    drops:
        Iterable of ``(worker, rpc)``: discard the worker's reply to
        that message after it arrives (the wait then starves until its
        deadline).
    delays:
        Mapping ``(worker, rpc) -> seconds``: hold the reply for that
        long before delivering it (a hold past the request's deadline
        cancels the dispatch instead).

    Each fault fires at most once; :attr:`log` records every firing as
    ``(kind, worker, rpc)`` so tests can assert a fault actually
    triggered (a kill planned past the last RPC never fires).
    """

    def __init__(
        self,
        kills: "tuple | list" = (),
        drops: "tuple | list" = (),
        delays: "dict | None" = None,
    ) -> None:
        self._kills = list(kills)
        self._drops = list(drops)
        self._delays = dict(delays or {})
        #: Faults that actually fired, in firing order.
        self.log: "list[tuple]" = []

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(spec: tuple, worker: int, seq: int) -> bool:
        spec_worker, spec_rpc = spec
        return spec_worker == worker and (
            spec_rpc == NEXT_RPC or spec_rpc == seq
        )

    def kill_before_send(self, worker: int, seq: int) -> bool:
        """Should the worker be killed before its ``seq``-th send?"""
        for spec in self._kills:
            if self._matches(spec, worker, seq):
                self._kills.remove(spec)
                self.log.append(("kill", worker, seq))
                return True
        return False

    def reply_disposition(self, worker: int, seq: int):
        """How to treat the reply to the worker's ``seq``-th RPC.

        Returns ``None`` (deliver normally), ``"drop"`` (discard), or a
        float (hold for that many seconds before delivering).
        """
        for spec in self._drops:
            if self._matches(spec, worker, seq):
                self._drops.remove(spec)
                self.log.append(("drop", worker, seq))
                return "drop"
        for spec, hold in list(self._delays.items()):
            if self._matches(spec, worker, seq):
                del self._delays[spec]
                self.log.append(("delay", worker, seq))
                return float(hold)
        return None

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        rpcs: int,
        kills: int = 1,
        drops: int = 0,
    ) -> "FaultPlan":
        """A reproducible random plan over ``workers × rpcs`` positions.

        Draws ``kills + drops`` distinct ``(worker, rpc)`` positions
        from a :class:`random.Random` seeded with ``seed`` — the same
        seed always yields the same plan, so a chaos run that exposed a
        recovery bug can be replayed exactly.
        """
        if kills + drops > workers * rpcs:
            raise ValueError(
                f"cannot place {kills + drops} faults over "
                f"{workers * rpcs} (worker, rpc) positions"
            )
        rng = random.Random(seed)
        positions = [
            (worker, rpc)
            for worker in range(workers)
            for rpc in range(1, rpcs + 1)
        ]
        chosen = rng.sample(positions, kills + drops)
        return cls(kills=chosen[:kills], drops=chosen[kills:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(kills={self._kills!r}, drops={self._drops!r}, "
            f"delays={self._delays!r}, fired={self.log!r})"
        )
