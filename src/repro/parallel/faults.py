"""Deterministic fault injection for the resident worker pools.

The self-healing machinery in :mod:`repro.parallel.residency` (liveness
detection, respawn, ledger invalidation, chunk retry, deadline
cancellation) is only trustworthy if its exact behaviour can be
asserted — "kill a worker and see if it recovers" is not a test unless
*which* worker dies, *when*, is reproducible.  This module provides that
reproducibility: a :class:`FaultPlan` names faults by ``(worker,
rpc)`` coordinates, where ``rpc`` counts the parent's sends to that
worker slot (1-based, monotone across respawns), and both pools consult
the plan at their single send/receive choke points
(:meth:`~repro.parallel.residency.WorkerPoolBase._send_bytes` /
:meth:`~repro.parallel.residency.WorkerPoolBase._recv`).

Three fault kinds, mirroring the failure modes a long-lived serving
process actually sees:

* **kill** — the worker process is SIGKILLed immediately before the
  parent sends it the named RPC: the send lands in a dead pipe (or a
  soon-to-close one) and the crash surfaces at the next liveness-aware
  wait, exactly like an OOM-killed or segfaulted worker;
* **drop** — the worker's reply to the named RPC is received and
  discarded by the parent, so the wait starves: with a deadline the
  dispatch is cancelled and fails as ``kind="deadline"``, without one it
  models a wedged reply stream;
* **delay** — the reply is held for the given number of seconds before
  delivery, so a generous hold with a short ``deadline_s`` exercises the
  deadline path without any real slowness.

Because every chunk and shard carries explicit seeds, a dispatch retried
after an injected kill is bit-identical to the original — the chaos
suite (``tests/test_faults.py``) asserts equality against fault-free
runs at every dispatch position.

The serving daemon (:mod:`repro.serving`) added a fourth fault surface
above the pools — its dispatch loop.  A plan can therefore also carry

* **stalls** — hold the daemon's queue for the given number of seconds
  immediately before it drains its ``seq``-th batch (1-based).  A stall
  longer than the admission controller's queue patience forces
  deterministic ``kind="queue_timeout"`` rejections; a stall combined
  with a burst of arrivals fills the bounded queue and forces
  deterministic ``kind="shed"`` rejections — *which* requests are shed
  depends only on the arrival order, never on timing races.

Worker kills/drops/delays compose with the daemon transparently: the
daemon installs the same plan on its context's pools, so a kill fires
mid-request underneath a served batch exactly as it would under a
direct ``solve_many``.

:class:`ArrivalScript` is the other half of daemon chaos: a
deterministic open-loop arrival schedule (bursts, uniform rates, seeded
Poisson processes) that the chaos suite and the serving bench replay
against the daemon, so an overload scenario that exposed a shedding bug
can be reproduced exactly.

The hook is test-only by design: pools expose a ``fault_plan``
attribute, ``None`` by default, with zero cost on the hot path beyond
one attribute check.  Production code must never set it.
"""

from __future__ import annotations

import random

__all__ = ["ArrivalScript", "FaultPlan", "NEXT_RPC"]

#: Sentinel RPC position: the fault fires on the *next* send to the
#: worker, whatever its absolute sequence number — convenient for
#: injecting into an already-warm pool (the bench does this).
NEXT_RPC = "next"


class FaultPlan:
    """A deterministic schedule of injected pool faults.

    Parameters
    ----------
    kills:
        Iterable of ``(worker, rpc)``: SIGKILL the worker's process just
        before the parent sends it its ``rpc``-th message (1-based; the
        count is monotone per worker slot, surviving respawns).  ``rpc``
        may be :data:`NEXT_RPC` to fire on the next send regardless of
        position.
    drops:
        Iterable of ``(worker, rpc)``: discard the worker's reply to
        that message after it arrives (the wait then starves until its
        deadline).
    delays:
        Mapping ``(worker, rpc) -> seconds``: hold the reply for that
        long before delivering it (a hold past the request's deadline
        cancels the dispatch instead).
    stalls:
        Mapping ``batch -> seconds`` for the serving daemon's dispatch
        loop: hold the queue for that long immediately before the
        daemon drains its ``batch``-th batch (1-based; ``batch`` may be
        :data:`NEXT_RPC` to stall the next drain regardless of
        position).  Ignored by the pools — only
        :class:`~repro.serving.daemon.ServingDaemon` consults it.

    Each fault fires at most once; :attr:`log` records every firing as
    ``(kind, worker, rpc)`` (``("stall", "queue", batch)`` for queue
    stalls) so tests can assert a fault actually triggered (a kill
    planned past the last RPC never fires).
    """

    def __init__(
        self,
        kills: "tuple | list" = (),
        drops: "tuple | list" = (),
        delays: "dict | None" = None,
        stalls: "dict | None" = None,
    ) -> None:
        self._kills = list(kills)
        self._drops = list(drops)
        self._delays = dict(delays or {})
        self._stalls = dict(stalls or {})
        #: Faults that actually fired, in firing order.
        self.log: "list[tuple]" = []

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(spec: tuple, worker: int, seq: int) -> bool:
        spec_worker, spec_rpc = spec
        return spec_worker == worker and (
            spec_rpc == NEXT_RPC or spec_rpc == seq
        )

    def kill_before_send(self, worker: int, seq: int) -> bool:
        """Should the worker be killed before its ``seq``-th send?"""
        for spec in self._kills:
            if self._matches(spec, worker, seq):
                self._kills.remove(spec)
                self.log.append(("kill", worker, seq))
                return True
        return False

    def reply_disposition(self, worker: int, seq: int):
        """How to treat the reply to the worker's ``seq``-th RPC.

        Returns ``None`` (deliver normally), ``"drop"`` (discard), or a
        float (hold for that many seconds before delivering).
        """
        for spec in self._drops:
            if self._matches(spec, worker, seq):
                self._drops.remove(spec)
                self.log.append(("drop", worker, seq))
                return "drop"
        for spec, hold in list(self._delays.items()):
            if self._matches(spec, worker, seq):
                del self._delays[spec]
                self.log.append(("delay", worker, seq))
                return float(hold)
        return None

    def queue_stall(self, batch: int) -> "float | None":
        """Seconds to hold the daemon's queue before draining ``batch``.

        Consulted by the serving daemon's dispatch loop with its
        1-based batch ordinal; returns ``None`` when no stall is
        planned there.  Fires at most once per planned position, like
        every other fault.
        """
        for spec, hold in list(self._stalls.items()):
            if spec == NEXT_RPC or spec == batch:
                del self._stalls[spec]
                self.log.append(("stall", "queue", batch))
                return float(hold)
        return None

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        rpcs: int,
        kills: int = 1,
        drops: int = 0,
    ) -> "FaultPlan":
        """A reproducible random plan over ``workers × rpcs`` positions.

        Draws ``kills + drops`` distinct ``(worker, rpc)`` positions
        from a :class:`random.Random` seeded with ``seed`` — the same
        seed always yields the same plan, so a chaos run that exposed a
        recovery bug can be replayed exactly.
        """
        if kills + drops > workers * rpcs:
            raise ValueError(
                f"cannot place {kills + drops} faults over "
                f"{workers * rpcs} (worker, rpc) positions"
            )
        rng = random.Random(seed)
        positions = [
            (worker, rpc)
            for worker in range(workers)
            for rpc in range(1, rpcs + 1)
        ]
        chosen = rng.sample(positions, kills + drops)
        return cls(kills=chosen[:kills], drops=chosen[kills:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(kills={self._kills!r}, drops={self._drops!r}, "
            f"delays={self._delays!r}, stalls={self._stalls!r}, "
            f"fired={self.log!r})"
        )


class ArrivalScript:
    """A deterministic open-loop arrival schedule for daemon chaos/bench.

    An *open-loop* load generator sends each request at its scheduled
    instant regardless of how the server is coping — that is what makes
    overload visible (a closed loop self-throttles and can never
    oversubscribe the queue).  The script is just the schedule: a tuple
    of non-negative :attr:`offsets` in seconds from the run's start,
    one per request, in send order.  Constructors cover the three
    shapes the chaos suite and ``bench_serving_daemon`` replay:

    * :meth:`burst` — ``count`` simultaneous arrivals (offset 0),
      the canonical queue-filling overload;
    * :meth:`uniform` — ``count`` arrivals at a fixed ``rate`` per
      second, the steady-state load curve;
    * :meth:`poisson` — a seeded Poisson process (exponential
      inter-arrivals), reproducible per seed like
      :meth:`FaultPlan.seeded`.
    """

    def __init__(self, offsets) -> None:
        self.offsets = tuple(float(offset) for offset in offsets)
        if any(offset < 0 for offset in self.offsets):
            raise ValueError("arrival offsets must be non-negative")

    def __len__(self) -> int:
        return len(self.offsets)

    def __iter__(self):
        return iter(self.offsets)

    @classmethod
    def burst(cls, count: int, at: float = 0.0) -> "ArrivalScript":
        """``count`` simultaneous arrivals at offset ``at``."""
        return cls([at] * count)

    @classmethod
    def uniform(cls, count: int, rate: float) -> "ArrivalScript":
        """``count`` arrivals at a constant ``rate`` per second."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return cls(index / rate for index in range(count))

    @classmethod
    def poisson(cls, seed: int, count: int, rate: float) -> "ArrivalScript":
        """A seeded Poisson arrival process with mean ``rate`` per second."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        rng = random.Random(seed)
        offsets, clock = [], 0.0
        for _ in range(count):
            clock += rng.expovariate(rate)
            offsets.append(clock)
        return cls(offsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrivalScript({len(self.offsets)} arrivals)"
