"""Stage-sharded parallel CE execution over a persistent worker pool.

This is the process-based equivalent of the paper's OpenMP loop
(Fig. 5(d)): the sample draws *inside* each CBAS / CBAS-ND stage are
sharded across workers, and the workers synchronize only at stage
boundaries — every stage's cross-entropy refit sees the **full** merged
elite evidence, unlike :class:`~repro.parallel.pool.ParallelSolver`,
which runs independent whole solves on budget slices and therefore
refits each worker's CE vector from 1/W of the evidence.

Architecture
------------
* :class:`StagePool` — W long-lived worker processes, each holding the
  problem's frozen :class:`~repro.graph.compiled.CompiledGraph` arrays
  *resident* across stages, solves, and online re-planning rounds,
  through the shared residency protocol of
  :mod:`repro.parallel.residency` (the solve-level
  :class:`~repro.parallel.pool.ResidentSolvePool` speaks the same one).
  Payloads are keyed by :attr:`~repro.graph.compiled.CompiledGraph.
  payload_token`: a re-plan on the same graph ships only the O(1)
  problem spec (``k`` / ``required`` / ``forbidden``), a graph mutation
  mints a new token and transparently invalidates the resident arrays,
  and long sessions over many graphs evict least-recently-used entries
  from the bounded worker caches.
* :class:`ShardedStageExecutor` — the :class:`~repro.algorithms.
  stage_exec.StageExecutor` strategy solvers plug in.  Per stage it
  splits every funded start node's budget share into per-worker shards
  (budget + RNG seed + pending CE-vector sync patches — a few hundred
  bytes), and merges the workers' compact
  :class:`~repro.algorithms.sampling.ShardSummary` replies: OCBA
  statistics (min/max/count merge exactly; Welford moments via the
  parallel combination), the incumbent best sample, and one Eq. (4)
  refit from the merged elite set.
* Workers draw with the exact same compiled kernel
  (:meth:`~repro.algorithms.sampling.ExpansionSampler.draw_batch`) and
  mirror each start's :class:`~repro.ce.probability.
  SelectionProbabilities` by replaying the parent's refit patches, so a
  shard's draws are bit-identical to a serial run fed the same
  per-shard RNG streams (``tests/test_stage_parallel.py`` proves the
  merged elite set and refit vector match a serial reconstruction of
  the concatenated sample stream).

Semantics versus serial execution
---------------------------------
A stage-sharded solve is *not* RNG-stream-identical to the default
serial solve (the draws come from per-shard generators), but it is the
same statistical computation with the same per-stage elite refit — the
paper makes the same observation about its OpenMP runs.  Two designed
divergences: the consecutive-failure write-off cap is enforced per
shard (a failing start can draw up to one shard's worth of extra
attempts before every worker notices), and the Gaussian allocation
model sees merged rather than serially-accumulated Welford moments.
The default uniform allocation reads only min/max/count, which merge
exactly.
"""

from __future__ import annotations

import itertools
import pickle
import random
import time
import traceback
from typing import Optional

from repro.algorithms.sampling import (
    ExpansionSampler,
    Sample,
    seed_for_start,
    summarize_shard,
)
from repro.algorithms.stage_exec import (
    MAX_CONSECUTIVE_FAILURES,
    StageContext,
    StageExecutor,
)
from repro.ce.probability import SelectionProbabilities
from repro.core.problem import problem_from_payload_spec
from repro.core.willingness import FastWillingnessEvaluator
from repro.graph.compiled import CompiledGraph
from repro.exceptions import WorkerCrashError
from repro.parallel.pool import split_budget
from repro.parallel.residency import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RESIDENT_GRAPHS,
    ResidencyLedger,
    ResidentGraphStore,
    WorkerPoolBase,
    apply_graph_patch,
    plan_graph_message,
    record_recovery,
    record_shipping,
)

__all__ = ["StagePool", "ShardedStageExecutor"]

#: Solve ids are unique per parent process so a worker can detect stage
#: requests for a solve it was never set up for.
_SOLVE_COUNTER = itertools.count()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _apply_patch(vector: SelectionProbabilities, patch: tuple) -> None:
    """Replay one parent-side vector change on a worker mirror."""
    kind = patch[0]
    if kind == "round":
        vector.apply_round(patch[1], patch[2])
    elif kind == "full":
        vector.restore(patch[1])
    else:  # pragma: no cover - protocol guard
        raise ValueError(f"unknown vector patch kind {kind!r}")


class _WorkerSolveState:
    """One solve's worker-resident execution state.

    Rebuilt per solve from the resident compiled arrays plus the small
    solve spec: the problem, the shared sampler (whose per-seed cache
    amortizes across all stages of the solve), and — for CBAS-ND — one
    mirror probability vector per start node, kept in sync with the
    parent by replaying refit patches.
    """

    def __init__(self, compiled, spec: dict) -> None:
        self.solve_id = spec["solve_id"]
        problem = problem_from_payload_spec(compiled, spec["problem"])
        self.engine = spec.get("engine", "compiled")
        if self.engine == "vector":
            from repro.vector import VectorWillingnessEvaluator

            evaluator = VectorWillingnessEvaluator(compiled)
        else:
            evaluator = FastWillingnessEvaluator(compiled)
        self.sampler = ExpansionSampler(problem, evaluator)
        if self.engine == "vector":
            # Shared solve-level Philox base key: every shard's uniforms
            # are a pure function of (key, start, planned draw ordinal),
            # not of which worker draws them.
            self.sampler.vector_key = spec["vector_key"]
        self.seeds = [seed_for_start(problem, start) for start in spec["starts"]]
        self.mode = spec["mode"]
        self.max_failures = spec["max_failures"]
        self.vectors: "list[SelectionProbabilities] | None" = None
        if self.mode == "ce":
            # Bit-identical to the parent's cold vectors: same candidate
            # order (compiled node order minus forbidden), same k, same
            # rebuilt index_of.  Warm vectors ship their arrays.
            template = SelectionProbabilities(
                problem.candidates(),
                problem.k,
                index_of=compiled.index_of,
                size=compiled.number_of_nodes,
                backend="numpy" if self.engine == "vector" else "list",
            )
            vectors = []
            for initial in spec["vectors"]:
                vector = template.replicate()
                if initial is not None:
                    vector.restore(initial)
                vectors.append(vector)
            self.vectors = vectors

    def run_entry(self, entry: dict):
        """Draw one shard and reduce it to a :class:`ShardSummary`."""
        index = entry["start"]
        weight_array = None
        if self.vectors is not None:
            vector = self.vectors[index]
            for patch in entry["sync"]:
                _apply_patch(vector, patch)
            weight_array = vector.array
        carry = entry["failures"]
        if self.engine == "vector":
            # Positional randomness: no per-shard RNG seed at all — the
            # entry's planned first-draw ordinal addresses the Philox
            # stream directly.
            batch = self.sampler.draw_batch_vector(
                [
                    {
                        "start_key": index,
                        "seed": self.seeds[index],
                        "first_draw": entry["first_draw"],
                        "count": entry["count"],
                        "failures": carry,
                    }
                ],
                mode=self.mode,
                weight_rows=(
                    [weight_array] if self.mode == "ce" else None
                ),
                max_failures=self.max_failures,
            )[0]
        else:
            rng = random.Random(entry["seed"])
            batch = self.sampler.draw_batch(
                self.seeds[index],
                rng,
                entry["count"],
                weight_array=weight_array,
                failures=carry,
                max_failures=self.max_failures,
            )
        return summarize_shard(
            batch,
            entry["keep_rank"],
            max_failures=self.max_failures,
            carry_failures=carry,
        )


def _stage_worker_main(conn) -> None:
    """Worker process loop: resident graphs + per-solve state + stage RPC."""
    store = ResidentGraphStore()
    solve: "Optional[_WorkerSolveState]" = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "close":
            break
        try:
            if kind == "graph":
                _, token, compiled, evict = message
                store.install(token, compiled, evict)
                reply = ("ok", token)
            elif kind == "graph_path":
                # Zero-copy install: map the frozen on-disk index named
                # by the manifest path instead of receiving a pickle.
                # verify=False — the parent validated the manifest and
                # the token is content-derived (see pool.py's twin).
                _, token, path, evict = message
                compiled = CompiledGraph.load(path, mmap=True, verify=False)
                if compiled.payload_token != token:
                    raise RuntimeError(
                        f"frozen index at {path!r} resolves to token "
                        f"{compiled.payload_token!r}, expected {token!r}"
                    )
                store.install(token, compiled, evict)
                reply = ("ok", token)
            elif kind == "graph_patch":
                # Sparse upgrade of a resident graph: replay the
                # parent's delta batches against the arrays already
                # here — O(|delta|) bytes instead of a full re-install.
                _, token, generation, batches = message
                apply_graph_patch(store, token, generation, batches)
                reply = ("ok", token)
            elif kind == "solve":
                _, spec = message
                token = spec["problem"]["token"]
                solve = _WorkerSolveState(store.get(token), spec)
                reply = ("ok", solve.solve_id)
            elif kind == "stage":
                _, solve_id, entries = message
                if solve is None or solve.solve_id != solve_id:
                    raise RuntimeError(
                        f"stage request for unknown solve {solve_id!r}"
                    )
                reply = ("ok", [solve.run_entry(entry) for entry in entries])
            else:
                raise RuntimeError(f"unknown stage-pool message {kind!r}")
        except BaseException:
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class StagePool(WorkerPoolBase):
    """W persistent worker processes with resident graph payloads.

    The pool outlives individual solves: create it once, hand it to any
    number of :class:`ShardedStageExecutor` solves (one at a time), and
    :meth:`close` it when done (also usable as a context manager).
    Workers keep installed graphs' frozen arrays resident — bounded to
    ``resident_graphs`` entries with LRU eviction, per the shared
    protocol in :mod:`repro.parallel.residency` — so repeated solves and
    online re-planning rounds on one graph pay the O(V+E) payload
    shipping exactly once.  Installs normally broadcast to every worker,
    but each worker keeps its own ledger mirror: after a respawn the
    fresh worker's (reset) ledger diverges from its siblings', and
    :meth:`ensure_resident` re-ships only where the arrays are missing.

    The pool is *self-healing*: a worker that dies mid-stage is
    respawned and brought back to the current solve (graph re-install,
    solve spec re-send), and its shard is re-dispatched — with the
    caller's ``rebuild`` hook refreshing the CE-vector sync patches to
    the full history the rebuilt mirrors need — up to ``max_retries``
    times with bounded backoff.  Shard entries carry explicit seeds, so
    a retried shard draws bit-identically.  When retries run out the
    shard runs through the caller's ``fallback`` hook (the executor
    computes it in-parent), the pool goes ``healthy = False``, and the
    worker is healed lazily before the next stage.
    """

    def __init__(
        self,
        workers: int,
        resident_graphs: int = DEFAULT_RESIDENT_GRAPHS,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        super().__init__(workers, _stage_worker_main)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self._resident_graphs = resident_graphs
        self._ledgers = [
            ResidencyLedger(resident_graphs) for _ in range(workers)
        ]
        #: Install *events* (an :meth:`ensure_resident` call that shipped
        #: to at least one worker).  Fault-free sessions broadcast every
        #: install, so this matches the historical one-ledger count.
        self._install_events = 0
        self._mru_token: "Optional[str]" = None
        #: What crash recovery needs to rebuild a worker: the problem
        #: whose graph the current solve runs on, and the solve spec.
        self._current_problem = None
        self._current_spec: "Optional[dict]" = None
        #: Workers awaiting lazy recovery (post-fallback) before the
        #: next stage can be dispatched to them.
        self._needs_recovery: "set[int]" = set()
        #: Wire bytes of the most recent :meth:`ensure_resident` install
        #: (0 when the graph was already resident) — the stage executor
        #: records it through the shared accounting.
        self.last_install_bytes = 0
        #: Of which: bytes of sparse ``graph_patch`` upgrades sent to
        #: stale-but-resident workers (not counted as install events).
        self.last_patch_bytes = 0
        #: Lifetime recovery accounting (executors snapshot deltas).
        self.shard_retries = 0
        self.fallback_shards = 0
        #: Sticky health flag: cleared when a shard exhausts its retry
        #: budget and has to run through the fallback.
        self.healthy = True

    # ------------------------------------------------------------------
    @property
    def installs(self) -> int:
        """Number of graph payload installs performed (tests / stats)."""
        return self._install_events

    @property
    def resident_token(self) -> Optional[str]:
        """Most recently used graph token resident in the workers."""
        return self._mru_token

    # ------------------------------------------------------------------
    def _on_respawn(self, worker: int) -> None:
        # The fresh worker's ResidentGraphStore is empty: forget its
        # mirror so the recovery install ships what retries need.
        self._ledgers[worker].reset()

    def _broadcast(self, message) -> int:
        # Serialize once and fan the bytes out: Connection.send would
        # re-pickle the message per worker, which matters for the
        # O(V+E) graph install (the workers' recv() unpickles either way).
        data = pickle.dumps(message)
        for worker in range(self.workers):
            self._send_bytes(worker, data)
        return len(data) * self.workers

    def _expect_ok(self, worker: int):
        """One supervised reply from ``worker``; protocol errors are
        terminal (the pool closes itself and raises)."""
        kind, payload = self._recv(worker)
        if kind == "error":
            self._fail(
                f"stage-pool worker {worker} failed; the pool has been "
                f"closed:\n{payload}"
            )
        return payload

    def _recover_worker(self, worker: int) -> None:
        """Bring a freshly respawned worker back to the current solve.

        Re-installs the current problem's graph (the reset ledger says
        "ship") and re-sends the solve spec; the caller then re-sends
        whatever dispatch the dead worker owed.  May raise
        :class:`~repro.exceptions.WorkerCrashError` if the replacement
        dies too — callers loop with a retry budget.
        """
        problem = self._current_problem
        if problem is None:
            return
        token = problem.payload_token()
        compiled = problem.compiled()
        ledger = self._ledgers[worker]
        ship, evictions = ledger.plan(token)
        # A respawned worker's reset ledger answers "ship" — crash
        # recovery is a full install at the *current* generation (the
        # replayed patch history is already folded into the arrays); a
        # merely-stale survivor gets the sparse patch instead.
        message, _ = plan_graph_message(
            ledger, token, compiled, ship, evictions, compiled.detach
        )
        if message is not None:
            self._send_bytes(worker, pickle.dumps(message))
            self._expect_ok(worker)
        if self._current_spec is not None:
            self._send_bytes(
                worker, pickle.dumps(("solve", self._current_spec))
            )
            self._expect_ok(worker)

    def _await_ack(self, worker: int) -> None:
        """Await one setup ack (install / solve), healing crashes.

        A worker that dies during setup is respawned and rebuilt via
        :meth:`_recover_worker` — which itself re-sends the install and
        spec, so once recovery succeeds there is no further ack to
        await.
        """
        attempts = 0
        recovering = False
        while True:
            try:
                if recovering:
                    self._recover_worker(worker)
                    return
                self._expect_ok(worker)
                return
            except WorkerCrashError:
                if attempts >= self.max_retries:
                    self._fail(
                        f"stage-pool worker {worker} keeps dying during "
                        "solve setup; the pool has been closed"
                    )
                attempts += 1
                self.respawn(worker)
                recovering = True
                time.sleep(min(0.01 * (2 ** (attempts - 1)), 0.1))

    def heal(self) -> "list[int]":
        """Recover workers left torn down by a fallback, lazily.

        Returns the healed worker indices so the executor can reset its
        per-worker sync bookkeeping (the rebuilt CE mirrors start from
        the initial vectors again).
        """
        healed = []
        for worker in sorted(self._needs_recovery):
            attempts = 0
            while True:
                try:
                    self._recover_worker(worker)
                    break
                except WorkerCrashError:
                    if attempts >= self.max_retries:
                        self._fail(
                            f"stage-pool worker {worker} keeps dying "
                            "during recovery; the pool has been closed"
                        )
                    attempts += 1
                    self.respawn(worker)
                    time.sleep(min(0.01 * (2 ** (attempts - 1)), 0.1))
            healed.append(worker)
        self._needs_recovery.clear()
        return healed

    # ------------------------------------------------------------------
    def ensure_resident(self, problem) -> bool:
        """Install ``problem``'s frozen graph arrays where missing.

        Returns ``True`` when full graph arrays were actually shipped,
        ``False`` when the workers already held this freeze (re-plans,
        repeated solves) — including when stale-but-resident copies were
        brought current with sparse ``graph_patch`` messages
        (``last_patch_bytes``; a patch is not an install).  The full
        payload is the dict-free detached index — the same slim arrays
        :func:`~repro.parallel.pool.parallel_solve` ships.  Per-worker
        ledgers mean a respawned worker gets the arrays again while its
        warm siblings only get what they lack.
        """
        if self._closed:
            raise RuntimeError("stage pool is closed")
        token = problem.payload_token()
        compiled = problem.compiled()
        self._current_problem = problem
        # A solve boundary: the previous solve's spec is over, and a
        # crash recovered during this install must not replay it — the
        # old spec can name an older graph generation than the arrays
        # recovery just installed.  ``start_solve`` ships the new one.
        self._current_spec = None
        self._mru_token = token
        detached = None

        def payload():
            nonlocal detached
            if detached is None:
                detached = compiled.detach()
            return detached

        payloads: "dict[tuple, bytes]" = {}
        pending = []
        shipped = False
        total_bytes = 0
        patch_bytes = 0
        for worker in range(self.workers):
            ledger = self._ledgers[worker]
            ship, evictions = ledger.plan(token)
            # Full install (cold / demoted), sparse generation patch
            # (resident but stale), or nothing (resident and current) —
            # resolved by the shared protocol helper.  On-disk indexes
            # install as the manifest path: O(1) bytes at any size.
            message, kind = plan_graph_message(
                ledger, token, compiled, ship, evictions, payload
            )
            if message is None:
                continue
            if kind == "install":
                # Identical installs share one pickle, keyed by the
                # eviction list (the only per-worker part).
                data = payloads.get(message[3])
                if data is None:
                    data = pickle.dumps(message)
                    payloads[message[3]] = data
                shipped = True
            else:
                data = pickle.dumps(message)
                patch_bytes += len(data)
            self._send_bytes(worker, data)
            total_bytes += len(data)
            pending.append(worker)
        self.last_install_bytes = total_bytes
        self.last_patch_bytes = patch_bytes
        if not pending:
            return False
        if shipped:
            self._install_events += 1
        for worker in pending:
            self._await_ack(worker)
        return shipped

    def start_solve(self, spec: dict) -> None:
        """Set up per-solve worker state (problem spec, CE mirrors)."""
        self._current_spec = spec
        self._broadcast(("solve", spec))
        for worker in range(self.workers):
            self._await_ack(worker)

    def run_stage(
        self,
        solve_id: int,
        worker_entries: "list[list[dict]]",
        rebuild=None,
        fallback=None,
    ):
        """Execute one stage: ``worker_entries[w]`` goes to worker ``w``.

        Returns, per worker, the list of :class:`~repro.algorithms.
        sampling.ShardSummary` results aligned with that worker's
        entries.

        ``rebuild(worker, entries)`` (optional) refreshes a shard for a
        respawned worker before it is re-dispatched — the executor
        replaces the incremental CE-vector sync patches with the full
        history the rebuilt mirrors need.  ``fallback(worker, entries)``
        (optional) computes the shard in the parent once the retry
        budget is exhausted; without it an exhausted shard is terminal
        (the pool closes itself and raises).
        """
        if len(worker_entries) != self.workers:
            raise ValueError(
                f"expected entries for {self.workers} workers, "
                f"got {len(worker_entries)}"
            )
        for worker, entries in enumerate(worker_entries):
            self._send_bytes(
                worker, pickle.dumps(("stage", solve_id, entries))
            )
        return [
            self._await_stage(
                worker, solve_id, worker_entries[worker], rebuild, fallback
            )
            for worker in range(self.workers)
        ]

    def _await_stage(
        self, worker: int, solve_id: int, entries, rebuild, fallback
    ):
        """Await one worker's stage reply, healing crashes by retry."""
        attempts = 0
        owes_reply = True
        while True:
            try:
                if not owes_reply:
                    # Re-arm the respawned worker: rebuild its solve
                    # state, refresh the shard, and re-dispatch it.
                    self._recover_worker(worker)
                    if rebuild is not None:
                        entries = rebuild(worker, entries)
                    self._send_bytes(
                        worker, pickle.dumps(("stage", solve_id, entries))
                    )
                    owes_reply = True
                return self._expect_ok(worker)
            except WorkerCrashError:
                self.respawn(worker)
                owes_reply = False
                if attempts >= self.max_retries:
                    self.healthy = False
                    if fallback is None:
                        self._fail(
                            f"stage-pool worker {worker} keeps dying "
                            "mid-stage and no fallback was provided; the "
                            "pool has been closed"
                        )
                    # The respawned worker holds neither graph nor solve
                    # state; heal() rebuilds it before the next stage.
                    self._needs_recovery.add(worker)
                    self.fallback_shards += 1
                    return fallback(worker, entries)
                attempts += 1
                self.shard_retries += 1
                time.sleep(min(0.01 * (2 ** (attempts - 1)), 0.1))

class ShardedStageExecutor(StageExecutor):
    """Stage strategy that shards every stage's draws across a pool.

    Parameters
    ----------
    pool:
        A :class:`StagePool` to run on (shared, not closed by this
        executor) — or ``None`` to create an owned pool of ``workers``
        processes, which :meth:`close` then tears down.
    workers:
        Worker count for the owned pool (ignored when ``pool`` is given).
    trace:
        Record a per-stage shard/merge trace on :attr:`trace` — used by
        the shard-merge equivalence tests to replay the exact per-shard
        RNG streams serially; off by default (it retains kept samples).
    """

    def __init__(
        self,
        pool: Optional[StagePool] = None,
        workers: Optional[int] = None,
        trace: bool = False,
    ) -> None:
        if pool is None:
            if workers is None:
                raise ValueError("need either a pool or a worker count")
            pool = StagePool(workers)
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        self.trace: "list | None" = [] if trace else None
        self._solve_id: Optional[int] = None
        self._patch_log: "list[list] | None" = None
        self._patch_sizes: "list[list[int]] | None" = None
        self._synced: "list[list[int]] | None" = None
        #: Kept for crash recovery: the compiled index and solve spec
        #: let the executor rebuild shard state in-parent (fallback) and
        #: re-sync rebuilt workers (rebuild).
        self._compiled = None
        self._spec: "Optional[dict]" = None
        self._restarts0 = 0
        self._retries0 = 0
        self._fallback0 = 0
        #: Vector-engine solves: planned per-start draw ordinals (the
        #: Philox counter positions) instead of per-shard RNG seeds.
        self._vector = False
        self._ordinals: "Optional[list[int]]" = None

    # ------------------------------------------------------------------
    def begin_solve(self, ctx: StageContext) -> None:
        solver = ctx.solver
        if not ctx.sampler.is_compiled:
            raise ValueError(
                "stage-sharded execution requires engine='compiled': the "
                "workers hold the detached flat arrays, which cannot back "
                "the dict-based reference path"
            )
        problem = ctx.problem
        shipped = self.pool.ensure_resident(problem)
        self._solve_id = next(_SOLVE_COUNTER)
        mode = solver._shard_mode()
        self._vector = getattr(ctx.sampler, "is_vector", False)
        self._ordinals = [0] * len(ctx.starts) if self._vector else None
        spec = {
            "solve_id": self._solve_id,
            "problem": problem.payload_spec(),
            "starts": list(ctx.starts),
            "mode": mode,
            "max_failures": MAX_CONSECUTIVE_FAILURES,
            "vectors": solver._shard_initial_vectors(),
            "engine": "vector" if self._vector else "compiled",
        }
        if self._vector:
            spec["vector_key"] = ctx.sampler.vector_key
        self.pool.start_solve(spec)
        self._compiled = problem.compiled()
        self._spec = spec
        self._restarts0 = self.pool.worker_restarts
        self._retries0 = self.pool.shard_retries
        self._fallback0 = self.pool.fallback_shards
        start_count = len(ctx.starts)
        self._patch_log = [[] for _ in range(start_count)]
        # Pickled size of each logged patch, measured once at append time
        # (never re-serialized for accounting on the stage hot path).
        self._patch_sizes = [[] for _ in range(start_count)]
        self._synced = [
            [0] * start_count for _ in range(self.pool.workers)
        ]
        ctx.stats.extra["stage_workers"] = self.pool.workers
        # Shipping accounting through the shared residency module, so
        # stage-sharded solves and solve-pool batches report the same
        # keys (solve-mode shipping used to go unrecorded, which made
        # the bench overhead curve undercount it).
        record_shipping(
            ctx.stats.extra,
            shipped=shipped,
            payload_bytes=self.pool.last_install_bytes,
            patch_bytes=self.pool.last_patch_bytes,
        )
        # Shard-protocol overhead accounting (the ROADMAP's "overhead
        # curve"): every broadcast/stage message exchanged with a worker
        # counts as one RPC; per stage the pickled bytes of the CE-vector
        # sync patches shipped with the shard entries are recorded, so
        # ``overhead ~ stages × starts × patch bytes`` is measurable from
        # any sharded solve's stats (and from the perf bench output).
        workers = self.pool.workers
        ctx.stats.extra["shard_rpcs"] = (2 if shipped else 1) * workers
        ctx.stats.extra["shard_patch_bytes"] = []
        if self.trace is not None:
            self.trace.append({"solve_id": self._solve_id, "stages": []})

    # ------------------------------------------------------------------
    def run_stage(self, ctx: StageContext, shares: "list[int]") -> None:
        solver = ctx.solver
        node_stats = ctx.node_stats
        workers = self.pool.workers
        # Workers torn down by an earlier fallback come back here, with
        # freshly rebuilt CE mirrors: their sync cursors restart at zero
        # so this stage's entries replay the full patch history.
        for worker in self.pool.heal():
            self._synced[worker] = [0] * len(self._patch_log)
        funded = [
            (index, share)
            for index, share in enumerate(shares)
            if share != 0 and not node_stats[index].pruned
        ]
        if not funded:
            return

        worker_entries: "list[list[dict]]" = [[] for _ in range(workers)]
        placements = []
        stage_patch_bytes = 0
        for index, share in funded:
            shard_counts = split_budget(share, min(workers, share))
            if self._vector:
                # Positional randomness: shards address the start's
                # Philox stream by planned draw ordinal — no per-shard
                # RNG seeds, and nothing drawn from the parent stream.
                seeds = [None] * len(shard_counts)
            else:
                seeds = [ctx.rng.randrange(2**63) for _ in shard_counts]
            keep_rank = solver._shard_keep_rank(share)
            carry = ctx.failures[index]
            pending = self._patch_log[index]
            sizes = self._patch_sizes[index]
            positions = []
            drawn_before = 0
            for shard, (count, seed) in enumerate(zip(shard_counts, seeds)):
                synced_from = self._synced[shard][index]
                entry = {
                    "start": index,
                    "count": count,
                    "seed": seed,
                    # The carry-in consecutive-failure counter seeds the
                    # first shard only; the others start fresh.
                    "failures": carry if shard == 0 else 0,
                    "keep_rank": keep_rank,
                    "sync": pending[synced_from:],
                }
                if self._vector:
                    entry["first_draw"] = self._ordinals[index] + drawn_before
                    drawn_before += count
                stage_patch_bytes += sum(sizes[synced_from:])
                worker_entries[shard].append(entry)
                self._synced[shard][index] = len(pending)
                positions.append((shard, len(worker_entries[shard]) - 1))
            if self._vector:
                # Advance by the full planned share (even if a shard's
                # failure cap truncates its realized batch) so ordinals
                # match the serial vector executor's plan exactly.
                self._ordinals[index] += share
            placements.append(
                (index, carry, shard_counts, seeds, keep_rank, positions)
            )

        results = self.pool.run_stage(
            self._solve_id,
            worker_entries,
            rebuild=self._rebuild,
            fallback=self._fallback,
        )

        stats = ctx.stats
        stats.extra["shard_rpcs"] += workers
        stats.extra["shard_patch_bytes"].append(stage_patch_bytes)
        # Cumulative recovery accounting: keys appear only when the pool
        # actually had to heal something, so fault-free stats are
        # unchanged.
        record_recovery(
            stats.extra,
            restarts=self.pool.worker_restarts - self._restarts0,
            retries=self.pool.shard_retries - self._retries0,
            degraded=self.pool.fallback_shards - self._fallback0,
        )
        best_sample = ctx.best_sample
        stage_trace = [] if self.trace is not None else None
        for index, carry, shard_counts, seeds, keep_rank, positions in placements:
            summaries = [results[worker][pos] for worker, pos in positions]
            attempts = sum(s.attempts for s in summaries)
            successes = sum(s.successes for s in summaries)
            stats.samples_drawn += attempts
            stats.failed_samples += attempts - successes
            if self._vector:
                # Mirror the worker-side kernel counters on the parent
                # sampler so the solver's stats accounting sees them.
                ctx.sampler.vector_batch_draws += attempts

            # Consecutive-failure carry-out over the concatenated stream;
            # a shard that hit the write-off cap locally prunes, exactly
            # like the serial loop's running counter.
            counter = carry
            hit_cap = False
            for summary in summaries:
                hit_cap = hit_cap or summary.hit_cap
                if summary.successes:
                    counter = summary.trailing_failures
                else:
                    counter += summary.failures
            ctx.failures[index] = counter
            if hit_cap or counter >= MAX_CONSECUTIVE_FAILURES:
                node_stats[index].pruned = True

            kept = [pair for summary in summaries for pair in summary.kept]
            if successes:
                stat = node_stats[index]
                for summary in summaries:
                    stat.merge_summary(
                        summary.successes,
                        summary.min_w,
                        summary.max_w,
                        summary.mean,
                        summary.m2,
                    )
                # Incumbent best: first occurrence (in concatenated draw
                # order) of the stage maximum, compared strictly — the
                # same tie-breaking as the serial per-sample update.
                top = max(willingness for willingness, _ in kept)
                if best_sample is None or top > best_sample.willingness:
                    for willingness, indices in kept:
                        if willingness == top:
                            best_sample = self._make_sample(
                                ctx, willingness, indices
                            )
                            break

            patch = solver._merge_start_stage(index, successes, kept, stats)
            if patch is not None:
                self._patch_log[index].append(patch)
                self._patch_sizes[index].append(len(pickle.dumps(patch)))
            if stage_trace is not None:
                stage_trace.append(
                    {
                        "start": index,
                        "shards": list(zip(shard_counts, seeds)),
                        "carry": carry,
                        "keep_rank": keep_rank,
                        "successes": successes,
                        "kept": kept,
                    }
                )
        ctx.best_sample = best_sample
        if stage_trace is not None:
            self.trace[-1]["stages"].append(stage_trace)

    # ------------------------------------------------------------------
    # Crash-recovery hooks (invoked by StagePool.run_stage)
    # ------------------------------------------------------------------
    def _full_sync_entries(self, entries: "list[dict]") -> "list[dict]":
        """Copies of ``entries`` whose sync patches are the full history.

        A rebuilt CE mirror (fresh worker, or the in-parent fallback
        state) starts from the initial solve-spec vectors, so the
        incremental ``pending[synced_from:]`` slice the entries shipped
        with is not enough — it needs every patch since the solve began.
        Seeds, counts, and failure carries are untouched: the redrawn
        shard is bit-identical.
        """
        rebuilt = []
        for entry in entries:
            refreshed = dict(entry)
            refreshed["sync"] = list(self._patch_log[entry["start"]])
            rebuilt.append(refreshed)
        return rebuilt

    def _rebuild(self, worker: int, entries: "list[dict]") -> "list[dict]":
        """Refresh a crashed worker's shard for re-dispatch."""
        rebuilt = self._full_sync_entries(entries)
        self._synced[worker] = [0] * len(self._patch_log)
        for entry in rebuilt:
            self._synced[worker][entry["start"]] = len(entry["sync"])
        return rebuilt

    def _fallback(self, worker: int, entries: "list[dict]"):
        """Run a retry-exhausted shard in the parent process.

        Graceful degradation: the shard is computed with the same
        :class:`_WorkerSolveState` machinery the workers run, built from
        a detached copy of the compiled index (the very shape a worker
        holds resident — ``detach`` preserves the payload token) and the
        stored solve spec, so the summaries are bit-identical to what
        the worker would have returned.  The pool marks the worker for
        lazy :meth:`StagePool.heal` before the next stage.
        """
        state = _WorkerSolveState(self._compiled.detach(), self._spec)
        return [
            state.run_entry(entry)
            for entry in self._full_sync_entries(entries)
        ]

    @staticmethod
    def _make_sample(
        ctx: StageContext, willingness: float, indices: "tuple[int, ...]"
    ) -> Sample:
        nodes = ctx.sampler.evaluator.compiled.nodes
        return Sample(
            members=frozenset(nodes[index] for index in indices),
            willingness=willingness,
            indices=tuple(indices),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the pool if this executor owns it."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ShardedStageExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
