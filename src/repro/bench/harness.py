"""Series containers and printing for the figure-regeneration benches.

Every bench in ``benchmarks/`` produces the same *series* the corresponding
paper figure plots (one value per sweep point per algorithm), prints them
as a table headed by the figure number, and applies *shape checks* — the
qualitative claims the paper makes about the figure (who wins, what grows,
rough factors).  Absolute values are not expected to match the paper (the
datasets are synthetic stand-ins at laptop scale); the shapes are.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

#: When set, every table shown by a bench is also appended to this file —
#: pytest captures stdout, so this is how a plain ``pytest benchmarks/``
#: run still leaves the regenerated figure series on disk.
TABLE_LOG_ENV = "WASO_BENCH_TABLE_LOG"

__all__ = [
    "Series",
    "ExperimentTable",
    "timed",
    "format_seconds",
    "shape_ratio",
    "shape_nondecreasing",
    "geometric_speedup",
    "dump_json",
]


def timed(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def dump_json(path: str, payload: dict) -> None:
    """Write a bench result payload as pretty-printed JSON.

    Perf benches persist their measured series (e.g. ``BENCH_sampler.json``)
    so later PRs can diff against them and catch regressions.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


@dataclass
class Series:
    """One curve of a figure: y-values indexed by the sweep variable."""

    name: str
    points: dict = field(default_factory=dict)

    def add(self, x, y) -> None:
        self.points[x] = y

    def xs(self) -> list:
        return sorted(self.points)

    def ys(self) -> list:
        return [self.points[x] for x in self.xs()]

    def at(self, x):
        return self.points[x]


@dataclass
class ExperimentTable:
    """A figure's worth of series plus pretty-printing."""

    title: str
    x_label: str
    series: dict[str, Series] = field(default_factory=dict)

    def series_for(self, name: str) -> Series:
        if name not in self.series:
            self.series[name] = Series(name=name)
        return self.series[name]

    def add(self, name: str, x, y) -> None:
        self.series_for(name).add(x, y)

    def render(self, fmt: str = "{:.3f}") -> str:
        """Plain-text table: rows = sweep values, columns = series."""
        xs = sorted({x for s in self.series.values() for x in s.points})
        names = list(self.series)
        header = [self.x_label] + names
        rows = [header]
        for x in xs:
            row = [str(x)]
            for name in names:
                value = self.series[name].points.get(x)
                row.append("-" if value is None else fmt.format(value))
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def show(self, fmt: str = "{:.3f}") -> None:
        rendered = self.render(fmt=fmt)
        print()
        print(rendered)
        log_path = os.environ.get(TABLE_LOG_ENV)
        if log_path:
            with open(log_path, "a", encoding="utf-8") as handle:
                handle.write("\n" + rendered + "\n")


# ----------------------------------------------------------------------
# Shape checks
# ----------------------------------------------------------------------
def shape_ratio(numerator: Series, denominator: Series) -> dict:
    """Pointwise ratio of two series over their common sweep values."""
    common = sorted(set(numerator.points) & set(denominator.points))
    ratios = {}
    for x in common:
        bottom = denominator.points[x]
        ratios[x] = float("inf") if bottom == 0 else numerator.points[x] / bottom
    return ratios


def shape_nondecreasing(series: Series, slack: float = 0.0) -> bool:
    """True iff the series never drops by more than ``slack`` (relative)."""
    ys = series.ys()
    for previous, current in zip(ys, ys[1:]):
        if current < previous * (1.0 - slack):
            return False
    return True


def geometric_speedup(times: Sequence[float], baseline: float) -> list[float]:
    """Speedups of ``times`` relative to ``baseline``."""
    return [baseline / t if t > 0 else float("inf") for t in times]
