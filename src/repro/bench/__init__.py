"""Benchmark support: series containers, table printing, shape checks."""

from repro.bench.harness import (
    ExperimentTable,
    Series,
    format_seconds,
    geometric_speedup,
    shape_nondecreasing,
    shape_ratio,
    timed,
)
from repro.bench.datasets import bench_graph

__all__ = [
    "Series",
    "ExperimentTable",
    "timed",
    "format_seconds",
    "shape_ratio",
    "shape_nondecreasing",
    "geometric_speedup",
    "bench_graph",
]
