"""Cached, laptop-scale datasets for the benches.

The paper's sweeps run on 90k–1.8M-node crawls; the benches re-run them on
same-regime synthetic graphs small enough to finish in seconds.  Graphs are
cached per (family, size) so a bench module's multiple sweeps share one
instance — matching the paper, where all sweeps of one figure use one
dataset.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.generators import (
    dblp_like,
    facebook_like,
    flickr_like,
    random_social_graph,
)
from repro.graph.social_graph import SocialGraph

__all__ = ["bench_graph", "BENCH_SEED"]

#: One seed for every bench dataset: reruns are exactly reproducible.
BENCH_SEED = 20130901  # the arXiv v2 date of the paper

_FAMILIES = {
    "facebook": facebook_like,
    "dblp": dblp_like,
    "flickr": flickr_like,
    "random": random_social_graph,
}


@lru_cache(maxsize=32)
def bench_graph(family: str, n: int) -> SocialGraph:
    """Cached synthetic dataset of the given family and size.

    The compiled flat-array index is frozen here, as part of dataset
    preparation: solvers share one reusable index per graph (the paper's
    preprocessing step), so bench timings measure solving, not freezing.
    """
    try:
        factory = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown dataset family {family!r}; "
            f"available: {sorted(_FAMILIES)}"
        ) from None
    graph = factory(n, seed=BENCH_SEED)
    graph.compiled()
    return graph
