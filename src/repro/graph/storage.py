"""On-disk frozen format for :class:`~repro.graph.compiled.CompiledGraph`.

A compiled graph is immutable once frozen, so it can be compiled **once
ever** and then served out-of-core: :func:`save_compiled` writes the
flat arrays as raw little-endian files in a versioned directory, and
:func:`load_compiled` maps them back — by default via :mod:`mmap`, so a
loaded index costs O(1) private memory at any graph size and two
processes loading the same path share one page-cache copy of the data.

Directory layout (one directory per frozen graph)::

    <index>/
        manifest.json       # format, version, token, per-file metadata
        nodes.i64           # node ids (all-int graphs) ...
        nodes.json          # ... or JSON ids (string graphs)
        offsets.i64         # CSR row offsets          (n + 1 int64)
        targets.i64         # CSR column indices       (E int64)
        out_w.f64           # directed  b_u·τ_uv       (E float64)
        pair_w.f64          # combined pair weights    (E float64)
        weighted_interest.f64
        tightness_weight.f64
        potential.f64       # CBAS phase-1 start ranking
        component_sizes.i64 # connected-component size per node
        component_labels.i64

Every array file is raw little-endian int64 (``.i64``) or float64
(``.f64``) with no header; the manifest carries dtype, element count,
and a sha256 digest per file.  The *derived* arrays (``pair_w``,
``potential``, the component labels) are stored rather than recomputed
so an mmap load touches no pages beyond what the solve actually reads
— ``_rebuild_derived`` would fault in every byte.

The manifest's ``payload_token`` is **content-derived** (a digest over
the format header and every array's digest), so two processes that load
the same path agree on the token without coordination — the residency
protocol of :mod:`repro.parallel.residency` then lets a parent install
a multi-MB graph into a worker by sending the *path* (hundreds of
bytes) instead of the array pickle.  :func:`save_compiled` adopts the
token (and the directory as ``disk_home``) on the saved instance, so an
in-memory graph becomes path-installable the moment it is saved.

Integrity is typed: a missing or unparseable manifest raises
:class:`~repro.exceptions.GraphStorageError`, an unsupported manifest
version :class:`~repro.exceptions.StorageVersionError`, and a size or
digest mismatch :class:`~repro.exceptions.StorageChecksumError` — front
doors (the serving daemon's ``graph_path`` tenants, the CLI) turn these
into typed rejections instead of crashes.  Digest verification reads
every byte, so residency installs pass ``verify=False`` (sizes are
always checked) and leave full verification to explicit loads.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import sys
from array import array
from pathlib import Path
from typing import Union

from repro.exceptions import (
    GraphStorageError,
    StorageChecksumError,
    StorageVersionError,
)

__all__ = [
    "FORMAT",
    "VERSION",
    "MANIFEST_NAME",
    "save_compiled",
    "load_compiled",
]

FORMAT = "waso-compiled-graph"
VERSION = 1
MANIFEST_NAME = "manifest.json"

PathLike = Union[str, Path]

#: (attribute, manifest key, array typecode) in canonical order — the
#: token digest folds the files in exactly this sequence.
_ARRAYS = (
    ("offsets", "offsets", "q"),
    ("targets", "targets", "q"),
    ("out_w", "out_w", "d"),
    ("pair_w", "pair_w", "d"),
    ("weighted_interest", "weighted_interest", "d"),
    ("tightness_weight", "tightness_weight", "d"),
    ("potential", "potential", "d"),
    ("_component_sizes", "component_sizes", "q"),
    ("_component_labels", "component_labels", "q"),
)

_SUFFIX = {"q": ".i64", "d": ".f64"}
_ITEM_SIZE = 8  # both int64 and float64

_LITTLE_ENDIAN = sys.byteorder == "little"


def _to_bytes(values, typecode: str) -> bytes:
    """Raw little-endian bytes of ``values`` (native array round-trip)."""
    arr = array(typecode, values)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian platforms
        arr = array(typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _from_bytes(data: bytes, typecode: str) -> array:
    arr = array(typecode)
    arr.frombytes(data)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian platforms
        arr.byteswap()
    return arr


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _nodes_payload(nodes: list) -> "tuple[str, str, bytes]":
    """``(kind, filename, bytes)`` for the node-id file."""
    if all(type(node) is int for node in nodes):
        return "i64", "nodes.i64", _to_bytes(nodes, "q")
    if all(type(node) in (int, str) for node in nodes):
        data = json.dumps(nodes, separators=(",", ":")).encode("utf-8")
        return "json", "nodes.json", data
    raise GraphStorageError(
        "the on-disk index stores node ids as int64 or JSON; this graph "
        "has node ids of other types and cannot be saved"
    )


def save_compiled(compiled, path: PathLike) -> Path:
    """Write ``compiled`` to directory ``path`` and adopt its identity.

    Creates the directory (parents included), writes every array file,
    then the manifest last — a crashed save leaves a directory without a
    manifest, which :func:`load_compiled` rejects cleanly.  On success
    the instance's ``payload_token`` becomes the manifest's
    content-derived token and its ``disk_home`` the directory, making
    the graph path-installable into pool workers.  Returns the path.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    # Materialize the component labels before freezing to disk: an mmap
    # load must never run the O(V+E) BFS (or fault in the topology pages
    # it would touch).
    compiled.component_size_by_index()
    compiled.component_label_by_index()

    kind, nodes_file, nodes_data = _nodes_payload(compiled.nodes)
    (path / nodes_file).write_bytes(nodes_data)
    nodes_entry = {
        "kind": kind,
        "file": nodes_file,
        "count": len(compiled.nodes),
        "sha256": _digest(nodes_data),
    }

    hasher = hashlib.sha256()
    hasher.update(f"{FORMAT}:{VERSION}\n".encode("ascii"))
    hasher.update(nodes_entry["sha256"].encode("ascii"))
    arrays = {}
    for attr, key, typecode in _ARRAYS:
        data = _to_bytes(getattr(compiled, attr), typecode)
        filename = key + _SUFFIX[typecode]
        (path / filename).write_bytes(data)
        file_digest = _digest(data)
        arrays[key] = {
            "file": filename,
            "dtype": "int64" if typecode == "q" else "float64",
            "count": len(data) // _ITEM_SIZE,
            "sha256": file_digest,
        }
        hasher.update(file_digest.encode("ascii"))

    token = f"cg-disk-{hasher.hexdigest()[:16]}"
    generation = getattr(compiled, "generation", 0)
    if generation:
        # A patched (generation > 0) freeze persists its *current*
        # arrays; qualifying the token makes the generation part of the
        # saved identity (the content digest already differs, but the
        # suffix keeps provenance visible in ledgers and manifests).
        token = f"{token}-g{generation}"
    manifest = {
        "format": FORMAT,
        "version": VERSION,
        "payload_token": token,
        "nodes": nodes_entry,
        "arrays": arrays,
    }
    if generation:
        manifest["generation"] = generation
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    compiled.payload_token = token
    compiled.disk_home = str(path)
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        raise GraphStorageError(
            f"no compiled-graph index at {path}: cannot read "
            f"{MANIFEST_NAME} ({error})"
        ) from None
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise GraphStorageError(
            f"{manifest_path}: manifest is not valid JSON: {error}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise GraphStorageError(
            f"{manifest_path}: not a {FORMAT!r} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
        )
    if manifest.get("version") != VERSION:
        raise StorageVersionError(manifest.get("version"), VERSION)
    return manifest


def _check_entry(path: Path, entry: dict, verify: bool) -> Path:
    """Validate one manifest file entry; return its path."""
    file_path = path / entry["file"]
    try:
        size = file_path.stat().st_size
    except OSError:
        raise StorageChecksumError(
            f"{path}: array file {entry['file']!r} named by the manifest "
            "is missing"
        ) from None
    expected = entry["count"] * _ITEM_SIZE if "dtype" in entry else None
    if expected is not None and size != expected:
        raise StorageChecksumError(
            f"{file_path}: size {size}B does not match the manifest "
            f"({entry['count']} x {_ITEM_SIZE}B = {expected}B); the "
            "index is truncated or corrupted"
        )
    if verify:
        actual = _digest(file_path.read_bytes())
        if actual != entry["sha256"]:
            raise StorageChecksumError(
                f"{file_path}: sha256 {actual} does not match the "
                f"manifest's {entry['sha256']}; the index is corrupted"
            )
    return file_path


def _load_nodes(path: Path, entry: dict, verify: bool) -> list:
    file_path = _check_entry(path, entry, verify)
    data = file_path.read_bytes()
    if entry["kind"] == "i64":
        if len(data) != entry["count"] * _ITEM_SIZE:
            raise StorageChecksumError(
                f"{file_path}: node file size does not match the manifest"
            )
        return _from_bytes(data, "q").tolist()
    if entry["kind"] == "json":
        try:
            nodes = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StorageChecksumError(
                f"{file_path}: node file is not valid JSON: {error}"
            ) from None
        if len(nodes) != entry["count"]:
            raise StorageChecksumError(
                f"{file_path}: node count does not match the manifest"
            )
        return nodes
    raise GraphStorageError(
        f"{path}: unknown node-id encoding {entry['kind']!r}"
    )


def _map_array(file_path: Path, typecode: str, maps: list):
    """Read-only mmap view of one array file, cast to its element type."""
    with open(file_path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    maps.append(mapped)
    return memoryview(mapped).cast(typecode)


def load_compiled(path: PathLike, mmap: bool = True, verify: bool = True):
    """Load a saved index from directory ``path``.

    With ``mmap=True`` (the default on little-endian platforms) the
    arrays are read-only :func:`memoryview` casts over shared file
    mappings: loading is O(1) bytes, indexing yields exact native ints
    and floats (solves are bit-identical to the in-memory arrays), and
    the instance cannot be pickled — residency ships its *path* instead.
    ``mmap=False`` materializes plain lists (picklable, identical
    values).  ``verify=False`` skips the sha256 pass (file sizes are
    still checked) — the worker-side path-install uses it, since the
    parent verified the index when it first loaded it.
    """
    path = Path(path)
    if path.name == MANIFEST_NAME:
        path = path.parent
    manifest = _read_manifest(path)
    use_mmap = bool(mmap) and _LITTLE_ENDIAN

    nodes = _load_nodes(path, manifest["nodes"], verify)
    maps: list = []
    values = {}
    try:
        for attr, key, typecode in _ARRAYS:
            try:
                entry = manifest["arrays"][key]
            except KeyError:
                raise GraphStorageError(
                    f"{path}: manifest lists no {key!r} array"
                ) from None
            file_path = _check_entry(path, entry, verify)
            if use_mmap:
                values[attr] = _map_array(file_path, typecode, maps)
            else:
                values[attr] = _from_bytes(
                    file_path.read_bytes(), typecode
                ).tolist()
    except BaseException:
        # Drop the cast views before closing their mappings: a view
        # still exported makes ``close()`` raise BufferError, which
        # would mask the typed storage error being propagated.
        values.clear()
        for mapped in maps:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
        raise

    from repro.graph.compiled import ArrayBackedGraph, CompiledGraph

    compiled = CompiledGraph.__new__(CompiledGraph)
    compiled.nodes = nodes
    compiled.index_of = {node: index for index, node in enumerate(nodes)}
    for attr, _, _ in _ARRAYS:
        setattr(compiled, attr, values[attr])
    compiled.payload_token = manifest["payload_token"]
    compiled.disk_home = str(path)
    # A generation-qualified save restores its epoch; the replay log
    # never travels through disk, so patching resumes from here.
    compiled.generation = manifest.get("generation", 0)
    compiled._delta_log = []
    compiled._log_from = compiled.generation
    compiled._mmaps = tuple(maps)
    compiled._row_targets = None
    compiled._row_edges = None
    compiled._row_id_edges = None
    compiled.graph = ArrayBackedGraph(compiled)
    return compiled
