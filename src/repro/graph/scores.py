"""Score models for interest and social tightness.

The paper grounds its experiment setup in two published models (§5.1):

* **Interest scores** follow a power law with exponent ``β = 2.5``
  (Clauset, Shalizi & Newman [5]).  :class:`PowerLawInterestModel` samples
  from a Pareto-type distribution with that exponent and normalizes to
  ``(0, 1]``.
* **Social tightness scores** follow the common-neighbour proximity model of
  Chaoji et al. [3]: the more mutual friends two people share, the tighter
  the link.  :class:`CommonNeighbourTightness` implements both the symmetric
  variant and an asymmetric one in which the score is normalized by each
  endpoint's own degree (a popular person feels a given mutual friendship
  less strongly than a less-connected one) — exercising the paper's remark
  that ``τ_ij`` need not equal ``τ_ji``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence

from repro.graph.social_graph import NodeId, SocialGraph

__all__ = [
    "PowerLawInterestModel",
    "CommonNeighbourTightness",
    "normalize_scores",
    "power_law_sample",
]


def power_law_sample(
    rng: random.Random, beta: float = 2.5, x_min: float = 1.0
) -> float:
    """Draw one sample from a continuous power law ``p(x) ∝ x^(−β)``.

    Uses the standard inverse-CDF transform
    ``x = x_min · (1 − u)^(−1/(β−1))``.
    """
    if beta <= 1.0:
        raise ValueError(f"power-law exponent must exceed 1, got {beta}")
    u = rng.random()
    return x_min * (1.0 - u) ** (-1.0 / (beta - 1.0))


def normalize_scores(values: Mapping) -> dict:
    """Scale a mapping of non-negative scores so the maximum becomes 1.0.

    The paper normalizes both score families before use (§5.1).  An
    all-zero input is returned unchanged.
    """
    if not values:
        return {}
    peak = max(values.values())
    if peak <= 0:
        return dict(values)
    return {key: value / peak for key, value in values.items()}


class PowerLawInterestModel:
    """Power-law interest score sampler (β = 2.5 by default, per [5]).

    Samples are truncated at ``cap`` (in units of ``x_min``) to keep a
    handful of extreme draws from dominating the normalized scores, then
    scaled into ``(0, 1]``.
    """

    def __init__(self, beta: float = 2.5, cap: float = 100.0) -> None:
        if beta <= 1.0:
            raise ValueError(f"power-law exponent must exceed 1, got {beta}")
        if cap <= 1.0:
            raise ValueError(f"cap must exceed 1, got {cap}")
        self.beta = beta
        self.cap = cap

    def sample(self, count: int, rng: random.Random) -> list[float]:
        """Return ``count`` normalized interest scores in ``(0, 1]``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        raw = [
            min(power_law_sample(rng, self.beta), self.cap)
            for _ in range(count)
        ]
        peak = max(raw, default=1.0)
        return [value / peak for value in raw]

    def assign(self, graph: SocialGraph, rng: random.Random) -> None:
        """Assign sampled interest scores to every node of ``graph``."""
        nodes = graph.node_list()
        for node, score in zip(nodes, self.sample(len(nodes), rng)):
            graph.set_interest(node, score)


class CommonNeighbourTightness:
    """Common-neighbour social tightness model (per [3]).

    For an edge ``{u, v}`` with ``c`` common neighbours the raw score is
    ``c + 1`` (the ``+1`` keeps leaf friendships above zero).  In the
    symmetric mode scores are normalized by the global maximum; in the
    asymmetric mode each direction is normalized by the endpoint's degree:
    ``τ_uv = (c + 1) / deg(u)``, capped at 1.

    Parameters
    ----------
    asymmetric:
        Use the per-endpoint normalization, producing ``τ_uv ≠ τ_vu``.
    jitter:
        Optional multiplicative noise amplitude in ``[0, 1)``; each score is
        multiplied by ``1 + jitter·(2u − 1)`` with ``u ~ U(0,1)`` so that
        ties are broken, mimicking the user fine-tuning the paper allows.
    """

    def __init__(self, asymmetric: bool = False, jitter: float = 0.0) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must lie in [0, 1), got {jitter}")
        self.asymmetric = asymmetric
        self.jitter = jitter

    def assign(self, graph: SocialGraph, rng: random.Random) -> None:
        """Compute and install tightness scores on every edge of ``graph``."""
        edges = list(graph.edges())
        common_counts = {
            (u, v): self._common_neighbours(graph, u, v) for u, v in edges
        }
        if self.asymmetric:
            for (u, v), common in common_counts.items():
                raw = common + 1.0
                tau_uv = min(1.0, raw / max(1, graph.degree(u)))
                tau_vu = min(1.0, raw / max(1, graph.degree(v)))
                graph.set_tightness(u, v, self._jittered(tau_uv, rng))
                graph.set_tightness(v, u, self._jittered(tau_vu, rng))
        else:
            peak = max(
                (common + 1.0 for common in common_counts.values()),
                default=1.0,
            )
            for (u, v), common in common_counts.items():
                tau = (common + 1.0) / peak
                graph.set_tightness(u, v, self._jittered(tau, rng))
                graph.set_tightness(v, u, self._jittered(tau, rng))

    def _jittered(self, value: float, rng: random.Random) -> float:
        if self.jitter == 0.0:
            return value
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, min(1.0, value * factor))

    @staticmethod
    def _common_neighbours(graph: SocialGraph, u: NodeId, v: NodeId) -> int:
        neighbours_u = set(graph.neighbors(u))
        neighbours_v = set(graph.neighbors(v))
        common = neighbours_u & neighbours_v
        common.discard(u)
        common.discard(v)
        return len(common)


def empirical_power_law_exponent(values: Sequence[float]) -> float:
    """Hill estimator of a power-law exponent for sanity-checking samples.

    ``β̂ = 1 + n / Σ ln(x_i / x_min)`` over the positive values.  Used by
    tests to confirm the interest sampler really produces β ≈ 2.5.
    """
    positives = [v for v in values if v > 0]
    if len(positives) < 2:
        raise ValueError("need at least two positive values")
    x_min = min(positives)
    total = sum(math.log(v / x_min) for v in positives)
    if total == 0:
        raise ValueError("all values identical; exponent undefined")
    return 1.0 + len(positives) / total


def interest_map(graph: SocialGraph) -> dict[NodeId, float]:
    """Convenience: snapshot of all interest scores."""
    return {node: graph.interest(node) for node in graph.nodes()}


def tightness_map(graph: SocialGraph) -> dict[tuple[NodeId, NodeId], float]:
    """Convenience: snapshot of all directed tightness scores."""
    scores: dict[tuple[NodeId, NodeId], float] = {}
    for u, v in graph.edges():
        scores[(u, v)] = graph.tightness(u, v)
        scores[(v, u)] = graph.tightness(v, u)
    return scores
