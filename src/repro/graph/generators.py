"""Synthetic social networks standing in for the paper's datasets.

The paper evaluates on three crawls that are not redistributable (and far
too large for a laptop-scale reproduction):

========== ============ ============ ==================
dataset     nodes        edges        average degree
========== ============ ============ ==================
Facebook    90,269       ~1.18M       26.1
DBLP        511,163      1,871,070    3.66 (sparse)
Flickr      1,846,198    22,613,981   ~24.5
========== ============ ============ ==================

What the paper's comparisons rely on is not the identity of the graphs but
their *regime*:

* **community structure** — real social networks decompose into friend
  circles of varying size and cohesion; the willingness of a group is
  dominated by how well it fits inside (or across) such circles;
* **heterogeneous quality** — interest in a given activity is homophilous
  (the paper's own citation [17] infers interests from friends), so circle
  quality varies; a greedy search anchored at the single highest-interest
  person explores one region only, which is exactly the failure mode the
  paper's Fig. 1 illustrates;
* the published **score models** — power-law interest with ``β = 2.5``
  ([5]) and common-neighbour tightness ([3]).  Tightness uses the
  per-endpoint normalization ``τ_uv = (common + 1)/deg(u)`` (the fraction
  of ``u``'s friendships inside the circle), which is both the natural
  reading of a *proximity* score and the source of asymmetric ``τ`` the
  problem statement allows.

:func:`community_social_graph` generates this regime at any size;
``facebook_like`` / ``dblp_like`` / ``flickr_like`` are presets whose
average degrees match the three crawls.  See DESIGN.md §3 for the full
substitution rationale.

Also provided: deterministic toy graphs, and reconstructions of the
paper's illustrative Figure 1 / Figure 3 graphs used by the worked
examples and tests.
"""

from __future__ import annotations

import math
import random
from typing import Optional

import networkx as nx

from repro.graph.scores import CommonNeighbourTightness, PowerLawInterestModel
from repro.graph.scores import power_law_sample
from repro.graph.social_graph import SocialGraph

__all__ = [
    "community_social_graph",
    "facebook_like",
    "dblp_like",
    "flickr_like",
    "random_social_graph",
    "grid_graph",
    "ring_graph",
    "figure1_graph",
    "figure3_graph",
]


def community_social_graph(
    n: int,
    mean_community_size: float = 18.0,
    within_degree: float = 11.0,
    between_degree: float = 12.0,
    cohesion_spread: float = 0.6,
    interest_spread: float = 0.3,
    beta: float = 2.5,
    seed: Optional[int] = None,
    asymmetric: bool = True,
    jitter: float = 0.1,
) -> SocialGraph:
    """Community-structured social network with paper-model scores.

    Construction:

    1. community sizes are drawn log-normally around
       ``mean_community_size`` (friend circles vary in size);
    2. within each community, Erdős–Rényi edges give an expected internal
       degree of ``within_degree`` scaled by a per-community log-normal
       *cohesion* factor of spread ``cohesion_spread`` — some circles are
       near-cliques, others loose; ``between_degree·n/2`` random bridges
       connect distinct communities;
    3. interest scores are *individual* power-law draws (exponent
       ``beta``) scaled by a per-community log-normal factor of spread
       ``interest_spread`` (interest homophily), then normalized to max 1;
    4. tightness scores come from the common-neighbour model
       (:class:`~repro.graph.scores.CommonNeighbourTightness`), by default
       in its asymmetric per-endpoint normalization.

    The cohesion heterogeneity is what separates the algorithms the way
    the paper reports: the best groups live in the most cohesive circles,
    which multi-start budget-allocated search finds, while a greedy run
    anchored at the single highest-interest person (an *individual*
    extreme, uncorrelated with circle cohesion) explores only its own
    region — the paper's Fig. 1 trap at scale.

    The result is connected with probability ~1 for the preset densities;
    callers needing a guarantee should check ``connected_components()``.
    """
    if n < 10:
        raise ValueError(f"community_social_graph needs n >= 10, got {n}")
    if mean_community_size < 4:
        raise ValueError("mean_community_size must be at least 4")
    if within_degree <= 0 or between_degree < 0:
        raise ValueError("degrees must be positive / non-negative")
    rng = random.Random(seed)

    sizes: list[int] = []
    while sum(sizes) < n:
        sizes.append(
            max(4, int(rng.lognormvariate(math.log(mean_community_size), 0.5)))
        )
    sizes[-1] = max(4, sizes[-1] - (sum(sizes) - n))

    skeleton = nx.Graph()
    communities: list[list[int]] = []
    next_id = 0
    for size in sizes:
        members = list(range(next_id, next_id + size))
        next_id += size
        communities.append(members)
        cohesion = rng.lognormvariate(0.0, cohesion_spread)
        p_in = min(1.0, within_degree * cohesion / max(1, size - 1))
        for i, u in enumerate(members):
            skeleton.add_node(u)
            for v in members[i + 1:]:
                if rng.random() < p_in:
                    skeleton.add_edge(u, v)

    total = next_id
    if len(communities) > 1:
        for _ in range(int(between_degree * total / 2)):
            a, b = rng.sample(range(len(communities)), 2)
            skeleton.add_edge(
                rng.choice(communities[a]), rng.choice(communities[b])
            )

    graph = SocialGraph()
    for node in skeleton.nodes():
        graph.add_node(node)
    for u, v in skeleton.edges():
        graph.add_edge(u, v, 1.0)

    raw_scores: list[tuple[int, float]] = []
    for members in communities:
        factor = rng.lognormvariate(0.0, interest_spread)
        for node in members:
            individual = min(power_law_sample(rng, beta), 100.0)
            raw_scores.append((node, factor * individual))
    peak = max(value for _, value in raw_scores)
    for node, value in raw_scores:
        graph.set_interest(node, value / peak)

    CommonNeighbourTightness(asymmetric=asymmetric, jitter=jitter).assign(
        graph, rng
    )
    return graph


def facebook_like(n: int = 1000, seed: Optional[int] = None) -> SocialGraph:
    """Dense, clustered graph in the regime of the Facebook New Orleans
    crawl (average degree ≈ 26.1): friend circles of ~20 people, cohesive
    inside, with plentiful bridges."""
    if n < 30:
        raise ValueError(f"facebook_like needs n >= 30, got {n}")
    return community_social_graph(
        n,
        mean_community_size=18.0,
        within_degree=11.0,
        between_degree=12.0,
        seed=seed,
    )


def dblp_like(n: int = 1000, seed: Optional[int] = None) -> SocialGraph:
    """Sparse collaboration-style graph in the regime of the DBLP crawl
    (average degree ≈ 3.66): small co-author groups, few bridges.  The
    sparsity slows frontier growth — the property the paper's Fig. 7
    discussion of RGreedy's cost hinges on."""
    if n < 20:
        raise ValueError(f"dblp_like needs n >= 20, got {n}")
    return community_social_graph(
        n,
        mean_community_size=7.0,
        within_degree=2.6,
        between_degree=1.2,
        seed=seed,
    )


def flickr_like(n: int = 1000, seed: Optional[int] = None) -> SocialGraph:
    """Dense heavy-tail graph in the regime of the Flickr crawl (average
    degree ≈ 24.5, larger and more skewed interest groups than Facebook).
    The paper notes Flickr behaves like Facebook because their densities
    are similar."""
    if n < 40:
        raise ValueError(f"flickr_like needs n >= 40, got {n}")
    return community_social_graph(
        n,
        mean_community_size=30.0,
        within_degree=13.0,
        between_degree=10.0,
        interest_spread=0.5,
        seed=seed,
    )


def _with_scores(
    skeleton: nx.Graph,
    seed: Optional[int],
    beta: float,
    asymmetric: bool,
    jitter: float,
) -> SocialGraph:
    """Attach paper-model scores to a bare networkx skeleton."""
    rng = random.Random(seed)
    graph = SocialGraph()
    for node in skeleton.nodes():
        graph.add_node(node)
    for u, v in skeleton.edges():
        graph.add_edge(u, v, 1.0)
    PowerLawInterestModel(beta=beta).assign(graph, rng)
    CommonNeighbourTightness(asymmetric=asymmetric, jitter=jitter).assign(
        graph, rng
    )
    return graph


def random_social_graph(
    n: int,
    average_degree: float = 6.0,
    seed: Optional[int] = None,
    beta: float = 2.5,
    asymmetric: bool = False,
    jitter: float = 0.0,
) -> SocialGraph:
    """Erdős–Rényi graph with paper-model scores.

    Handy for small IP ground-truth experiments (Fig. 9) and property
    tests where community structure does not matter.
    """
    if n < 2:
        raise ValueError(f"random_social_graph needs n >= 2, got {n}")
    p = min(1.0, average_degree / max(1, n - 1))
    skeleton = nx.gnp_random_graph(n, p, seed=seed)
    return _with_scores(skeleton, seed, beta, asymmetric, jitter)


def grid_graph(
    side: int,
    seed: Optional[int] = None,
    beta: float = 2.5,
) -> SocialGraph:
    """``side × side`` grid with power-law interest and unit tightness.

    Deterministic topology — useful when a test needs a known structure.
    """
    skeleton = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(side, side)
    )
    return _with_scores(skeleton, seed, beta, asymmetric=False, jitter=0.0)


def ring_graph(
    n: int,
    seed: Optional[int] = None,
    beta: float = 2.5,
) -> SocialGraph:
    """Cycle graph with power-law interest and unit tightness."""
    skeleton = nx.cycle_graph(n)
    return _with_scores(skeleton, seed, beta, asymmetric=False, jitter=0.0)


def _paper_toy(
    interests: dict[int, float],
    display_edges: dict[tuple[int, int], float],
) -> SocialGraph:
    """Build a toy graph from *display* weights.

    The paper's illustrations are symmetric and report one number per edge —
    the total pair contribution ``τ_ij + τ_ji``.  We therefore install
    ``τ = weight / 2`` per direction so Eq. (1) reproduces the printed
    willingness values exactly.
    """
    graph = SocialGraph()
    for node, interest in interests.items():
        graph.add_node(node, interest=interest)
    for (u, v), weight in display_edges.items():
        graph.add_edge(u, v, weight / 2.0)
    return graph


def figure1_graph() -> SocialGraph:
    """The greedy counterexample of the paper's Figure 1 (k = 3).

    The arXiv text extraction garbles the figure's numerals, so the scores
    below are a reconstruction that reproduces the narrated run *exactly*:

    * greedy starts at ``v1`` (maximum interest), adds ``v2``, then picks
      ``v3`` whose willingness increment is 10, ending at W = 27;
    * the true optimum is ``{v2, v3, v4}`` with W = 30.
    """
    interests = {1: 8.0, 2: 4.0, 3: 4.0, 4: 4.0}
    display_edges = {
        (1, 2): 5.0,
        (2, 3): 6.0,
        (2, 4): 5.0,
        (3, 4): 7.0,
    }
    return _paper_toy(interests, display_edges)


def figure3_graph() -> SocialGraph:
    """The 10-node walk-through graph of the paper's Figure 3 (k = 5).

    Reconstructed from every number the running text states (the figure
    itself is garbled in the arXiv extraction):

    * ``η_3 = 0.8``; ``v3``'s incident display weights are
      ``{0.6, 0.5, 0.9, 1.0, 0.4}`` and its start-node potential is 4.2;
    * ``η_6 = 0.4`` with display weight 0.9 on edge ``{v3, v6}`` so that
      ``W({v3, v6}) = 2.1``;
    * ``v3``'s neighbourhood is ``{v1, v2, v4, v5, v6}`` and adding ``v6``
      brings ``{v7, v8, v10}`` into the frontier;
    * ``η_10 = 0.9`` with start-node potential 4.2 (display weights
      ``{0.6, 1.0, 0.9, 0.8}``);
    * ``v3`` and ``v10`` are the two *highest-potential* nodes, so CBAS
      phase 1 selects exactly them (every other node stays below 4.2);
    * the global optimum for k = 5 is ``{v3, v4, v5, v6, v7}`` with
      willingness 9.7 — the value Example 2 reports for CBAS-ND.
    """
    interests = {
        1: 0.2,
        2: 0.3,
        3: 0.8,
        4: 0.5,
        5: 1.0,
        6: 0.4,
        7: 0.9,
        8: 0.3,
        9: 0.2,
        10: 0.9,
    }
    display_edges = {
        (1, 2): 0.2,
        (1, 3): 0.5,
        (2, 3): 0.4,
        (3, 4): 1.0,
        (3, 5): 0.6,
        (3, 6): 0.9,
        (4, 5): 0.9,
        (4, 7): 0.5,
        (5, 6): 0.8,
        (5, 7): 0.8,
        (6, 7): 0.6,
        (6, 8): 0.3,
        (6, 10): 0.8,
        (7, 10): 0.6,
        (8, 9): 0.3,
        (8, 10): 1.0,
        (9, 10): 0.9,
    }
    return _paper_toy(interests, display_edges)
