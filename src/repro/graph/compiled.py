"""Compiled flat-array graph index — the performance architecture.

Performance architecture
------------------------
Every randomized WASO solver spends essentially all of its time in two
kernels: the frontier expansion of :class:`~repro.algorithms.sampling.
ExpansionSampler` and the incremental willingness delta of the evaluator.
On the dict-of-dict :class:`~repro.graph.social_graph.SocialGraph` those
kernels pay, per visited neighbour, two hash probes plus a *reverse*
inner-dict probe (``neighbor_tightness(neighbour)[node]``) to pick up the
opposite-direction tightness.  The access pattern, however, is completely
regular: scan one node's incident edges, test membership, accumulate a
per-edge constant.

:class:`CompiledGraph` specializes the data layout to that access pattern.
A one-shot ``freeze`` of a :class:`SocialGraph` produces int-indexed CSR
arrays:

* ``offsets`` / ``targets`` — the adjacency structure.  The directed slot
  range of node ``i`` is ``offsets[i]:offsets[i + 1]``, and the slot order
  is exactly the adjacency-dict insertion order, so array scans visit
  neighbours in the same sequence (and produce bit-identical floating-point
  sums) as the dict-based reference path;
* ``weighted_interest`` (``a_i·η_i``) and ``tightness_weight`` (``b_i``) —
  the per-node constants of the Eq. (1) objective with footnote-7 weights;
* ``pair_w`` — the per-edge *combined* pair weight ``b_u·τ_uv + b_v·τ_vu``.
  With it the willingness delta of adding node ``u`` to a group ``S``
  collapses to ``a_u·η_u + Σ_{slots e of u : targets[e] ∈ S} pair_w[e]`` —
  a single array scan against a stamp/mask membership test, with no
  reverse probe at all;
* ``out_w`` — the directed contribution ``b_u·τ_uv`` (used by full
  re-evaluation, which mirrors the reference accumulation order);
* ``potential`` — the CBAS phase-1 start-node ranking score
  ``a_i·η_i + Σ pair_w``, precomputed so ranking is an array lookup.

The index is built in one pass over the adjacency dicts, is reused across
repeated solves and re-planning rounds on the same graph (it is cached on
the graph keyed by a mutation counter — see ``SocialGraph.compiled()``),
and is plain-picklable so :mod:`repro.parallel.pool` workers receive the
frozen arrays instead of re-hashing the dicts.

The dict-based :class:`~repro.core.willingness.WillingnessEvaluator`
remains the reference implementation; the compiled path is engineered to
reproduce its results bit-for-bit (same neighbour order, same
floating-point expression per term) so seeded solver runs are identical on
both engines — differential tests in ``tests/test_compiled.py`` hold that
line.
"""

from __future__ import annotations

from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["CompiledGraph"]


class CompiledGraph:
    """One-shot frozen CSR view of a :class:`SocialGraph`.

    Build with :meth:`from_graph` (or the cached ``graph.compiled()`` /
    ``problem.compiled()`` accessors).  The instance is immutable by
    convention: mutating the source graph invalidates the graph-side cache
    and a fresh freeze is produced on the next access.
    """

    __slots__ = (
        "graph",
        "nodes",
        "index_of",
        "offsets",
        "targets",
        "out_w",
        "pair_w",
        "weighted_interest",
        "tightness_weight",
        "potential",
        "row_targets",
        "row_edges",
        "row_id_edges",
        "_component_sizes",
    )

    def __init__(
        self,
        graph: SocialGraph,
        nodes: list,
        index_of: dict,
        offsets: list,
        targets: list,
        out_w: list,
        pair_w: list,
        weighted_interest: list,
        tightness_weight: list,
        potential: list,
    ) -> None:
        self.graph = graph
        self.nodes = nodes
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.out_w = out_w
        self.pair_w = pair_w
        self.weighted_interest = weighted_interest
        self.tightness_weight = tightness_weight
        self.potential = potential
        self._component_sizes: "list[int] | None" = None
        self._build_row_views()

    def _build_row_views(self) -> None:
        """Per-row views of the CSR slots.

        Direct iteration over a prebuilt list/tuple is the cheapest scan
        CPython offers, so the sampler's hot kernels use these instead of
        offsets/targets index arithmetic.  ``row_edges`` interleaves
        ``(target, pair_w)`` so the merged delta-and-extend pass touches
        each slot exactly once.
        """
        offsets, targets, pair_w = self.offsets, self.targets, self.pair_w
        self.row_targets = [
            targets[offsets[i] : offsets[i + 1]]
            for i in range(len(self.nodes))
        ]
        self.row_edges = [
            tuple(
                zip(row_t, pair_w[offsets[i] : offsets[i + 1]])
            )
            for i, row_t in enumerate(self.row_targets)
        ]
        # Id-space twin of row_edges for callers whose groups are node-id
        # sets (the evaluator API): no per-slot index→id conversion.
        nodes = self.nodes
        self.row_id_edges = [
            tuple((nodes[target], pair) for target, pair in row)
            for row in self.row_edges
        ]

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: SocialGraph) -> "CompiledGraph":
        """Freeze ``graph`` into flat arrays (one pass over the adjacency)."""
        nodes = list(graph.nodes())
        index_of = {node: index for index, node in enumerate(nodes)}
        n = len(nodes)

        weighted_interest = [0.0] * n
        tightness_weight = [0.0] * n
        adjacencies = []
        for index, node in enumerate(nodes):
            a, b = graph.weights(node)
            weighted_interest[index] = a * graph.interest(node)
            tightness_weight[index] = b
            adjacencies.append(graph.neighbor_tightness(node))

        offsets = [0] * (n + 1)
        targets: list[int] = []
        out_w: list[float] = []
        pair_w: list[float] = []
        potential = [0.0] * n
        for index, node in enumerate(nodes):
            b_node = tightness_weight[index]
            total = weighted_interest[index]
            for neighbour, tau in adjacencies[index].items():
                other = index_of[neighbour]
                outgoing = b_node * tau
                # Same expression (and evaluation order) as the reference
                # evaluator's cached pair weight: bit-identical sums.
                combined = outgoing + tightness_weight[other] * (
                    adjacencies[other][node]
                )
                targets.append(other)
                out_w.append(outgoing)
                pair_w.append(combined)
                total += combined
            offsets[index + 1] = len(targets)
            potential[index] = total

        return cls(
            graph=graph,
            nodes=nodes,
            index_of=index_of,
            offsets=offsets,
            targets=targets,
            out_w=out_w,
            pair_w=pair_w,
            weighted_interest=weighted_interest,
            tightness_weight=tightness_weight,
            potential=potential,
        )

    # ------------------------------------------------------------------
    @property
    def number_of_nodes(self) -> int:
        return len(self.nodes)

    @property
    def number_of_directed_slots(self) -> int:
        return len(self.targets)

    def neighbor_slots(self, index: int) -> range:
        """Directed slot range of node ``index`` (CSR row)."""
        return range(self.offsets[index], self.offsets[index + 1])

    def degree(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def component_size_by_index(self) -> list[int]:
        """Connected-component size of every node, indexed by int id.

        Computed lazily with one index-space BFS pass and cached; CBAS
        uses it to skip start nodes whose component cannot hold a
        ``k``-group without re-deriving components per solve.
        """
        sizes = self._component_sizes
        if sizes is not None:
            return sizes
        n = len(self.nodes)
        sizes = [0] * n
        label = [-1] * n
        row_targets = self.row_targets
        for root in range(n):
            if label[root] != -1:
                continue
            stack = [root]
            label[root] = root
            component = [root]
            while stack:
                current = stack.pop()
                for other in row_targets[current]:
                    if label[other] == -1:
                        label[other] = root
                        stack.append(other)
                        component.append(other)
            size = len(component)
            for index in component:
                sizes[index] = size
        self._component_sizes = sizes
        return sizes

    # ------------------------------------------------------------------
    # Pickle support: __slots__ classes need explicit state handling.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Row views are derivable from the flat arrays; keep the payload
        # shipped to pool workers lean.
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name
            not in ("row_targets", "row_edges", "row_id_edges")
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._build_row_views()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph(nodes={len(self.nodes)}, "
            f"directed_slots={len(self.targets)})"
        )

    def index(self, node: NodeId) -> int:
        """Int index of ``node`` (KeyError when unknown)."""
        return self.index_of[node]
