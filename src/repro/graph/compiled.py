"""Compiled flat-array graph index — the performance architecture.

Performance architecture
------------------------
Every randomized WASO solver spends essentially all of its time in two
kernels: the frontier expansion of :class:`~repro.algorithms.sampling.
ExpansionSampler` and the incremental willingness delta of the evaluator.
On the dict-of-dict :class:`~repro.graph.social_graph.SocialGraph` those
kernels pay, per visited neighbour, two hash probes plus a *reverse*
inner-dict probe (``neighbor_tightness(neighbour)[node]``) to pick up the
opposite-direction tightness.  The access pattern, however, is completely
regular: scan one node's incident edges, test membership, accumulate a
per-edge constant.

:class:`CompiledGraph` specializes the data layout to that access pattern.
A one-shot ``freeze`` of a :class:`SocialGraph` produces int-indexed CSR
arrays:

* ``offsets`` / ``targets`` — the adjacency structure.  The directed slot
  range of node ``i`` is ``offsets[i]:offsets[i + 1]``, and the slot order
  is exactly the adjacency-dict insertion order, so array scans visit
  neighbours in the same sequence (and produce bit-identical floating-point
  sums) as the dict-based reference path;
* ``weighted_interest`` (``a_i·η_i``) and ``tightness_weight`` (``b_i``) —
  the per-node constants of the Eq. (1) objective with footnote-7 weights;
* ``pair_w`` — the per-edge *combined* pair weight ``b_u·τ_uv + b_v·τ_vu``.
  With it the willingness delta of adding node ``u`` to a group ``S``
  collapses to ``a_u·η_u + Σ_{slots e of u : targets[e] ∈ S} pair_w[e]`` —
  a single array scan against a stamp/mask membership test, with no
  reverse probe at all;
* ``out_w`` — the directed contribution ``b_u·τ_uv`` (used by full
  re-evaluation, which mirrors the reference accumulation order);
* ``potential`` — the CBAS phase-1 start-node ranking score
  ``a_i·η_i + Σ pair_w``, precomputed so ranking is an array lookup.

The index is built in one pass over the adjacency dicts, is reused across
repeated solves and re-planning rounds on the same graph (it is cached on
the graph keyed by a mutation counter — see ``SocialGraph.compiled()``),
and is plain-picklable so :mod:`repro.parallel.pool` workers receive the
frozen arrays instead of re-hashing the dicts.

The dict-based :class:`~repro.core.willingness.WillingnessEvaluator`
remains the reference implementation; the compiled path is engineered to
reproduce its results bit-for-bit (same neighbour order, same
floating-point expression per term) so seeded solver runs are identical on
both engines — differential tests in ``tests/test_compiled.py`` hold that
line.

Streaming mutation
------------------
A freeze is no longer one-shot: :meth:`CompiledGraph.apply_deltas`
patches the CSR arrays, pair weights, potentials, and cached component
labels in place for edge inserts/deletes, weight updates, and node adds,
bumping an integer :attr:`CompiledGraph.generation` instead of minting a
new ``payload_token``.  Each applied batch is kept in a bounded replay
log so resident pool workers holding an older generation can be brought
current with an O(|delta|) ``("graph_patch", ...)`` wire message instead
of a full re-install (see :mod:`repro.parallel`).  Every patch recipe
reproduces, bit-for-bit, the arrays a fresh :meth:`from_graph` of the
mutated source would build — ``tests/test_graph_deltas.py`` holds that
line on both engines.
"""

from __future__ import annotations

import itertools
import os

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["CompiledGraph", "ArrayBackedGraph"]

#: The irreducible pickled state: everything else (``index_of``,
#: ``pair_w``, ``potential``, the row views) is rebuilt bit-identically
#: by ``__setstate__``, so worker payloads ship roughly half the floats.
_PICKLED_SLOTS = (
    "graph",
    "nodes",
    "offsets",
    "targets",
    "out_w",
    "weighted_interest",
    "tightness_weight",
    "payload_token",
    "_component_sizes",
    "_component_labels",
)

#: Source of :attr:`CompiledGraph.payload_token` values — one fresh token
#: per freeze, namespaced by pid so tokens minted by different processes
#: never collide.
_PAYLOAD_COUNTER = itertools.count()

#: Replayable delta batches kept per graph.  The log exists so resident
#: workers a few generations behind can be patched instead of re-shipped;
#: older batches are compacted away (a worker further behind than the log
#: reaches is demoted to a full re-install by the residency ledger), which
#: bounds both parent memory and the worst-case patch message.
_DELTA_LOG_LIMIT = 64


def _new_payload_token() -> str:
    # Fixed-width fields: the token rides in every resident-pool wire
    # spec, and the tier-2 payload-byte gates compare those pickles
    # byte-exactly against a committed baseline — a token whose length
    # varied with the PID's digit count made "deterministic" payload
    # sizes depend on which PID the bench process happened to get.
    # (7 digits covers Linux's largest default pid_max, 4194304.)
    return f"cg-{os.getpid():07d}-{next(_PAYLOAD_COUNTER):05d}"


class CompiledGraph:
    """Frozen CSR view of a :class:`SocialGraph`, patchable in place.

    Build with :meth:`from_graph` (or the cached ``graph.compiled()`` /
    ``problem.compiled()`` accessors).  Out-of-band mutation of the
    source graph still invalidates the graph-side cache and produces a
    fresh freeze on next access; routing the same mutations through
    :meth:`apply_deltas` instead patches this instance's arrays
    incrementally and bumps :attr:`generation`, keeping the
    ``payload_token`` (and therefore every resident-pool cache entry
    keyed by it) alive.
    """

    __slots__ = (
        "graph",
        "nodes",
        "index_of",
        "offsets",
        "targets",
        "out_w",
        "pair_w",
        "weighted_interest",
        "tightness_weight",
        "potential",
        "payload_token",
        "disk_home",
        "generation",
        "_delta_log",
        "_log_from",
        "_mmaps",
        "_row_targets",
        "_row_edges",
        "_row_id_edges",
        "_component_sizes",
        "_component_labels",
    )

    def __init__(
        self,
        graph: SocialGraph,
        nodes: list,
        index_of: dict,
        offsets: list,
        targets: list,
        out_w: list,
        pair_w: list,
        weighted_interest: list,
        tightness_weight: list,
        potential: list,
    ) -> None:
        self.graph = graph
        self.nodes = nodes
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.out_w = out_w
        self.pair_w = pair_w
        self.weighted_interest = weighted_interest
        self.tightness_weight = tightness_weight
        self.potential = potential
        #: Identity tag of this freeze.  A re-freeze (graph mutation)
        #: mints a new token while pickling, :meth:`detach`, and worker
        #: unpickling all preserve it — so a stage-pool worker can tell
        #: "the arrays already resident here" from "a new graph I must be
        #: sent" without comparing the arrays themselves.
        self.payload_token = _new_payload_token()
        #: Directory of this graph's saved on-disk index (set by
        #: ``save``/``load``, see :mod:`repro.graph.storage`), or
        #: ``None`` for a purely in-memory freeze.  A graph with a disk
        #: home is *path-installable*: the resident pools ship workers
        #: the path instead of the array pickle.
        self.disk_home: "str | None" = None
        #: Mutation epoch of this freeze under :meth:`apply_deltas`.  A
        #: fresh freeze is generation 0; every applied delta batch bumps
        #: it by one while the ``payload_token`` stays put — residency
        #: ledgers track ``(token, generation)`` pairs so a stale-but-
        #: resident worker can be patched rather than re-shipped.
        self.generation: int = 0
        #: Replay log of normalized delta batches (``_log_from`` is the
        #: generation the first retained batch upgrades *from*); bounded
        #: by ``_DELTA_LOG_LIMIT``, see :meth:`delta_batches_since`.
        self._delta_log: list = []
        self._log_from: int = 0
        #: Open ``mmap`` objects backing the arrays (empty for in-memory
        #: graphs).  Non-empty means the instance must not be pickled.
        self._mmaps: tuple = ()
        self._row_targets: "list | None" = None
        self._row_edges: "list | None" = None
        self._row_id_edges: "list | None" = None
        self._component_sizes: "list[int] | None" = None
        self._component_labels: "list[int] | None" = None
        # An in-memory freeze warms the row views now, at compile time —
        # the sampler's first draw must not pay the O(V+E) build.  Only
        # mmap-backed loads (constructed via ``__new__`` in
        # repro.graph.storage) leave them lazy.
        self.row_id_edges

    # ------------------------------------------------------------------
    # Row views — per-row slices of the CSR arrays.
    #
    # Direct iteration over a prebuilt list/tuple is the cheapest scan
    # CPython offers, so the sampler's hot kernels use these instead of
    # offsets/targets index arithmetic.  They are cached properties:
    # in-memory freezes warm them at compile/unpickle time (keeping the
    # build out of the timed solve path), while mmap-backed loads leave
    # them lazy — an index of a million nodes must not materialize
    # O(V+E) Python objects just to answer a batch of solves that touch
    # a few thousand rows, and each view is independent, so the vector
    # path (which needs only ``row_targets`` for seed frontiers) never
    # pays for the scalar kernels' ``row_edges`` tuples.
    # ------------------------------------------------------------------
    @property
    def row_targets(self) -> list:
        """Per-row slices of ``targets`` (list/memoryview per node)."""
        rows = self._row_targets
        if rows is None:
            offsets, targets = self.offsets, self.targets
            rows = [
                targets[offsets[i] : offsets[i + 1]]
                for i in range(len(self.nodes))
            ]
            self._row_targets = rows
        return rows

    @property
    def row_edges(self) -> list:
        """Per-row ``(target, pair_w)`` tuples — the merged
        delta-and-extend pass touches each slot exactly once."""
        rows = self._row_edges
        if rows is None:
            offsets, pair_w = self.offsets, self.pair_w
            rows = [
                tuple(zip(row_t, pair_w[offsets[i] : offsets[i + 1]]))
                for i, row_t in enumerate(self.row_targets)
            ]
            self._row_edges = rows
        return rows

    @property
    def row_id_edges(self) -> list:
        """Id-space twin of ``row_edges`` for callers whose groups are
        node-id sets (the evaluator API): no per-slot index→id
        conversion."""
        rows = self._row_id_edges
        if rows is None:
            nodes = self.nodes
            rows = [
                tuple((nodes[target], pair) for target, pair in row)
                for row in self.row_edges
            ]
            self._row_id_edges = rows
        return rows

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: SocialGraph) -> "CompiledGraph":
        """Freeze ``graph`` into flat arrays (one pass over the adjacency)."""
        nodes = list(graph.nodes())
        index_of = {node: index for index, node in enumerate(nodes)}
        n = len(nodes)

        weighted_interest = [0.0] * n
        tightness_weight = [0.0] * n
        adjacencies = []
        for index, node in enumerate(nodes):
            a, b = graph.weights(node)
            weighted_interest[index] = a * graph.interest(node)
            tightness_weight[index] = b
            adjacencies.append(graph.neighbor_tightness(node))

        offsets = [0] * (n + 1)
        targets: list[int] = []
        out_w: list[float] = []
        pair_w: list[float] = []
        potential = [0.0] * n
        for index, node in enumerate(nodes):
            b_node = tightness_weight[index]
            total = weighted_interest[index]
            for neighbour, tau in adjacencies[index].items():
                other = index_of[neighbour]
                outgoing = b_node * tau
                # Same expression (and evaluation order) as the reference
                # evaluator's cached pair weight: bit-identical sums.
                combined = outgoing + tightness_weight[other] * (
                    adjacencies[other][node]
                )
                targets.append(other)
                out_w.append(outgoing)
                pair_w.append(combined)
                total += combined
            offsets[index + 1] = len(targets)
            potential[index] = total

        return cls(
            graph=graph,
            nodes=nodes,
            index_of=index_of,
            offsets=offsets,
            targets=targets,
            out_w=out_w,
            pair_w=pair_w,
            weighted_interest=weighted_interest,
            tightness_weight=tightness_weight,
            potential=potential,
        )

    # ------------------------------------------------------------------
    @property
    def number_of_nodes(self) -> int:
        return len(self.nodes)

    @property
    def number_of_directed_slots(self) -> int:
        return len(self.targets)

    def neighbor_slots(self, index: int) -> range:
        """Directed slot range of node ``index`` (CSR row)."""
        return range(self.offsets[index], self.offsets[index + 1])

    def degree(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def component_size_by_index(self) -> list[int]:
        """Connected-component size of every node, indexed by int id.

        Computed lazily with one index-space BFS pass and cached; CBAS
        uses it to skip start nodes whose component cannot hold a
        ``k``-group, and ``WASOProblem.ensure_feasible`` to validate
        unconstrained instances, without re-deriving components per solve.
        """
        if self._component_sizes is None:
            self._compute_components()
        return self._component_sizes

    def component_label_by_index(self) -> list[int]:
        """Component representative (root id) of every node, by int id.

        Two nodes share a connected component iff their labels are equal;
        cached alongside :meth:`component_size_by_index` from the same
        BFS pass.
        """
        if self._component_labels is None:
            self._compute_components()
        return self._component_labels

    def _compute_components(self) -> None:
        n = len(self.nodes)
        sizes = [0] * n
        label = [-1] * n
        row_targets = self.row_targets
        for root in range(n):
            if label[root] != -1:
                continue
            stack = [root]
            label[root] = root
            component = [root]
            while stack:
                current = stack.pop()
                for other in row_targets[current]:
                    if label[other] == -1:
                        label[other] = root
                        stack.append(other)
                        component.append(other)
            size = len(component)
            for index in component:
                sizes[index] = size
        self._component_sizes = sizes
        self._component_labels = label

    # ------------------------------------------------------------------
    # Streaming deltas — patch the freeze in place instead of refreezing.
    # ------------------------------------------------------------------
    def apply_deltas(self, deltas) -> int:
        """Apply a batch of graph mutations to the frozen arrays in place.

        ``deltas`` is an iterable of op tuples:

        * ``("add_node", node, interest)`` or
          ``("add_node", node, interest, lam)``
        * ``("add_edge", u, v, tightness)`` or
          ``("add_edge", u, v, tightness, reverse_tightness)``
        * ``("set_tightness", u, v, tightness)`` (one direction)
        * ``("remove_edge", u, v)``

        When ``self.graph`` is the source :class:`SocialGraph`, each op
        is applied to the adjacency dicts through the validating mutators
        *first* and the arrays are patched to match, after which this
        instance is re-adopted as the graph's compiled cache — dicts and
        arrays never diverge.  On an :class:`ArrayBackedGraph` clone (a
        pool worker's resident copy) only the arrays are patched.

        The patched arrays are bit-identical to a fresh
        :meth:`from_graph` of the mutated source: inserts append to the
        row tail (matching adjacency-dict insertion order), weight edits
        land in the existing slot, and potentials are re-accumulated in
        slot order.  CPython's over-allocated lists give row edits
        amortized slack (a single ``insert`` is one memmove, no
        reallocation in the common case), and the bounded replay log
        (:func:`delta_batches_since`) is compacted automatically as it
        overflows — or explicitly via :meth:`compact`.

        Bumps :attr:`generation` by one per call (the batch is the unit
        of replay) and returns the new generation.  A failing op raises
        after committing the already-applied prefix, so a parent and its
        workers can still be reconverged by replay or re-ship.

        An mmap-backed instance is materialized into plain in-memory
        lists first (its read-only mappings cannot be patched); it stops
        being path-installable once a delta lands (``disk_home`` is
        cleared because the arrays diverge from the saved index).
        """
        if self._mmaps:
            self._materialize()
        source = self.graph if isinstance(self.graph, SocialGraph) else None
        batch = [self._normalize_delta(op, source) for op in deltas]
        applied: list = []
        try:
            for op in batch:
                self._apply_one(op, source)
                applied.append(op)
        finally:
            if applied:
                self._commit_batch(applied, source)
        return self.generation

    def delta_batches_since(self, generation) -> "list | None":
        """Replayable batches upgrading ``generation`` → current, or None.

        Returns ``[]`` when ``generation`` is already current, and
        ``None`` when the request cannot be served from the bounded log
        (unknown/future generation, or batches already compacted away) —
        the caller must then fall back to a full re-install.
        """
        if generation == self.generation:
            return []
        if not isinstance(generation, int):
            return None
        start = generation - self._log_from
        if start < 0 or start > len(self._delta_log):
            return None
        batches = list(self._delta_log[start:])
        # Defensive length check: detached clones share the log list but
        # snapshot ``_log_from``, so a compaction through another handle
        # could desync the offset — never serve a short replay.
        if len(batches) != self.generation - generation:
            return None
        return batches

    def compact(self) -> None:
        """Materialize mmap-backed arrays and drop the replay log.

        After compacting, the instance is plain-picklable again (the
        typed pickle error on mmap-backed graphs names this method) and
        workers behind the current generation are demoted to a full
        re-install by the residency ledger.
        """
        self._materialize()
        self._delta_log.clear()
        self._log_from = self.generation

    def _materialize(self) -> None:
        """Copy mmap-backed arrays into plain lists and unmap the files.

        Patching mutates the flat arrays, which read-only shared
        mappings cannot support; the vector cache's views over the maps
        are discarded first so the buffers actually release.
        """
        maps, self._mmaps = self._mmaps, ()
        if not maps:
            return
        try:
            from repro.vector.arrays import discard_vector_graph

            discard_vector_graph(self.payload_token)
        except ImportError:  # pragma: no cover - numpy-less install
            pass
        self.offsets = list(self.offsets)
        self.targets = list(self.targets)
        self.out_w = list(self.out_w)
        self.pair_w = list(self.pair_w)
        self.weighted_interest = list(self.weighted_interest)
        self.tightness_weight = list(self.tightness_weight)
        self.potential = list(self.potential)
        if self._component_sizes is not None:
            self._component_sizes = list(self._component_sizes)
        if self._component_labels is not None:
            self._component_labels = list(self._component_labels)
        # Row views may hold memoryview slices over the maps: rebuild
        # lazily from the materialized lists.
        self._row_targets = None
        self._row_edges = None
        self._row_id_edges = None
        for mapped in maps:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - external view alive
                pass

    @staticmethod
    def _normalize_delta(op, source) -> tuple:
        """Canonical wire form of one delta op (idempotent)."""
        kind = op[0]
        if kind == "add_node":
            if len(op) == 3:
                lam = source.default_lambda if source is not None else None
            elif len(op) == 4:
                lam = op[3]
            else:
                raise GraphError(f"malformed add_node delta: {op!r}")
            return ("add_node", op[1], float(op[2]), lam)
        if kind == "add_edge":
            if len(op) == 4:
                tau = rev = float(op[3])
            elif len(op) == 5:
                tau, rev = float(op[3]), float(op[4])
            else:
                raise GraphError(f"malformed add_edge delta: {op!r}")
            return ("add_edge", op[1], op[2], tau, rev)
        if kind == "set_tightness":
            if len(op) != 4:
                raise GraphError(f"malformed set_tightness delta: {op!r}")
            return ("set_tightness", op[1], op[2], float(op[3]))
        if kind == "remove_edge":
            if len(op) != 3:
                raise GraphError(f"malformed remove_edge delta: {op!r}")
            return ("remove_edge", op[1], op[2])
        raise GraphError(f"unknown delta op kind {kind!r}")

    def _apply_one(self, op, source) -> None:
        kind = op[0]
        if kind == "add_node":
            _, node, interest, lam = op
            if source is not None:
                source.add_node(node, interest, lam)
            elif node in self.index_of:
                raise DuplicateNodeError(node)
            self._patch_add_node(node, interest, lam)
            return
        if kind == "add_edge":
            _, u, v, tau, rev = op
            iu, iv = self._require_index(u), self._require_index(v)
            # Overwrite-vs-insert must be decided from the arrays before
            # the dict mutation erases the distinction.
            slot_uv = self._find_slot(iu, iv)
            if source is not None:
                source.add_edge(u, v, tau, rev)
            elif iu == iv:
                raise GraphError(f"self-loops are not allowed (node {u!r})")
            if slot_uv >= 0:
                self._patch_weight(iu, iv, slot_uv, tau)
                self._patch_weight(iv, iu, self._find_slot(iv, iu), rev)
            else:
                self._patch_insert_edge(iu, iv, tau, rev)
            return
        if kind == "set_tightness":
            _, u, v, tau = op
            iu, iv = self._require_index(u), self._require_index(v)
            slot_uv = self._find_slot(iu, iv)
            if slot_uv < 0:
                raise EdgeNotFoundError(u, v)
            if source is not None:
                source.set_tightness(u, v, tau)
            self._patch_weight(iu, iv, slot_uv, tau)
            return
        # remove_edge
        _, u, v = op
        iu, iv = self._require_index(u), self._require_index(v)
        slot_uv = self._find_slot(iu, iv)
        slot_vu = self._find_slot(iv, iu)
        if slot_uv < 0 or slot_vu < 0:
            raise EdgeNotFoundError(u, v)
        if source is not None:
            source.remove_edge(u, v)
        self._patch_remove_edge(iu, iv, slot_uv, slot_vu)

    def _commit_batch(self, applied: list, source) -> None:
        self.generation += 1
        self._delta_log.append(tuple(applied))
        overflow = len(self._delta_log) - _DELTA_LOG_LIMIT
        if overflow > 0:
            del self._delta_log[:overflow]
            self._log_from += overflow
        # The arrays now diverge from any saved on-disk index: drop the
        # disk home so resident pools ship arrays (or patches) instead of
        # pointing workers at stale files.
        self.disk_home = None
        if source is not None:
            # Dicts and arrays were mutated in lockstep: re-adopt this
            # instance as the graph's compiled cache so the next
            # ``graph.compiled()`` returns the patched freeze instead of
            # refreezing O(V+E).
            source._compiled_cache = (source._mutation_count, self)

    def _require_index(self, node) -> int:
        try:
            return self.index_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def _find_slot(self, iu: int, iv: int) -> int:
        """Directed slot of edge ``iu → iv``, or ``-1``."""
        targets = self.targets
        for slot in range(self.offsets[iu], self.offsets[iu + 1]):
            if targets[slot] == iv:
                return slot
        return -1

    def _resum_potential(self, index: int) -> None:
        # Full row re-accumulation in slot order: FP addition is not
        # associative, so a mid-row pair-weight edit cannot be patched
        # into the cached sum — only the freeze's own left-to-right
        # accumulation is bit-exact.
        total = self.weighted_interest[index]
        pair_w = self.pair_w
        for slot in range(self.offsets[index], self.offsets[index + 1]):
            total += pair_w[slot]
        self.potential[index] = total

    def _patch_add_node(self, node, interest, lam) -> None:
        index = len(self.nodes)
        self.nodes.append(node)
        self.index_of[node] = index
        a, b = (1.0, 1.0) if lam is None else (lam, 1.0 - lam)
        weighted = a * interest
        self.weighted_interest.append(weighted)
        self.tightness_weight.append(b)
        self.offsets.append(self.offsets[-1])
        self.potential.append(weighted)
        if self._component_labels is not None:
            # A fresh node is its own singleton component, and its index
            # (the largest so far) is trivially the component's minimum —
            # exactly the label a recomputed BFS would assign.
            self._component_labels.append(index)
            self._component_sizes.append(1)
        if self._row_targets is not None:
            self._row_targets.append([])
        if self._row_edges is not None:
            self._row_edges.append(())
        if self._row_id_edges is not None:
            self._row_id_edges.append(())

    def _patch_insert_edge(self, iu: int, iv: int, tau, rev) -> None:
        out_uv = self.tightness_weight[iu] * tau
        out_vu = self.tightness_weight[iv] * rev
        # Both directed slots freeze to the same combined weight (IEEE
        # addition is commutative, so ``out_uv + out_vu`` matches the
        # reverse slot's ``out_vu + out_uv`` bit-for-bit).
        combined = out_uv + out_vu
        offsets = self.offsets
        for index, target, out in ((iu, iv, out_uv), (iv, iu, out_vu)):
            pos = offsets[index + 1]
            self.targets.insert(pos, target)
            self.out_w.insert(pos, out)
            self.pair_w.insert(pos, combined)
            for j in range(index + 1, len(offsets)):
                offsets[j] += 1
            # Appending at the row tail extends the cached left-to-right
            # potential sum without re-associating earlier terms.
            self.potential[index] = self.potential[index] + combined
        self._merge_components(iu, iv)
        self._refresh_row(iu)
        self._refresh_row(iv)

    def _patch_weight(self, iu: int, iv: int, slot_uv: int, tau) -> None:
        slot_vu = self._find_slot(iv, iu)
        self.out_w[slot_uv] = self.tightness_weight[iu] * tau
        combined = self.out_w[slot_uv] + self.out_w[slot_vu]
        self.pair_w[slot_uv] = combined
        self.pair_w[slot_vu] = combined
        self._resum_potential(iu)
        self._resum_potential(iv)
        self._refresh_row(iu)
        self._refresh_row(iv)

    def _patch_remove_edge(
        self, iu: int, iv: int, slot_uv: int, slot_vu: int
    ) -> None:
        for slot in sorted((slot_uv, slot_vu), reverse=True):
            del self.targets[slot]
            del self.out_w[slot]
            del self.pair_w[slot]
        offsets = self.offsets
        for j in range(iu + 1, len(offsets)):
            offsets[j] -= 1
        for j in range(iv + 1, len(offsets)):
            offsets[j] -= 1
        self._resum_potential(iu)
        self._resum_potential(iv)
        # A deletion can split a component; recompute lazily on demand,
        # exactly as a refreeze of the mutated source would.
        self._component_sizes = None
        self._component_labels = None
        self._refresh_row(iu)
        self._refresh_row(iv)

    def _merge_components(self, iu: int, iv: int) -> None:
        labels = self._component_labels
        sizes = self._component_sizes
        if labels is None or sizes is None:
            self._component_sizes = None
            self._component_labels = None
            return
        lu, lv = labels[iu], labels[iv]
        if lu == lv:
            return
        # BFS labels components by their minimum node index (roots are
        # visited in ascending order), so the merged label is the smaller
        # of the two old roots.
        merged_label = lu if lu < lv else lv
        merged_size = sizes[iu] + sizes[iv]
        for i in range(len(labels)):
            if labels[i] == lu or labels[i] == lv:
                labels[i] = merged_label
                sizes[i] = merged_size

    def _refresh_row(self, index: int) -> None:
        """Rebuild the warmed row views of one patched row.

        Untouched rows keep their existing slices (list slicing copies
        values, so earlier rows are unaffected by tail edits); ``None``
        views stay lazy.
        """
        if (
            self._row_targets is None
            and self._row_edges is None
            and self._row_id_edges is None
        ):
            return
        start, stop = self.offsets[index], self.offsets[index + 1]
        row_t = self.targets[start:stop]
        if self._row_targets is not None:
            self._row_targets[index] = row_t
        if self._row_edges is not None or self._row_id_edges is not None:
            row_e = tuple(zip(row_t, self.pair_w[start:stop]))
            if self._row_edges is not None:
                self._row_edges[index] = row_e
            if self._row_id_edges is not None:
                nodes = self.nodes
                self._row_id_edges[index] = tuple(
                    (nodes[target], pair) for target, pair in row_e
                )

    # ------------------------------------------------------------------
    # Pickle support: __slots__ classes need explicit state handling.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Ship only the irreducible arrays.  ``pair_w`` is the slot-wise
        # sum of the two directed ``out_w`` contributions, ``potential``
        # a row sum over ``pair_w``, and ``index_of`` the enumeration of
        # ``nodes`` — all reproduced bit-for-bit on unpickle, so the
        # payload sent to pool workers carries no redundant floats.
        if self._mmaps:
            raise TypeError(
                "an mmap-backed CompiledGraph cannot be pickled: its "
                "arrays are views over shared file mappings.  Ship its "
                f"disk_home path ({self.disk_home!r}) and load it in the "
                "receiving process instead — the resident pools do this "
                "automatically — or call compact() first to materialize "
                "the arrays in memory (required before pickling a loaded "
                "index that has pending apply_deltas patches)."
            )
        state = {name: getattr(self, name) for name in _PICKLED_SLOTS}
        # Only graphs with a disk home / non-zero generation carry the
        # extra keys, so payload bytes of purely in-memory generation-0
        # graphs stay byte-identical to the committed tier-2 baselines.
        if self.disk_home is not None:
            state["disk_home"] = self.disk_home
        if self.generation:
            state["generation"] = self.generation
        return state

    def __setstate__(self, state: dict) -> None:
        self.disk_home = None
        self._mmaps = ()
        self.generation = 0
        for name, value in state.items():
            setattr(self, name, value)
        # The replay log does not travel: an unpickled copy starts its
        # own log at the current generation, so a worker-resident graph
        # can still be patched forward from the generation it arrived at.
        self._delta_log = []
        self._log_from = self.generation
        self._rebuild_derived()

    def _rebuild_derived(self) -> None:
        """Recompute ``index_of`` / ``pair_w`` / ``potential`` / row views.

        ``pair_w[slot]`` was frozen as ``out_uv + b_v·τ_vu`` where the
        second term is exactly the reverse slot's ``out_w`` (same floats,
        same product), and ``potential`` accumulates ``weighted_interest``
        plus the row's pair weights in slot order — repeating both here
        reproduces the original arrays bit-identically.
        """
        nodes = self.nodes
        self.index_of = {node: index for index, node in enumerate(nodes)}
        n = len(nodes)
        offsets, targets, out_w = self.offsets, self.targets, self.out_w
        slot_of_pair: dict[int, int] = {}
        for index in range(n):
            for slot in range(offsets[index], offsets[index + 1]):
                slot_of_pair[index * n + targets[slot]] = slot
        pair_w = [0.0] * len(targets)
        potential = [0.0] * n
        weighted_interest = self.weighted_interest
        for index in range(n):
            total = weighted_interest[index]
            for slot in range(offsets[index], offsets[index + 1]):
                other = targets[slot]
                combined = out_w[slot] + out_w[slot_of_pair[other * n + index]]
                pair_w[slot] = combined
                total += combined
            potential[index] = total
        self.pair_w = pair_w
        self.potential = potential
        self._row_targets = None
        self._row_edges = None
        self._row_id_edges = None
        # Unpickling happens at install time in a pool worker: warm the
        # row views here so the worker's first dispatched solve doesn't
        # pay the build (mirrors the freeze-time warm in ``__init__``).
        self.row_id_edges

    # ------------------------------------------------------------------
    # Out-of-core persistence (see :mod:`repro.graph.storage`)
    # ------------------------------------------------------------------
    def save(self, path) -> "str":
        """Write this freeze to directory ``path`` as an on-disk index.

        Adopts the manifest's content-derived ``payload_token`` and sets
        ``disk_home`` on this instance, so subsequent pool installs ship
        the path instead of the arrays.  Returns the directory path.
        """
        from repro.graph.storage import save_compiled

        return str(save_compiled(self, path))

    @classmethod
    def load(
        cls, path, mmap: bool = True, verify: bool = True
    ) -> "CompiledGraph":
        """Load a saved index (mmap-backed by default; bit-identical).

        The returned instance's ``graph`` is an :class:`ArrayBackedGraph`
        facade, exactly like :meth:`detach` — build problems over
        ``loaded.graph``.  See :func:`repro.graph.storage.load_compiled`.
        """
        from repro.graph.storage import load_compiled

        return load_compiled(path, mmap=mmap, verify=verify)

    @property
    def is_mmap_backed(self) -> bool:
        """Whether the arrays are views over open file mappings."""
        return bool(self._mmaps)

    def close(self) -> None:
        """Release the file mappings of an mmap-backed instance.

        After closing, the arrays are gone (any access raises); the
        worker-side residency store calls this when evicting a mapped
        graph so the address space is actually unmapped instead of
        waiting on GC.  No-op for in-memory graphs; idempotent.
        """
        maps, self._mmaps = self._mmaps, ()
        if not maps:
            return
        # Drop the numpy views the vector engine may hold over the maps
        # (the module-level cache would otherwise pin the buffers).
        try:
            from repro.vector.arrays import discard_vector_graph

            discard_vector_graph(self.payload_token)
        except ImportError:  # pragma: no cover - numpy-less install
            pass
        # Release every exported buffer before closing the mappings.
        empty: tuple = ()
        self.offsets = empty
        self.targets = empty
        self.out_w = empty
        self.pair_w = empty
        self.weighted_interest = empty
        self.tightness_weight = empty
        self.potential = empty
        self._component_sizes = None
        self._component_labels = None
        self._row_targets = None
        self._row_edges = None
        self._row_id_edges = None
        for mapped in maps:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - external view alive
                # Someone still holds a view (e.g. a numpy array that
                # escaped the cache); the mapping closes when it dies.
                pass

    # ------------------------------------------------------------------
    def detach(self) -> "CompiledGraph":
        """Self-contained copy backed by an :class:`ArrayBackedGraph`.

        The clone shares every array with this index but its ``graph``
        is the dict-free facade instead of the source
        :class:`SocialGraph`, so pickling it (or a problem built over
        ``clone.graph`` — see ``WASOProblem.detached``) ships only the
        flat arrays.  This is the slim payload
        :mod:`repro.parallel.pool` sends to compiled-engine workers.
        """
        clone = CompiledGraph.__new__(CompiledGraph)
        for name in self.__slots__:
            if name != "graph":
                setattr(clone, name, getattr(self, name))
        clone.graph = ArrayBackedGraph(clone)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph(nodes={len(self.nodes)}, "
            f"directed_slots={len(self.targets)})"
        )

    def index(self, node: NodeId) -> int:
        """Int index of ``node`` (KeyError when unknown)."""
        return self.index_of[node]


class ArrayBackedGraph:
    """Topology-only :class:`SocialGraph` facade over a compiled index.

    Implements exactly the subset of the graph API the compiled execution
    stack touches between ``WASOProblem.compiled()`` and the returned
    solution — node membership/iteration, neighbourhoods, connectivity,
    and ``compiled()`` itself — straight off the flat arrays.  Score
    accessors and mutators are deliberately absent: the facade exists so
    :mod:`repro.parallel.pool` can ship workers a payload with **no
    adjacency dicts at all**; anything needing the dict-based reference
    path must keep the full :class:`SocialGraph`.
    """

    def __init__(self, compiled: CompiledGraph) -> None:
        self._compiled = compiled

    # -- node / topology subset ----------------------------------------
    def compiled(self) -> CompiledGraph:
        return self._compiled

    def compiled_if_cached(self) -> CompiledGraph:
        """The backing index (always 'cached' — it is the graph)."""
        return self._compiled

    def has_node(self, node: NodeId) -> bool:
        return node in self._compiled.index_of

    def __contains__(self, node: NodeId) -> bool:
        return node in self._compiled.index_of

    def __len__(self) -> int:
        return len(self._compiled.nodes)

    def nodes(self):
        return iter(self._compiled.nodes)

    def node_list(self) -> list[NodeId]:
        return list(self._compiled.nodes)

    def number_of_nodes(self) -> int:
        return len(self._compiled.nodes)

    def neighbors(self, node: NodeId):
        comp = self._compiled
        try:
            index = comp.index_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        nodes = comp.nodes
        return iter([nodes[other] for other in comp.row_targets[index]])

    def degree(self, node: NodeId) -> int:
        comp = self._compiled
        try:
            return comp.degree(comp.index_of[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def is_connected_subset(self, nodes) -> bool:
        """Index-space BFS twin of ``SocialGraph.is_connected_subset``."""
        comp = self._compiled
        index_of = comp.index_of
        try:
            subset = {index_of[node] for node in nodes}
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        if len(subset) <= 1:
            return True
        row_targets = comp.row_targets
        start = next(iter(subset))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for other in row_targets[current]:
                if other in subset and other not in seen:
                    seen.add(other)
                    stack.append(other)
        return len(seen) == len(subset)

    def __getattr__(self, name: str):
        raise AttributeError(
            f"ArrayBackedGraph has no attribute {name!r}: score and "
            "mutation APIs need the full dict-backed SocialGraph — this "
            "facade only ships the compiled arrays to pool workers"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackedGraph(nodes={len(self._compiled.nodes)})"
