"""Persistence and ingestion for :class:`~repro.graph.SocialGraph`.

Three layers:

* **Edge list** — the format the paper's public crawls ship in
  (``socialnetworks.mpi-sws.org``): one ``u v [tau_uv [tau_vu]]`` line per
  edge, with optional ``# node <id> <interest> [lambda]`` header lines for
  node attributes.  Loading a plain two-column crawl therefore works
  out of the box (scores default to 0 / 1 and can be assigned afterwards
  with the models in :mod:`repro.graph.scores`).
* **JSON** — a lossless round-trip format for fixtures and examples.
* **Frozen index cache** — the ingestion front door for out-of-core
  serving: :func:`ingest_edge_list` normalizes a crawl, compiles it, and
  saves the frozen :class:`~repro.graph.compiled.CompiledGraph` arrays
  into a content-addressed cache directory (:mod:`repro.graph.storage`),
  so a graph compiles **once ever**; :func:`load_cached_graph` maps a
  saved index back (mmap, O(1) resident bytes) behind the
  ``ArrayBackedGraph`` facade; :func:`resolve_graph_source` is the
  serving layer's "a tenant may be a path" hook.  Everything is
  offline-first: sources are local files, and network fetching is an
  optional ``fetcher`` callback.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.social_graph import SocialGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_json",
    "save_json",
    "ingest_edge_list",
    "load_cached_graph",
    "resolve_graph_source",
]

PathLike = Union[str, Path]


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as an annotated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.nodes():
            lam = graph.lam(node)
            if lam is None:
                handle.write(f"# node {node} {graph.interest(node)!r}\n")
            else:
                handle.write(
                    f"# node {node} {graph.interest(node)!r} {lam!r}\n"
                )
        for u, v in graph.edges():
            tau_uv = graph.tightness(u, v)
            tau_vu = graph.tightness(v, u)
            handle.write(f"{u} {v} {tau_uv!r} {tau_vu!r}\n")


def _parse_edge_lines(lines, origin: str, node_type=int) -> SocialGraph:
    """Build a graph from edge-list ``lines`` (``origin`` names errors)."""
    graph = SocialGraph()
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if parts and parts[0] == "node":
                if len(parts) < 3:
                    raise GraphError(
                        f"{origin}:{line_number}: malformed node line"
                    )
                node = node_type(parts[1])
                interest = float(parts[2])
                lam = float(parts[3]) if len(parts) > 3 else None
                if not graph.has_node(node):
                    graph.add_node(node, interest=interest, lam=lam)
                else:
                    graph.set_interest(node, interest)
                    graph.set_lam(node, lam)
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"{origin}:{line_number}: malformed edge line")
        u, v = node_type(parts[0]), node_type(parts[1])
        tau_uv = float(parts[2]) if len(parts) > 2 else 1.0
        tau_vu = float(parts[3]) if len(parts) > 3 else tau_uv
        for node in (u, v):
            if not graph.has_node(node):
                graph.add_node(node)
        if u == v:
            continue  # crawls occasionally contain self-loops; skip
        graph.add_edge(u, v, tau_uv, reverse_tightness=tau_vu)
    return graph


def load_edge_list(path: PathLike, node_type=int) -> SocialGraph:
    """Read an edge list written by :func:`save_edge_list` or a raw crawl.

    Unannotated lines ``u v`` get tightness 1.0; ``u v t`` is symmetric;
    ``u v t_uv t_vu`` is asymmetric.  Nodes referenced only by edges are
    created with interest 0.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _parse_edge_lines(handle, str(path), node_type)


def save_json(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as JSON (lossless)."""
    payload = {
        "default_lambda": graph.default_lambda,
        "nodes": [
            {
                "id": node,
                "interest": graph.interest(node),
                "lambda": graph.lam(node),
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": u,
                "target": v,
                "tightness": graph.tightness(u, v),
                "reverse_tightness": graph.tightness(v, u),
            }
            for u, v in graph.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = SocialGraph(default_lambda=payload.get("default_lambda"))
    for node in payload["nodes"]:
        graph.add_node(
            node["id"],
            interest=node["interest"],
            lam=node.get("lambda"),
        )
    for edge in payload["edges"]:
        graph.add_edge(
            edge["source"],
            edge["target"],
            edge["tightness"],
            reverse_tightness=edge.get("reverse_tightness"),
        )
    return graph


# ----------------------------------------------------------------------
# Frozen-index cache: normalize -> compile -> save, content-addressed
# ----------------------------------------------------------------------
def ingest_edge_list(
    source,
    cache_dir: PathLike,
    *,
    node_type=int,
    fetcher=None,
    refresh: bool = False,
) -> Path:
    """Compile an edge-list crawl into the frozen-index cache, once.

    ``source`` is a local file path (offline-first: this is what tests
    and benches use) or, when ``fetcher`` is given, any key the fetcher
    resolves — ``fetcher(source) -> bytes`` is the optional network
    hook, so the library itself never opens a socket.

    The cache is **content-addressed**: the raw input bytes are hashed
    and the index lives at ``cache_dir / <sha256 prefix>``.  If that
    index already exists (and ``refresh`` is false) nothing is parsed or
    compiled — a graph compiles once ever, no matter how many processes
    ingest the same crawl.  Returns the index directory, ready for
    :func:`load_cached_graph` / ``CompiledGraph.load``.
    """
    from repro.graph.storage import MANIFEST_NAME, save_compiled

    if fetcher is not None:
        data = fetcher(source)
        if isinstance(data, str):
            data = data.encode("utf-8")
    else:
        data = Path(source).read_bytes()
    digest = hashlib.sha256(data).hexdigest()
    index_dir = Path(cache_dir) / digest[:20]
    if not refresh and (index_dir / MANIFEST_NAME).is_file():
        return index_dir
    graph = _parse_edge_lines(
        data.decode("utf-8").splitlines(), str(source), node_type
    )
    save_compiled(graph.compiled(), index_dir)
    return index_dir


#: Frozen indexes kept open per process (mmap handles are cheap — the
#: bound exists so a long sweep over many cache entries cannot leak
#: file descriptors without bound).
_OPEN_LIMIT = 8

_OPEN: "OrderedDict[tuple, object]" = OrderedDict()


def load_cached_graph(path: PathLike, mmap: bool = True):
    """The ``ArrayBackedGraph`` for a saved index (process-cached).

    Repeated loads of one index path — a daemon admitting many requests
    naming the same ``graph_path``, a bench sweep — reuse one mapped
    :class:`~repro.graph.compiled.CompiledGraph` instead of re-opening
    the files; entries are dropped least-recently-used past a small
    bound.  Raises the typed :mod:`repro.graph.storage` errors for a
    missing / version-mismatched / corrupted index.
    """
    from repro.graph.compiled import CompiledGraph
    from repro.graph.storage import MANIFEST_NAME

    path = Path(path)
    if path.name == MANIFEST_NAME:
        path = path.parent
    key = (str(path.resolve()), bool(mmap))
    graph = _OPEN.get(key)
    if graph is not None:
        _OPEN.move_to_end(key)
        return graph
    compiled = CompiledGraph.load(path, mmap=mmap)
    graph = compiled.graph
    _OPEN[key] = graph
    while len(_OPEN) > _OPEN_LIMIT:
        _OPEN.popitem(last=False)
    return graph


def resolve_graph_source(source):
    """A graph from "whatever the caller configured": object or path.

    The serving layer's tenant hook: a :class:`SocialGraph` (or any
    graph-like object) passes through untouched; a string / ``Path``
    naming a saved frozen index (the directory, or its ``manifest.json``)
    loads mmap-backed through :func:`load_cached_graph`; any other path
    is read as a JSON graph.  Storage errors (unsupported version,
    checksum mismatch) propagate typed, so front doors can reject the
    tenant / request without crashing the connection.
    """
    if not isinstance(source, (str, Path)):
        return source
    from repro.graph.storage import MANIFEST_NAME

    path = Path(source)
    if path.name == MANIFEST_NAME or (path / MANIFEST_NAME).is_file():
        return load_cached_graph(path)
    if path.is_dir():
        # A directory that is not an index: typed error, not ENOENT.
        from repro.exceptions import GraphStorageError

        raise GraphStorageError(
            f"{path} is a directory but holds no {MANIFEST_NAME}; "
            "expected a saved compiled-graph index or a JSON graph file"
        )
    return load_json(path)
