"""Persistence for :class:`~repro.graph.SocialGraph`.

Two formats are supported:

* **Edge list** — the format the paper's public crawls ship in
  (``socialnetworks.mpi-sws.org``): one ``u v [tau_uv [tau_vu]]`` line per
  edge, with optional ``# node <id> <interest> [lambda]`` header lines for
  node attributes.  Loading a plain two-column crawl therefore works
  out of the box (scores default to 0 / 1 and can be assigned afterwards
  with the models in :mod:`repro.graph.scores`).
* **JSON** — a lossless round-trip format for fixtures and examples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.social_graph import SocialGraph

__all__ = ["load_edge_list", "save_edge_list", "load_json", "save_json"]

PathLike = Union[str, Path]


def save_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as an annotated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.nodes():
            lam = graph.lam(node)
            if lam is None:
                handle.write(f"# node {node} {graph.interest(node)!r}\n")
            else:
                handle.write(
                    f"# node {node} {graph.interest(node)!r} {lam!r}\n"
                )
        for u, v in graph.edges():
            tau_uv = graph.tightness(u, v)
            tau_vu = graph.tightness(v, u)
            handle.write(f"{u} {v} {tau_uv!r} {tau_vu!r}\n")


def load_edge_list(path: PathLike, node_type=int) -> SocialGraph:
    """Read an edge list written by :func:`save_edge_list` or a raw crawl.

    Unannotated lines ``u v`` get tightness 1.0; ``u v t`` is symmetric;
    ``u v t_uv t_vu`` is asymmetric.  Nodes referenced only by edges are
    created with interest 0.
    """
    path = Path(path)
    graph = SocialGraph()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if parts and parts[0] == "node":
                    if len(parts) < 3:
                        raise GraphError(
                            f"{path}:{line_number}: malformed node line"
                        )
                    node = node_type(parts[1])
                    interest = float(parts[2])
                    lam = float(parts[3]) if len(parts) > 3 else None
                    if not graph.has_node(node):
                        graph.add_node(node, interest=interest, lam=lam)
                    else:
                        graph.set_interest(node, interest)
                        graph.set_lam(node, lam)
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_number}: malformed edge line")
            u, v = node_type(parts[0]), node_type(parts[1])
            tau_uv = float(parts[2]) if len(parts) > 2 else 1.0
            tau_vu = float(parts[3]) if len(parts) > 3 else tau_uv
            for node in (u, v):
                if not graph.has_node(node):
                    graph.add_node(node)
            if u == v:
                continue  # crawls occasionally contain self-loops; skip
            graph.add_edge(u, v, tau_uv, reverse_tightness=tau_vu)
    return graph


def save_json(graph: SocialGraph, path: PathLike) -> None:
    """Write ``graph`` as JSON (lossless)."""
    payload = {
        "default_lambda": graph.default_lambda,
        "nodes": [
            {
                "id": node,
                "interest": graph.interest(node),
                "lambda": graph.lam(node),
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": u,
                "target": v,
                "tightness": graph.tightness(u, v),
                "reverse_tightness": graph.tightness(v, u),
            }
            for u, v in graph.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = SocialGraph(default_lambda=payload.get("default_lambda"))
    for node in payload["nodes"]:
        graph.add_node(
            node["id"],
            interest=node["interest"],
            lam=node.get("lambda"),
        )
    for edge in payload["edges"]:
        graph.add_edge(
            edge["source"],
            edge["target"],
            edge["tightness"],
            reverse_tightness=edge.get("reverse_tightness"),
        )
    return graph
