"""Social-graph substrate for the WASO reproduction.

This subpackage provides:

* :class:`~repro.graph.social_graph.SocialGraph` — the weighted social
  network (interest scores on nodes, possibly-asymmetric tightness scores on
  edges) that every solver operates on;
* :class:`~repro.graph.compiled.CompiledGraph` — the one-shot flat-array
  (CSR) freeze of a graph that the randomized solvers' hot paths run on
  (see the module docstring for the performance architecture);
* :mod:`~repro.graph.scores` — the interest / tightness score models the
  paper cites (power-law interest, common-neighbour tightness);
* :mod:`~repro.graph.generators` — synthetic stand-ins for the paper's
  Facebook / DBLP / Flickr crawls plus the paper's illustrative toy graphs;
* :mod:`~repro.graph.io` — persistence (edge list, JSON) and the
  content-addressed frozen-index cache (``ingest_edge_list`` /
  ``load_cached_graph`` / ``resolve_graph_source``);
* :mod:`~repro.graph.storage` — the versioned on-disk format behind
  ``CompiledGraph.save`` / ``CompiledGraph.load`` (raw little-endian
  arrays + JSON manifest, mmap-ready);
* :mod:`~repro.graph.stats` — summary statistics used to validate that the
  generated graphs sit in the same regime as the paper's datasets.
"""

from repro.graph.social_graph import SocialGraph
from repro.graph.compiled import CompiledGraph
from repro.graph.scores import (
    CommonNeighbourTightness,
    PowerLawInterestModel,
    normalize_scores,
)
from repro.graph.generators import (
    community_social_graph,
    dblp_like,
    facebook_like,
    figure1_graph,
    figure3_graph,
    flickr_like,
    grid_graph,
    random_social_graph,
    ring_graph,
)
from repro.graph.io import (
    ingest_edge_list,
    load_cached_graph,
    load_edge_list,
    load_json,
    resolve_graph_source,
    save_edge_list,
    save_json,
)
from repro.graph.stats import GraphSummary, summarize

__all__ = [
    "SocialGraph",
    "CompiledGraph",
    "PowerLawInterestModel",
    "CommonNeighbourTightness",
    "normalize_scores",
    "community_social_graph",
    "facebook_like",
    "dblp_like",
    "flickr_like",
    "random_social_graph",
    "grid_graph",
    "ring_graph",
    "figure1_graph",
    "figure3_graph",
    "load_edge_list",
    "save_edge_list",
    "load_json",
    "save_json",
    "ingest_edge_list",
    "load_cached_graph",
    "resolve_graph_source",
    "GraphSummary",
    "summarize",
]
