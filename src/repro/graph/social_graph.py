"""The social graph data structure used throughout the library.

The paper's input is a social network ``G = (V, E)`` where every node carries
an *interest score* ``η_i`` (how much the person likes the activity topic)
and every edge carries a *social tightness score* ``τ_ij`` (how close the two
friends are).  Tightness is **not necessarily symmetric** (§2.1): ``τ_ij``
may differ from ``τ_ji``, although the *presence* of a friendship edge is
symmetric.  :class:`SocialGraph` therefore stores an undirected edge set with
one tightness value per direction.

Each node may additionally carry the footnote-7 weighting ``λ_i`` that
trades interest against tightness; ``None`` (the default) selects the plain
Eq. (1) objective where both terms have unit weight.

The structure is a plain adjacency-dictionary design (the same layout
``networkx`` uses) so that neighbourhood iteration — the hot operation in
every sampler — is a dict scan with no indirection.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)

NodeId = Hashable


@dataclass
class NodeData:
    """Per-node attributes: interest score ``η``, optional weight ``λ``,
    and free-form metadata (location, gender, availability, ... — the
    attributes the paper's future-work section wants to filter on)."""

    interest: float = 0.0
    lam: Optional[float] = None
    metadata: Optional[dict] = None

    def weights(self) -> tuple[float, float]:
        """Return the ``(interest_weight, tightness_weight)`` pair.

        ``λ = None`` means the plain Eq. (1) objective ``(1, 1)``;
        otherwise the footnote-7 weighting ``(λ, 1 − λ)``.
        """
        if self.lam is None:
            return 1.0, 1.0
        return self.lam, 1.0 - self.lam


class SocialGraph:
    """Undirected social network with directed tightness scores.

    Parameters
    ----------
    default_lambda:
        Value of ``λ`` assigned to nodes added without an explicit one.
        ``None`` (default) keeps the plain Eq. (1) objective.

    Notes
    -----
    * ``add_edge(u, v, t)`` creates the friendship with ``τ_uv = τ_vu = t``;
      pass ``reverse_tightness`` for the asymmetric case.
    * All mutators validate their arguments and raise subclasses of
      :class:`~repro.exceptions.GraphError` on misuse.
    """

    def __init__(self, default_lambda: Optional[float] = None) -> None:
        if default_lambda is not None and not 0.0 <= default_lambda <= 1.0:
            raise GraphError(
                f"default_lambda must lie in [0, 1], got {default_lambda}"
            )
        self.default_lambda = default_lambda
        self._nodes: dict[NodeId, NodeData] = {}
        # _adj[u][v] == tau_{u,v} (tightness *from* u's perspective).
        self._adj: dict[NodeId, dict[NodeId, float]] = {}
        # Mutation counter keying the compiled-index cache (see compiled()).
        self._mutation_count = 0
        self._compiled_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        interest: float = 0.0,
        lam: Optional[float] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        """Add ``node`` with the given interest score.

        Raises :class:`DuplicateNodeError` if the id already exists.
        """
        if node in self._nodes:
            raise DuplicateNodeError(node)
        if lam is None:
            lam = self.default_lambda
        if lam is not None and not 0.0 <= lam <= 1.0:
            raise GraphError(f"lambda must lie in [0, 1], got {lam}")
        if not math.isfinite(interest):
            raise GraphError(f"interest score must be finite, got {interest}")
        self._nodes[node] = NodeData(
            interest=float(interest),
            lam=lam,
            metadata=dict(metadata) if metadata else None,
        )
        self._adj[node] = {}
        self._mutation_count += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        self._require_node(node)
        for neighbour in list(self._adj[node]):
            del self._adj[neighbour][node]
        del self._adj[node]
        del self._nodes[node]
        self._mutation_count += 1

    def has_node(self, node: NodeId) -> bool:
        return node in self._nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._nodes)

    def node_list(self) -> list[NodeId]:
        """Return node ids as a list (stable insertion order)."""
        return list(self._nodes)

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def interest(self, node: NodeId) -> float:
        """Interest score ``η`` of ``node``."""
        return self._require_node(node).interest

    def set_interest(self, node: NodeId, interest: float) -> None:
        if not math.isfinite(interest):
            raise GraphError(f"interest score must be finite, got {interest}")
        self._require_node(node).interest = float(interest)
        self._mutation_count += 1

    def lam(self, node: NodeId) -> Optional[float]:
        """Per-node weighting ``λ`` (``None`` = plain Eq. 1)."""
        return self._require_node(node).lam

    def set_lam(self, node: NodeId, lam: Optional[float]) -> None:
        if lam is not None and not 0.0 <= lam <= 1.0:
            raise GraphError(f"lambda must lie in [0, 1], got {lam}")
        self._require_node(node).lam = lam
        self._mutation_count += 1

    def weights(self, node: NodeId) -> tuple[float, float]:
        """``(interest_weight, tightness_weight)`` for ``node``."""
        return self._require_node(node).weights()

    def metadata(self, node: NodeId) -> dict:
        """Free-form attribute mapping of ``node`` (empty if none set)."""
        data = self._require_node(node).metadata
        return data if data is not None else {}

    def set_metadata(self, node: NodeId, **attributes) -> None:
        """Merge ``attributes`` into ``node``'s metadata."""
        data = self._require_node(node)
        if data.metadata is None:
            data.metadata = {}
        data.metadata.update(attributes)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        tightness: float,
        reverse_tightness: Optional[float] = None,
    ) -> None:
        """Create the friendship ``{source, target}``.

        ``tightness`` is ``τ_{source,target}``; ``reverse_tightness``
        defaults to the same value (the symmetric case used by all the
        paper's illustrations).
        """
        if source == target:
            raise GraphError(f"self-loops are not allowed (node {source!r})")
        self._require_node(source)
        self._require_node(target)
        if reverse_tightness is None:
            reverse_tightness = tightness
        for value in (tightness, reverse_tightness):
            if not math.isfinite(value):
                raise GraphError(f"tightness must be finite, got {value}")
        self._adj[source][target] = float(tightness)
        self._adj[target][source] = float(reverse_tightness)
        self._mutation_count += 1

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        self._require_edge(source, target)
        del self._adj[source][target]
        del self._adj[target][source]
        self._mutation_count += 1

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        return source in self._adj and target in self._adj[source]

    def tightness(self, source: NodeId, target: NodeId) -> float:
        """Directed tightness ``τ_{source,target}``."""
        self._require_edge(source, target)
        return self._adj[source][target]

    def set_tightness(
        self, source: NodeId, target: NodeId, tightness: float
    ) -> None:
        """Overwrite one direction of an existing edge."""
        self._require_edge(source, target)
        if not math.isfinite(tightness):
            raise GraphError(f"tightness must be finite, got {tightness}")
        self._adj[source][target] = float(tightness)
        self._mutation_count += 1

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over undirected edges, each reported once."""
        seen: set[frozenset] = set()
        for source, targets in self._adj.items():
            for target in targets:
                key = frozenset((source, target))
                if key not in seen:
                    seen.add(key)
                    yield source, target

    def number_of_edges(self) -> int:
        return sum(len(t) for t in self._adj.values()) // 2

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        self._require_node(node)
        return iter(self._adj[node])

    def neighbor_tightness(self, node: NodeId) -> Mapping[NodeId, float]:
        """Read-only view of ``node``'s outgoing tightness map."""
        self._require_node(node)
        return self._adj[node]

    def degree(self, node: NodeId) -> int:
        self._require_node(node)
        return len(self._adj[node])

    def average_degree(self) -> float:
        if not self._nodes:
            return 0.0
        return 2.0 * self.number_of_edges() / len(self._nodes)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def node_potential(self, node: NodeId) -> float:
        """Score used by CBAS phase 1 to rank start-node candidates.

        The paper "adds the interest score and the social tightness scores
        of incident edges" (§3.1); with per-node weights this becomes
        ``a_v·η_v + b_v·Σ τ_vj``.
        """
        a, b = self.weights(node)
        return a * self.interest(node) + b * sum(self._adj[node].values())

    def pair_weight(self, source: NodeId, target: NodeId) -> float:
        """Willingness contributed by edge ``{source, target}`` when both
        endpoints are selected: ``b_s·τ_st + b_t·τ_ts``."""
        _, b_s = self.weights(source)
        _, b_t = self.weights(target)
        return b_s * self.tightness(source, target) + b_t * self.tightness(
            target, source
        )

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------
    def component_of(self, node: NodeId) -> set[NodeId]:
        """Connected component containing ``node`` (BFS)."""
        self._require_node(node)
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            for neighbour in self._adj[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def connected_components(self) -> list[set[NodeId]]:
        """All connected components, largest first."""
        remaining = set(self._nodes)
        components: list[set[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            component = self.component_of(start)
            components.append(component)
            remaining -= component
        components.sort(key=len, reverse=True)
        return components

    def is_connected_subset(self, nodes: Iterable[NodeId]) -> bool:
        """True iff the subgraph induced by ``nodes`` is connected.

        The empty set is vacuously connected; all nodes must exist.
        """
        subset = set(nodes)
        for node in subset:
            self._require_node(node)
        if len(subset) <= 1:
            return True
        start = next(iter(subset))
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour in self._adj[current]:
                if neighbour in subset and neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return len(seen) == len(subset)

    # ------------------------------------------------------------------
    # Compiled index
    # ------------------------------------------------------------------
    def compiled(self):
        """Cached :class:`~repro.graph.compiled.CompiledGraph` of this graph.

        The flat-array index is frozen on first access and reused across
        repeated solves / re-planning rounds; any structural or score
        mutation invalidates it (keyed by an internal mutation counter).
        The cache travels with the graph when pickled, so process-pool
        workers receive the arrays instead of re-freezing the dicts.
        """
        cache = self._compiled_cache
        if cache is not None and cache[0] == self._mutation_count:
            return cache[1]
        from repro.graph.compiled import CompiledGraph

        compiled = CompiledGraph.from_graph(self)
        self._compiled_cache = (self._mutation_count, compiled)
        return compiled

    def compiled_if_cached(self):
        """The cached compiled index, or ``None`` without a fresh freeze.

        Lets read paths (e.g. ``WASOProblem.ensure_feasible``) reuse the
        frozen component structure opportunistically without forcing a
        freeze on graphs that only ever run the reference engine.
        """
        cache = self._compiled_cache
        if cache is not None and cache[0] == self._mutation_count:
            return cache[1]
        return None

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "SocialGraph":
        clone = SocialGraph(default_lambda=self.default_lambda)
        for node, data in self._nodes.items():
            clone._nodes[node] = NodeData(
                interest=data.interest,
                lam=data.lam,
                metadata=dict(data.metadata) if data.metadata else None,
            )
            clone._adj[node] = dict(self._adj[node])
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "SocialGraph":
        """Induced subgraph on ``nodes`` (copies attributes)."""
        subset = set(nodes)
        sub = SocialGraph(default_lambda=self.default_lambda)
        for node in subset:
            data = self._require_node(node)
            sub._nodes[node] = NodeData(
                interest=data.interest,
                lam=data.lam,
                metadata=dict(data.metadata) if data.metadata else None,
            )
            sub._adj[node] = {}
        for node in subset:
            for neighbour, tau in self._adj[node].items():
                if neighbour in subset:
                    sub._adj[node][neighbour] = tau
        return sub

    def merge_nodes(
        self, first: NodeId, second: NodeId, merged: Optional[NodeId] = None
    ) -> NodeId:
        """Merge two nodes into one — the paper's *couple* transform (§2.2).

        The merged node gets ``η = η_i + η_j`` and, for each outside
        neighbour ``b``, tightness ``τ_{a,b} = τ_{i,b} + τ_{j,b}`` (and the
        symmetric inward sum).  Returns the merged node id, which defaults
        to ``first``.
        """
        data_first = self._require_node(first)
        data_second = self._require_node(second)
        if first == second:
            raise GraphError("cannot merge a node with itself")
        if merged is None:
            merged = first
        if merged not in (first, second) and merged in self._nodes:
            raise DuplicateNodeError(merged)

        out_combined: dict[NodeId, float] = {}
        in_combined: dict[NodeId, float] = {}
        for part in (first, second):
            for neighbour, tau in self._adj[part].items():
                if neighbour in (first, second):
                    continue
                out_combined[neighbour] = out_combined.get(neighbour, 0.0) + tau
                in_combined[neighbour] = (
                    in_combined.get(neighbour, 0.0) + self._adj[neighbour][part]
                )

        interest = data_first.interest + data_second.interest
        lam = data_first.lam
        self.remove_node(first)
        self.remove_node(second)
        self.add_node(merged, interest=interest, lam=lam)
        for neighbour, tau_out in out_combined.items():
            self.add_edge(
                merged,
                neighbour,
                tau_out,
                reverse_tightness=in_combined[neighbour],
            )
        return merged

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (tightness on directed arcs)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node, data in self._nodes.items():
            graph.add_node(node, interest=data.interest, lam=data.lam)
        for node, targets in self._adj.items():
            for target, tau in targets.items():
                graph.add_edge(node, target, tightness=tau)
        return graph

    @classmethod
    def from_networkx(cls, graph, default_lambda=None) -> "SocialGraph":
        """Build from a networkx (di)graph.

        Node attribute ``interest`` and edge attribute ``tightness`` are
        honoured and default to 0.0 / 1.0 when absent.
        """
        social = cls(default_lambda=default_lambda)
        for node, data in graph.nodes(data=True):
            social.add_node(
                node,
                interest=float(data.get("interest", 0.0)),
                lam=data.get("lam", default_lambda),
            )
        directed = graph.is_directed()
        for source, target, data in graph.edges(data=True):
            tau = float(data.get("tightness", 1.0))
            if directed:
                reverse = graph.get_edge_data(target, source)
                if reverse is None:
                    reverse_tau = tau
                else:
                    reverse_tau = float(reverse.get("tightness", 1.0))
                if not social.has_edge(source, target):
                    social.add_edge(
                        source, target, tau, reverse_tightness=reverse_tau
                    )
            else:
                social.add_edge(source, target, tau)
        return social

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_node(self, node: NodeId) -> NodeData:
        try:
            return self._nodes[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def _require_edge(self, source: NodeId, target: NodeId) -> None:
        self._require_node(source)
        self._require_node(target)
        if target not in self._adj[source]:
            raise EdgeNotFoundError(source, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SocialGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
