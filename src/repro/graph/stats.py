"""Summary statistics for social graphs.

Used by the dataset generators' tests and the benchmark harness to confirm
that a synthetic graph sits in the same regime as the crawl it stands in
for (average degree, clustering, component structure, score ranges).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.graph.social_graph import SocialGraph

__all__ = ["GraphSummary", "summarize", "degree_histogram"]


@dataclass
class GraphSummary:
    """Compact description of a social graph's shape and scores."""

    nodes: int
    edges: int
    average_degree: float
    max_degree: int
    clustering: float
    components: int
    largest_component: int
    interest_mean: float
    interest_max: float
    tightness_mean: float
    tightness_max: float

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "average_degree": self.average_degree,
            "max_degree": self.max_degree,
            "clustering": self.clustering,
            "components": self.components,
            "largest_component": self.largest_component,
            "interest_mean": self.interest_mean,
            "interest_max": self.interest_max,
            "tightness_mean": self.tightness_mean,
            "tightness_max": self.tightness_max,
        }

    def __str__(self) -> str:
        return (
            f"n={self.nodes} m={self.edges} "
            f"deg(avg={self.average_degree:.2f}, max={self.max_degree}) "
            f"cc={self.clustering:.3f} "
            f"components={self.components} "
            f"(largest {self.largest_component}) "
            f"interest(mean={self.interest_mean:.3f}) "
            f"tightness(mean={self.tightness_mean:.3f})"
        )


def _local_clustering(graph: SocialGraph, node) -> float:
    """Fraction of a node's neighbour pairs that are themselves linked."""
    neighbours = list(graph.neighbors(node))
    degree = len(neighbours)
    if degree < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbours):
        for v in neighbours[i + 1:]:
            if graph.has_edge(u, v):
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def summarize(graph: SocialGraph, clustering_sample: int = 200) -> GraphSummary:
    """Compute a :class:`GraphSummary`.

    Clustering is averaged over at most ``clustering_sample`` nodes (the
    first ones in insertion order — deterministic) to stay cheap on large
    graphs.
    """
    nodes = graph.node_list()
    degrees = [graph.degree(node) for node in nodes]
    interests = [graph.interest(node) for node in nodes]
    tightness_values = []
    for u, v in graph.edges():
        tightness_values.append(graph.tightness(u, v))
        tightness_values.append(graph.tightness(v, u))

    sample = nodes[: max(1, clustering_sample)]
    clustering = (
        statistics.fmean(_local_clustering(graph, node) for node in sample)
        if sample
        else 0.0
    )
    components = graph.connected_components()

    return GraphSummary(
        nodes=len(nodes),
        edges=graph.number_of_edges(),
        average_degree=graph.average_degree(),
        max_degree=max(degrees, default=0),
        clustering=clustering,
        components=len(components),
        largest_component=len(components[0]) if components else 0,
        interest_mean=statistics.fmean(interests) if interests else 0.0,
        interest_max=max(interests, default=0.0),
        tightness_mean=(
            statistics.fmean(tightness_values) if tightness_values else 0.0
        ),
        tightness_max=max(tightness_values, default=0.0),
    )


def degree_histogram(graph: SocialGraph, bins: int = 10) -> list[int]:
    """Histogram of node degrees with ``bins`` equal-width buckets."""
    if bins < 1:
        raise ValueError(f"bins must be positive, got {bins}")
    degrees = [graph.degree(node) for node in graph.nodes()]
    if not degrees:
        return [0] * bins
    top = max(degrees)
    width = max(1, (top + bins) // bins)
    histogram = [0] * bins
    for degree in degrees:
        histogram[min(bins - 1, degree // width)] += 1
    return histogram
