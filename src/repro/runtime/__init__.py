"""Unified runtime layer: engines, pools, routing, and batched serving.

This package is the single place execution state lives:

* :class:`~repro.runtime.context.ExecutionContext` — owns engine
  selection, the lazily-created resident worker pools (solve-level and
  stage-level), warm-state storage, and the mode router; solvers, the
  online planner, the CLI, and the bench harness all construct their
  execution state through it.
* :mod:`~repro.runtime.router` — the cost model that resolves
  ``mode="auto"`` to ``serial`` / ``solve`` / ``stage`` per request,
  replacing the old rule-of-thumb comment in :mod:`repro.parallel`.
* :class:`~repro.runtime.requests.SolveRequest` /
  :func:`~repro.runtime.requests.request_from_spec` — the request
  objects :meth:`ExecutionContext.solve_many
  <repro.runtime.context.ExecutionContext.solve_many>` batches.
"""

from repro.runtime.context import ExecutionContext
from repro.runtime.requests import (
    SolveRequest,
    request_from_spec,
    valid_spec_keys,
)
from repro.runtime.router import (
    MODES,
    budget_for_slo,
    budget_ladder,
    choose_mode,
    validate_mode,
)

__all__ = [
    "ExecutionContext",
    "SolveRequest",
    "request_from_spec",
    "valid_spec_keys",
    "MODES",
    "budget_for_slo",
    "budget_ladder",
    "choose_mode",
    "validate_mode",
]
