"""Cost-model routing between the execution modes.

PR 3 left the choice between the two parallel modes to a rule-of-thumb
comment in :mod:`repro.parallel` ("one big solve → stage-level; many
small solves → solve-level").  This module turns that comment into
tested code: :func:`choose_mode` answers, for one request of size
``(n, budget)`` arriving in a batch of ``batch_size``, which execution
mode the runtime should use.

The model behind the thresholds
-------------------------------
A solve's work is roughly proportional to ``n × T`` — ``T`` complete
samples, each an O(k·deg) expansion whose constant grows with the graph
(frontier size, CE vector width).  Parallel execution buys that work
with fixed overheads:

* **stage mode** pays one RPC round per OCBA stage (ship shard budgets +
  CE patches, collect summaries) plus a one-off O(V+E) payload install,
  so it only wins when the per-stage draw work dwarfs the round trips —
  a *single large* solve;
* **solve mode** historically paid one O(V+E) graph pickle per worker
  chunk *per batch*; since the solve-level pool became resident
  (:class:`~repro.parallel.pool.ResidentSolvePool`), that cost is paid
  at most once per (graph, worker) *session*, and what remains per
  request is a fixed dispatch overhead — an O(1) payload-spec pickle
  out, one result pickle back, one solver construction in the worker.
  Each worker still refits its CE vectors from only its own requests'
  evidence, which is exactly right for *many independent* requests:
  every request runs serially inside one worker at full statistical
  strength;
* **serial** pays nothing, and on one core is also the fastest option.

``STAGE_WORK_THRESHOLD`` is calibrated from the repo's own benches: the
Fig. 5(d) stage-parallel point (n=600, T=1600 → 9.6e5) and the
``BENCH_sampler`` gate point (n=10k, T=3200 → 3.2e7) must route to
stage mode, while the test-suite-sized solves (n≈200, T≈120 → 2.4e4)
must stay serial — their wall clock is smaller than a handful of RPCs.

``MIN_SOLVE_WORK`` is the re-calibration for the resident path: the old
model multiplexed *any* multi-request batch, because batching was what
amortized the per-chunk graph pickle.  With the graph resident, the
per-request overhead no longer scales with the graph at all, so the
threshold compares a request's work volume ``n × T`` against the fixed
dispatch round trip instead — only genuinely tiny solves (n·T below a
few thousand; sub-millisecond inline) now stay out of the pool, and
budget-less solvers (T=0, e.g. DGreedy), whose work the model cannot
see, conservatively run inline.
"""

from __future__ import annotations

import os

__all__ = [
    "MODES",
    "STAGE_WORK_THRESHOLD",
    "MIN_STAGE_BUDGET",
    "MIN_SOLVE_WORK",
    "VECTOR_SPEEDUP",
    "MIN_SLO_BUDGET",
    "MAX_SLO_BUDGET",
    "SLO_HEADROOM",
    "budget_ladder",
    "budget_for_slo",
    "validate_mode",
    "choose_mode",
]

#: Execution modes the runtime understands.  ``auto`` resolves to one of
#: the other three via :func:`choose_mode`.
MODES = ("auto", "serial", "solve", "stage")

#: Minimum ``n × budget`` work volume before stage-sharding a single
#: solve beats running it inline (see the module docstring's
#: calibration).
STAGE_WORK_THRESHOLD = 500_000

#: Below this budget a solve has too few draws per (stage, start, shard)
#: for the shard protocol to amortize, whatever the graph size.
MIN_STAGE_BUDGET = 256

#: Minimum ``n × budget`` work volume before multiplexing a batched
#: request onto the resident solve-level pool beats solving it inline
#: (see the module docstring: the resident protocol removed the
#: per-batch graph pickle, leaving only the fixed per-request dispatch
#: round trip to amortize).
MIN_SOLVE_WORK = 2_000

#: How much faster the vector engine's batched kernel clears one unit of
#: ``n × budget`` work than the scalar compiled kernels (the
#: ``BENCH_sampler`` vector gate demands ≥ 5× over the reference path,
#: i.e. ≈ 2× over compiled; 4 is the conservative routing figure).  A
#: vector request's work volume is divided by this before both
#: break-even tests: a solve must be that much larger before sharding
#: (or multiplexing) outruns the in-process kernel.
VECTOR_SPEEDUP = 4


def validate_mode(mode: str) -> str:
    """Validate and return an execution mode name."""
    if mode not in MODES:
        raise ValueError(
            f"mode must be one of {'|'.join(MODES)}, got {mode!r}"
        )
    return mode


def choose_mode(
    n: int,
    budget: int,
    batch_size: int = 1,
    workers: "int | None" = None,
    cpu_count: "int | None" = None,
    healthy: bool = True,
    engine: str = "compiled",
) -> str:
    """Pick the execution mode for one request.

    Parameters
    ----------
    n:
        Number of graph nodes the request solves over.
    budget:
        The request's sample budget ``T`` (0 for budget-less solvers
        such as DGreedy — they always route serial).
    batch_size:
        How many requests share the call (``solve_many`` passes the
        batch length; single solves pass 1).
    workers:
        Requested worker count (``None`` = one per CPU).  The effective
        parallelism is capped by ``cpu_count`` — asking for 8 workers on
        one core buys nothing, so the router degrades to serial there.
    cpu_count:
        Override for ``os.cpu_count()`` (tests).
    healthy:
        Whether the runtime's pools are trustworthy.  ``False`` — a
        pool has exhausted its crash-retry budget — routes everything
        serial: in-parent execution is the graceful-degradation floor
        that cannot be taken out by dying workers.
    engine:
        The request's sampling engine.  ``"vector"`` clears work
        :data:`VECTOR_SPEEDUP` times faster in-process, which moves both
        parallel break-evens up by the same factor.

    Returns one of ``"serial"`` / ``"solve"`` / ``"stage"`` — never
    ``"auto"``, and always ``"serial"`` on a single-CPU machine.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not healthy:
        # Degraded runtime: keep serving, without the pools.
        return "serial"
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    effective = min(workers, cpus) if workers is not None else cpus
    if effective <= 1:
        # One core: every parallel mode only adds process overhead.
        return "serial"
    work = n * budget
    if engine == "vector":
        work //= VECTOR_SPEEDUP
    if budget >= MIN_STAGE_BUDGET and work >= STAGE_WORK_THRESHOLD:
        # A single large solve: only stage-sharding can accelerate it
        # (splitting its budget would weaken the CE fit instead), and
        # that holds whether it arrives alone or inside a batch.
        return "stage"
    if batch_size > 1 and work >= MIN_SOLVE_WORK:
        # Many small solves: multiplex whole requests onto the resident
        # solve-level pool, each running serially at full statistical
        # strength inside one worker.  Requests below the work floor
        # (including budget-less solvers, whose work the model cannot
        # see) finish inline faster than their dispatch round trip.
        return "solve"
    return "serial"


# ----------------------------------------------------------------------
# SLO inversion — the serving daemon's budget selection
# ----------------------------------------------------------------------
# :func:`choose_mode` answers "given a budget T, how should it run?".
# The serving daemon asks the inverse question: "given a latency SLO,
# what is the *largest* budget T this hardware can honour?" — more
# budget is strictly better for solution quality (the paper's Fig. 5(b)
# willingness-vs-T curves), so a latency target should buy as many
# samples as it can.  :func:`budget_for_slo` scans a geometric budget
# ladder from the top and returns the first candidate whose predicted
# latency (work volume over an observed work rate) fits inside the SLO,
# together with the mode that candidate would route to and the latency
# it promises.  The work rate is the caller's: the serving layer
# calibrates it online per (engine, mode) from observed solve latencies
# (:class:`repro.serving.slo.LatencyCalibrator`), so the same SLO buys
# more samples on faster hardware — and fewer as the machine saturates.

#: Smallest budget the SLO planner will promise.  Below this a CE solve
#: is statistically meaningless; a request whose SLO cannot even buy
#: this floor is still served at the floor (with the overrun recorded)
#: — admission control and deadlines, not the planner, are the layers
#: that refuse work.
MIN_SLO_BUDGET = 32

#: Largest budget the SLO planner will spend on one request, however
#: generous its SLO — past this the willingness curve is flat and the
#: samples are better spent on other tenants.
MAX_SLO_BUDGET = 25_600

#: Fraction of the SLO the planner is allowed to promise.  The model is
#: an EWMA over noisy observations; the slack absorbs queueing and
#: dispatch overhead so the *achieved* latency lands inside the SLO.
SLO_HEADROOM = 0.8


def budget_ladder(
    lo: int = MIN_SLO_BUDGET, hi: int = MAX_SLO_BUDGET
) -> "tuple[int, ...]":
    """Geometric budget candidates from ``lo`` to ``hi``, ascending.

    Steps of ×1.5 keep the ladder short (~16 rungs over the default
    range) while guaranteeing the chosen budget is within ~33% of the
    true maximum the SLO could buy.
    """
    if lo < 1 or hi < lo:
        raise ValueError(f"need 1 <= lo <= hi, got lo={lo}, hi={hi}")
    rungs = []
    step = lo
    while step < hi:
        rungs.append(step)
        step = max(step + 1, int(step * 1.5))
    rungs.append(hi)
    return tuple(rungs)


def budget_for_slo(
    n: int,
    slo_s: float,
    work_rate,
    batch_size: int = 1,
    workers: "int | None" = None,
    cpu_count: "int | None" = None,
    healthy: bool = True,
    engine: str = "compiled",
    min_budget: int = MIN_SLO_BUDGET,
    max_budget: int = MAX_SLO_BUDGET,
    headroom: float = SLO_HEADROOM,
) -> "tuple[int, str, float]":
    """Largest ``(budget, mode, promised_s)`` that fits a latency SLO.

    Parameters
    ----------
    n, batch_size, workers, cpu_count, healthy, engine:
        As in :func:`choose_mode` — every candidate budget is routed
        through it, so the promise accounts for the mode the request
        would actually run in (a degraded runtime plans against its
        serial work rate, not the pools').
    slo_s:
        The request's end-to-end latency objective in seconds.
    work_rate:
        ``callable(mode) -> float``: observed work units (``n × T``)
        cleared per second of solve wall clock when running in
        ``mode``.  The serving layer passes its online calibrator.
    min_budget / max_budget / headroom:
        Planner bounds (see the module constants).

    Returns ``(budget, mode, promised_s)``.  ``promised_s`` is the
    predicted latency of the chosen budget; it exceeds
    ``headroom × slo_s`` only when even ``min_budget`` does not fit —
    the caller should surface that overrun rather than refuse the
    request.
    """
    if slo_s <= 0:
        raise ValueError(f"slo_s must be positive, got {slo_s}")
    if not 0 < headroom <= 1:
        raise ValueError(f"headroom must be in (0, 1], got {headroom}")

    def _candidate(budget: int) -> "tuple[int, str, float]":
        mode = choose_mode(
            n=n,
            budget=budget,
            batch_size=batch_size,
            workers=workers,
            cpu_count=cpu_count,
            healthy=healthy,
            engine=engine,
        )
        rate = float(work_rate(mode))
        if rate <= 0:
            raise ValueError(f"work_rate({mode!r}) must be positive")
        return budget, mode, (n * budget) / rate

    allowance = headroom * slo_s
    for budget in reversed(budget_ladder(min_budget, max_budget)):
        candidate = _candidate(budget)
        if candidate[2] <= allowance:
            return candidate
    # Nothing fits: serve the floor anyway and let the caller record
    # the promised overrun (shedding is admission control's job).
    return _candidate(min_budget)
