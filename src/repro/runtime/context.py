"""The unified runtime layer: one object owns everything between a
request and a :class:`~repro.core.solution.GroupSolution`.

Before this layer existed the execution machinery was scattered: engine
selection lived on every solver constructor, the solve-level pool behind
:class:`~repro.parallel.pool.ParallelSolver`, the stage-level pool
behind :class:`~repro.parallel.stage_pool.StagePool`, warm states on the
:class:`~repro.online.replanning.OnlinePlanner`, and the choice between
the parallel modes in a rule-of-thumb comment.  :class:`ExecutionContext`
consolidates all of it:

* **engine selection** — ``engine="compiled"|"reference"``, inherited by
  every solver the context builds;
* **pool lifecycle** — the solve-level :class:`~repro.parallel.pool.
  ResidentSolvePool` and the stage-level :class:`~repro.parallel.
  stage_pool.StagePool` are created lazily, stay resident across
  solves, batches, and re-planning rounds — each graph's detached
  arrays are shipped **at most once per (graph, worker) pair**, per the
  shared residency protocol in :mod:`repro.parallel.residency` — are
  reference-counted across co-owners (:meth:`acquire` /
  :meth:`release`), and are torn down by :meth:`close` or
  ``with``-exit;
* **mode routing** — ``mode="auto"`` resolves per request through the
  cost model in :mod:`repro.runtime.router`; ``"serial"`` / ``"solve"``
  / ``"stage"`` force a mode;
* **warm-state storage** — :class:`~repro.algorithms.cbas.CBASWarmState`
  snapshots keyed by caller token, so online re-planning and repeated
  requests share one place (and one resident pool) for cross-solve
  state;
* **the batched front door** — :meth:`solve_many` multiplexes a list of
  heterogeneous :class:`~repro.runtime.requests.SolveRequest`\\ s over
  one shared compiled graph, with results bit-identical to solving the
  requests one by one.

Construction stays cheap: a context created and never used for parallel
work starts no processes.  Solvers constructed *without* a context get a
private serial one, which keeps the historical direct-call behaviour —
``CBASND().solve(problem, rng=7)`` remains bit-identical to every
previous release.

The context is not thread-safe: like the stage pool it serves one solve
at a time (concurrency comes from the worker processes underneath).
"""

from __future__ import annotations

import inspect
import os
import time
import traceback
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import (
    RngLike,
    Solver,
    SolveResult,
    SolveStats,
)
from repro.algorithms.stage_exec import SerialStageExecutor, StageExecutor
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import evaluator_for as _evaluator_for
from repro.core.willingness import validate_engine
from repro.exceptions import BatchExecutionError, RequestFailure
from repro.parallel.residency import record_recovery, record_shipping
from repro.runtime.requests import SolveRequest
from repro.runtime.router import choose_mode, validate_mode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.pool import ResidentSolvePool
    from repro.parallel.stage_pool import StagePool

__all__ = ["ExecutionContext"]


def _factory_params(name: str):
    """Constructor parameters of a registry solver (VAR_KEYWORD aware)."""
    from repro.algorithms.registry import solver_factory

    signature = inspect.signature(solver_factory(name))
    params = signature.parameters
    open_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    return params, open_kwargs


class ExecutionContext:
    """Owns engines, pools, routing, and warm state for a serving session.

    Parameters
    ----------
    engine:
        Default execution engine for solvers built through the context.
    mode:
        Routing policy: ``"auto"`` (cost-model router, the default),
        or a forced ``"serial"`` / ``"solve"`` / ``"stage"``.
    workers:
        Worker count for both pools (``None`` = one per CPU).  The
        auto-router caps it by the CPU count; an explicit mode honours
        it as given (oversubscription is the caller's choice).
    executor:
        Explicit :class:`~repro.algorithms.stage_exec.StageExecutor`
        override — every staged solve runs on it, bypassing the router.
        This is what the solvers' deprecated ``executor=`` kwarg
        delegates to.
    stage_pool / solve_pool:
        Caller-owned pools to run on instead of lazily creating owned
        ones; shared pools are never closed by this context.
    cpu_count:
        Override for ``os.cpu_count()`` (tests).
    max_retries:
        Crash-retry budget for the owned pools (``None`` = the pools'
        default, :data:`~repro.parallel.residency.DEFAULT_MAX_RETRIES`).
        Once a pool exhausts it, the context goes *degraded*: the
        affected requests re-run serially in-parent
        (``degraded_to_serial`` in their stats) and the router sends
        everything serial until :meth:`close` discards the pools.
    """

    def __init__(
        self,
        engine: str = "compiled",
        mode: str = "auto",
        workers: Optional[int] = None,
        executor: Optional[StageExecutor] = None,
        stage_pool: "Optional[StagePool]" = None,
        solve_pool: "Optional[ResidentSolvePool]" = None,
        cpu_count: Optional[int] = None,
        max_retries: Optional[int] = None,
    ) -> None:
        self.engine = validate_engine(engine)
        self.mode = validate_mode(mode)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_retries is not None and max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.workers = workers
        self.max_retries = max_retries
        self._cpu_count = cpu_count
        self._executor_override = executor
        self._serial_executor = SerialStageExecutor()
        self._vector_executor: Optional[StageExecutor] = None
        self._stage_pool = stage_pool
        self._owns_stage_pool = stage_pool is None
        self._solve_pool = solve_pool
        self._owns_solve_pool = solve_pool is None
        self._warm_states: dict = {}
        self._mode_force: Optional[str] = None
        self._degraded = False
        self._refs = 1

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def cpu_count(self) -> int:
        return self._cpu_count or os.cpu_count() or 1

    @property
    def effective_workers(self) -> int:
        """Worker count the pools are sized with."""
        return self.workers if self.workers is not None else self.cpu_count

    @property
    def degraded(self) -> bool:
        """Has a pool exhausted its crash-retry budget?

        While degraded the router sends everything serial (in-parent
        execution is the floor dying workers cannot take out); the
        serving daemon reports the flag on its health endpoint.
        :meth:`close` discards the pools and clears it.
        """
        return self._degraded

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------
    def evaluator_for(self, problem: WASOProblem, engine: Optional[str] = None):
        """Willingness evaluator for ``problem`` on the context's engine."""
        return _evaluator_for(problem.graph, engine or self.engine)

    # ------------------------------------------------------------------
    # Pools (lazy, resident, shared)
    # ------------------------------------------------------------------
    def stage_pool(self) -> "StagePool":
        """The resident stage-level pool, created on first use."""
        if self._stage_pool is None:
            from repro.parallel.stage_pool import StagePool

            kwargs = {}
            if self.max_retries is not None:
                kwargs["max_retries"] = self.max_retries
            self._stage_pool = StagePool(
                max(1, self.effective_workers), **kwargs
            )
            self._owns_stage_pool = True
        return self._stage_pool

    def solve_pool(self) -> "ResidentSolvePool":
        """The resident solve-level pool, created on first use.

        Like the stage pool, its workers cache detached compiled-graph
        arrays keyed by payload token (:mod:`repro.parallel.residency`),
        so a serving session ships each graph at most once per worker.
        """
        if self._solve_pool is None:
            from repro.parallel.pool import ResidentSolvePool

            kwargs = {}
            if self.max_retries is not None:
                kwargs["max_retries"] = self.max_retries
            self._solve_pool = ResidentSolvePool(
                max(1, self.effective_workers), **kwargs
            )
            self._owns_solve_pool = True
        return self._solve_pool

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def resolve_mode(
        self,
        problem: WASOProblem,
        budget: int,
        batch_size: int = 1,
        mode: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> str:
        """Resolve the execution mode for one request.

        Precedence: explicit ``mode`` argument, then the mode pinned by
        an enclosing :meth:`solve` call, then the context default; an
        ``"auto"`` outcome runs the cost-model router with the request's
        engine (the vector engine shifts the serial-vs-parallel
        break-even).
        """
        choice = mode if mode is not None else (self._mode_force or self.mode)
        validate_mode(choice)
        if choice != "auto":
            return choice
        return choose_mode(
            n=problem.graph.number_of_nodes(),
            budget=budget,
            batch_size=batch_size,
            workers=self.workers,
            cpu_count=self.cpu_count,
            healthy=not self._degraded,
            engine=engine or self.engine,
        )

    def executor_for(
        self,
        solver: Solver,
        problem: WASOProblem,
        mode: Optional[str] = None,
    ) -> StageExecutor:
        """Stage-execution strategy for one solve.

        Called by the staged solvers (:class:`~repro.algorithms.cbas.
        CBAS` and subclasses) when no explicit executor is installed.
        Routes to the stage-sharded strategy only when the resolved mode
        is ``"stage"`` and the solver can actually shard (compiled
        engine, shard-protocol hooks); everything else — including
        ``"solve"`` mode, which splits *above* the stage loop — runs the
        serial in-process strategy.
        """
        if self._executor_override is not None:
            return self._executor_override
        solver_engine = getattr(solver, "engine", None)
        resolved = self.resolve_mode(
            problem,
            getattr(solver, "budget", 0) or 0,
            mode=mode,
            engine=solver_engine,
        )
        if (
            resolved == "stage"
            and solver_engine in ("compiled", "vector")
            and hasattr(solver, "_shard_mode")
        ):
            from repro.parallel.stage_pool import ShardedStageExecutor

            return ShardedStageExecutor(pool=self.stage_pool())
        if solver_engine == "vector" and hasattr(solver, "_shard_mode"):
            # Vector-engine staged solves go through the batch kernel;
            # the executor is stateless (per-solve state lives on the
            # sampler) so one cached instance serves every solve.
            if self._vector_executor is None:
                from repro.vector.stage_exec import VectorSerialStageExecutor

                self._vector_executor = VectorSerialStageExecutor()
            return self._vector_executor
        return self._serial_executor

    @contextmanager
    def _forced_mode(self, mode: str):
        """Pin the resolved mode for the duration of one solve call."""
        previous = self._mode_force
        self._mode_force = mode
        try:
            yield
        finally:
            self._mode_force = previous

    # ------------------------------------------------------------------
    # Solver construction
    # ------------------------------------------------------------------
    def make_solver(self, name: str, **kwargs) -> Solver:
        """Build a registry solver wired to this context.

        Context-aware solvers receive ``context=self`` (and therefore
        the context's engine and routing); solvers without execution
        state (exact / IP) are built as-is.
        """
        from repro.algorithms.registry import make_solver

        params, open_kwargs = _factory_params(name)
        if "context" in params or open_kwargs:
            kwargs.setdefault("context", self)
        return make_solver(name, **kwargs)

    def _stage_capable(self, name: str, kwargs: dict) -> bool:
        """Can a ``name`` solver actually run stage-sharded?

        Stage mode needs the compiled engine plus the shard-protocol
        hooks; a request routed "stage" without them would degrade to a
        sequential inline solve, so :meth:`solve_many` demotes it to the
        multiplexer instead.
        """
        from repro.algorithms.registry import solver_factory

        params, open_kwargs = _factory_params(name)
        if "engine" not in params and not open_kwargs:
            return False
        if kwargs.get("engine", self.engine) not in ("compiled", "vector"):
            return False
        factory = solver_factory(name)
        if isinstance(factory, type):
            return hasattr(factory, "_shard_mode")
        # Function factories (e.g. cbas-nd-g) wrap a solver class; probe
        # with a throwaway instance (constructors are cheap).
        try:
            return hasattr(factory(**kwargs), "_shard_mode")
        except Exception:
            return False

    def _dispatch_engine(self, name: str, kwargs: dict) -> Optional[str]:
        """Engine a worker-side build of ``name`` would run, or ``None``.

        Workers build solvers from ``(name, kwargs)`` without a context,
        so the context's engine must be made explicit in the shipped
        kwargs for engine-aware solvers; solvers with no engine knob
        (exact / IP) return ``None`` and ship the full dict graph.
        """
        params, open_kwargs = _factory_params(name)
        if "engine" not in params and not open_kwargs:
            return None
        kwargs.setdefault("engine", self.engine)
        return kwargs["engine"]

    # ------------------------------------------------------------------
    # Warm-state storage (online re-planning, repeated requests)
    # ------------------------------------------------------------------
    def store_warm_state(self, key, state) -> None:
        """Remember cross-solve warm state under ``key``."""
        self._warm_states[key] = state

    def warm_state(self, key):
        """Warm state previously stored under ``key`` (or ``None``)."""
        return self._warm_states.get(key)

    def clear_warm_state(self, key) -> None:
        self._warm_states.pop(key, None)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: WASOProblem,
        solver: "str | Solver" = "cbas-nd",
        rng: RngLike = None,
        mode: Optional[str] = None,
        **solver_kwargs,
    ) -> SolveResult:
        """Solve one problem through the runtime layer.

        ``solver`` is a registry name (built through the context) or a
        pre-configured :class:`~repro.algorithms.base.Solver` instance.
        ``mode`` overrides the context's routing for this call.
        """
        if isinstance(solver, str):
            name: Optional[str] = solver
            instance: Optional[Solver] = None
            # An explicit budget kwarg lets solve-level routing skip
            # building a throwaway instance just to read its default.
            budget = int(solver_kwargs.get("budget") or 0)
            if budget <= 0:
                instance = self.make_solver(name, **solver_kwargs)
                budget = getattr(instance, "budget", 0) or 0
        else:
            name = None
            instance = solver
            if solver_kwargs:
                raise ValueError(
                    "solver kwargs only apply when the solver is built by "
                    "name; configure the instance instead"
                )
            budget = getattr(instance, "budget", 0) or 0
        resolved = self.resolve_mode(problem, budget, mode=mode)
        if resolved == "solve":
            if name is not None and budget > 0:
                return self._solve_level(
                    problem, name, solver_kwargs, budget, rng
                )
            if mode == "solve" and name is None:
                raise ValueError(
                    "mode='solve' splits the budget across fresh solver "
                    "instances; pass the solver by registry name"
                )
            # Budget-less solvers / pre-built instances under a
            # solve-mode context default: nothing to split, run serial.
            resolved = "serial"
        if instance is None:
            instance = self.make_solver(name, **solver_kwargs)
        with self._forced_mode(resolved):
            foreign = (
                getattr(instance, "context", None) is not None
                and instance.context is not self
            )
            if not foreign:
                return instance.solve(problem, rng=rng)
            # A pre-built solver carries its own (usually private serial)
            # context; it must execute through *this* one for the call,
            # or the routed mode would be silently ignored.
            previous = instance.context
            instance.context = self
            try:
                return instance.solve(problem, rng=rng)
            finally:
                instance.context = previous

    def _solve_level(
        self,
        problem: WASOProblem,
        name: str,
        solver_kwargs: dict,
        budget: int,
        rng: RngLike,
    ) -> SolveResult:
        """Best-of over budget slices on the solve-level pool."""
        from repro.parallel.pool import parallel_solve

        kwargs = dict(solver_kwargs)
        kwargs.pop("budget", None)  # replaced by each worker's share
        self._dispatch_engine(name, kwargs)
        workers = max(1, min(self.effective_workers, budget))
        pool = None
        if workers > 1:
            pool = self.solve_pool()
            # A caller-shared pool may be smaller than the context's
            # worker setting; never dispatch past its processes.
            workers = min(workers, pool.workers)

        def factory(share: int) -> Solver:
            from repro.algorithms.registry import make_solver

            return make_solver(name, budget=share, **kwargs)

        return parallel_solve(
            problem,
            factory,
            total_budget=budget,
            workers=workers,
            rng=rng,
            pool=pool if workers > 1 else None,
        )

    # ------------------------------------------------------------------
    def solve_many(
        self,
        requests,
        mode: Optional[str] = None,
    ) -> list[SolveResult]:
        """Solve a batch of heterogeneous requests; the serving front door.

        ``requests`` is a list of :class:`~repro.runtime.requests.
        SolveRequest` (or plain ``(problem, solver-name)``-style dicts
        are *not* accepted here — build them with
        :func:`~repro.runtime.requests.request_from_spec`).  Routing is
        per request: large solves go to the resident stage pool,
        pool-worthy ones multiplex onto the resident solve-level pool —
        each inside one worker as a plain serial solve — while requests
        the router judges too small to win their dispatch round trip
        run inline in the parent (on one CPU, everything does).  Compiled-engine requests ship only their O(1)
        payload spec once a worker holds the graph's detached arrays,
        so a serving session pickles each graph at most once per
        (graph, worker) pair; every multiplexed result records the
        batch's shipping in ``stats.extra`` (``graph_shipped`` /
        ``graph_installs`` / ``batch_payload_bytes``).

        Results come back in request order and are bit-identical to
        calling :meth:`solve` once per request (stats excepted only in
        ``elapsed_seconds`` and the pool-warmth accounting keys).  A
        failing request never discards the rest of the batch: the batch
        drains fully, completed results record the failed indices in
        ``stats.extra["failed_requests"]``, and a
        :class:`~repro.exceptions.BatchExecutionError` carrying the
        partial ``results`` and per-request ``failures`` is raised.

        The dispatch layer is self-healing (see :mod:`repro.parallel.
        residency`): a worker crash respawns the worker and retries its
        chunk bit-identically; exhausted retries degrade the affected
        requests to in-parent serial execution instead of failing them;
        a request whose :attr:`~repro.runtime.requests.SolveRequest.
        deadline_s` expires mid-dispatch is cancelled and fails with a
        ``kind="deadline"`` :class:`~repro.exceptions.RequestFailure`.
        Recovery events surface in the surviving results'
        ``stats.extra`` (``worker_restarts`` / ``chunk_retries`` /
        ``degraded_to_serial`` / ``deadline_missed``), written only
        when non-zero.
        """
        requests = [self._coerce_request(r) for r in requests]
        if not requests:
            return []
        import random as _random

        shared_rng = any(isinstance(r.rng, _random.Random) for r in requests)
        batch = len(requests)
        # Per-request deadlines, as absolute monotonic instants from the
        # moment the batch starts executing.
        batch_start = time.monotonic()
        deadlines = [
            batch_start + r.deadline_s if r.deadline_s is not None else None
            for r in requests
        ]
        predispatch_missed = 0
        routed = []
        for request in requests:
            route = self.resolve_mode(
                request.problem,
                request.budget,
                batch_size=batch,
                mode=mode,
                engine=request.solver_kwargs.get("engine"),
            )
            if route == "stage" and not self._stage_capable(
                request.solver, request.solver_kwargs
            ):
                # Large but unshardable (reference engine, no shard
                # hooks): multiplexing is the only parallelism it has.
                route = "solve"
            routed.append(route)
        failures: dict[int, str] = {}
        results: list[Optional[SolveResult]] = [None] * batch
        if shared_rng or all(route == "serial" for route in routed):
            # Stateful generators must consume their streams in request
            # order — and a fully serial batch has nothing to dispatch.
            for index, request in enumerate(requests):
                expired = self._expired_failure(request, deadlines[index])
                if expired is not None:
                    failures[index] = expired
                    continue
                try:
                    results[index] = self._solve_request(request)
                except Exception:
                    failures[index] = traceback.format_exc()
            return self._finish_batch(results, failures)

        # Distinct graphs are frozen and detached at most once (lazily —
        # an all-stage or all-reference batch never pays the detach);
        # detached clones share the frozen arrays, and the resident pool
        # pickles them only into workers that do not hold them yet.
        detached_graphs: dict[int, object] = {}
        graphs: dict = {}  # payload token -> detached CompiledGraph
        entries = []  # multiplexed requests, as solve-pool entry dicts
        stage_indices = []
        inline_indices = []
        for index, (request, route) in enumerate(zip(requests, routed)):
            if route == "stage":
                stage_indices.append(index)
                continue
            if route == "serial":
                # The router judged this request too small (or too
                # opaque — budget-less) to win its dispatch round trip:
                # honour that and solve it in-parent while the chunks
                # are in flight, instead of multiplexing it anyway.
                inline_indices.append(index)
                continue
            kwargs = dict(request.solver_kwargs)
            engine = self._dispatch_engine(request.solver, kwargs)
            problem = request.problem
            if engine in ("compiled", "vector"):
                detached = detached_graphs.get(id(problem.graph))
                if detached is None:
                    detached = problem.compiled().detach()
                    detached_graphs[id(problem.graph)] = detached
                payload = problem.payload_spec()
                graphs[payload["token"]] = detached
            else:
                # Reference / engine-less solvers have no resident
                # representation: the dict problem ships per request.
                payload = problem
            entries.append(
                {
                    "index": index,
                    "problem": payload,
                    "solver": request.solver,
                    "kwargs": kwargs,
                    "seed": request.rng,
                    "deadline": deadlines[index],
                }
            )

        dispatched = bool(entries)
        if dispatched:
            pool = self.solve_pool()
            pool.begin_batch()
            workers = max(
                1, min(self.effective_workers, pool.workers, len(entries))
            )
            # Round-robin chunking: one chunk per worker; each graph is
            # installed only where the worker's residency ledger says it
            # is missing, then referenced by token.
            for worker in range(workers):
                pool.ship(worker, entries[worker::workers], graphs)

        # Large solves run on the stage pool — and serial-routed ones
        # inline — while the chunks are in flight on the solve pool; a
        # failure here must not abandon the in-flight chunks (they are
        # collected below regardless).
        for index in stage_indices:
            expired = self._expired_failure(requests[index], deadlines[index])
            if expired is not None:
                failures[index] = expired
                predispatch_missed += 1
                continue
            try:
                results[index] = self._solve_request(
                    requests[index], mode="stage"
                )
            except Exception:
                failures[index] = traceback.format_exc()
        for index in inline_indices:
            expired = self._expired_failure(requests[index], deadlines[index])
            if expired is not None:
                failures[index] = expired
                predispatch_missed += 1
                continue
            try:
                results[index] = self._solve_request(requests[index])
            except Exception:
                failures[index] = traceback.format_exc()

        if dispatched:
            for chunk_outcomes in pool.collect():
                for outcome in chunk_outcomes:
                    if outcome[0] == "error":
                        failures[outcome[1]] = outcome[2]
                        continue
                    (_, index, members, willingness, drawn, failed,
                     stages, extra) = outcome
                    results[index] = SolveResult(
                        solution=GroupSolution(
                            members=members, willingness=willingness
                        ),
                        stats=SolveStats(
                            samples_drawn=drawn,
                            failed_samples=failed,
                            stages=stages,
                            extra=extra,
                        ),
                    )
            # Graceful degradation: a request whose dispatch died with
            # the retry budget exhausted is not lost — it re-runs
            # serially in-parent (bit-identically: the seed is in the
            # request), the pool is flagged unhealthy, and the router
            # sends everything serial until close() discards the pools.
            degraded = 0
            if not pool.healthy:
                self._degraded = True
                crashed = [
                    index
                    for index, failure in failures.items()
                    if getattr(failure, "kind", None) == "worker_crash"
                ]
                for index in crashed:
                    try:
                        results[index] = self._solve_request(requests[index])
                    except Exception:
                        failures[index] = traceback.format_exc()
                    else:
                        del failures[index]
                        degraded += 1
            # Per-batch shipping and recovery accounting on every
            # multiplexed result, through the shared residency module
            # (the stage path records the same keys from its executor).
            # Recovery keys appear only when something actually happened,
            # so fault-free stats are unchanged.
            installs = pool.batch_installs
            payload_bytes = pool.batch_payload_bytes
            patch_bytes = pool.batch_patch_bytes
            for entry in entries:
                result = results[entry["index"]]
                if result is not None:
                    record_shipping(
                        result.stats.extra,
                        shipped=installs > 0,
                        payload_bytes=payload_bytes,
                        installs=installs,
                        patch_bytes=patch_bytes,
                    )
                    record_recovery(
                        result.stats.extra,
                        restarts=pool.batch_restarts,
                        retries=pool.batch_retries,
                        degraded=degraded,
                        deadline_missed=pool.batch_deadline_missed
                        + predispatch_missed,
                    )
        return self._finish_batch(results, failures)

    @staticmethod
    def _expired_failure(
        request: SolveRequest, deadline: "Optional[float]"
    ) -> "Optional[RequestFailure]":
        """A ``kind="deadline"`` failure when ``deadline`` already passed.

        The in-parent paths (serial batches, stage-routed and
        inline-routed requests) cannot cancel a solve mid-flight, so
        their deadline enforcement happens here, at the dispatch
        boundary — matching the pools, which likewise never abandon a
        reply that already arrived.
        """
        if deadline is None or time.monotonic() < deadline:
            return None
        return RequestFailure(
            f"request deadline of {request.deadline_s}s expired before "
            "dispatch",
            kind="deadline",
        )

    @staticmethod
    def _finish_batch(
        results: "list[Optional[SolveResult]]", failures: "dict[int, str]"
    ) -> list[SolveResult]:
        """Return a fully-solved batch, or raise after it has drained."""
        if failures:
            failed = sorted(failures)
            for result in results:
                if result is not None:
                    result.stats.extra["failed_requests"] = failed
            raise BatchExecutionError(failures, results)
        assert all(result is not None for result in results)
        return results

    @staticmethod
    def _coerce_request(request) -> SolveRequest:
        if isinstance(request, SolveRequest):
            return request
        raise TypeError(
            "solve_many takes SolveRequest objects; build them with "
            "repro.runtime.request_from_spec "
            f"(got {type(request).__name__})"
        )

    def _solve_request(
        self, request: SolveRequest, mode: Optional[str] = None
    ) -> SolveResult:
        return self.solve(
            request.problem,
            solver=request.solver,
            rng=request.rng,
            mode=mode or "serial",
            **request.solver_kwargs,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> "ExecutionContext":
        """Register a co-owner; pair every call with :meth:`release`."""
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one ownership reference; the last one closes the pools."""
        self._refs -= 1
        if self._refs <= 0:
            self.close()

    def close(self) -> None:
        """Tear down owned pools (idempotent; the context stays usable —
        a later parallel solve lazily recreates them).  Discarding the
        pools also clears the degraded flag: fresh pools are trusted
        again."""
        pool, self._stage_pool = self._stage_pool, None
        if pool is not None and self._owns_stage_pool:
            pool.close()
        solve_pool, self._solve_pool = self._solve_pool, None
        if solve_pool is not None and self._owns_solve_pool:
            solve_pool.close()
        self._owns_stage_pool = True
        self._owns_solve_pool = True
        self._degraded = False

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pools = []
        if self._stage_pool is not None:
            pools.append("stage")
        if self._solve_pool is not None:
            pools.append("solve")
        return (
            f"ExecutionContext(engine={self.engine!r}, mode={self.mode!r}, "
            f"workers={self.effective_workers}, "
            f"pools=[{', '.join(pools)}])"
        )
