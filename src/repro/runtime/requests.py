"""Serving-layer request objects for the batched ``solve_many`` front door.

A :class:`SolveRequest` is one user's planning query: a problem (graph +
group size + constraints), the solver to run, its configuration, and a
per-request seed.  :meth:`ExecutionContext.solve_many
<repro.runtime.context.ExecutionContext.solve_many>` takes a list of
them — heterogeneous ``k`` / constraints / solvers / budgets over one
shared graph — and multiplexes them over the runtime's pools.

:func:`request_from_spec` builds a request from a plain dict (one JSONL
line of the CLI's ``solve-many`` subcommand, or one message of a future
network front end).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import RngLike
from repro.core.problem import WASOProblem
from repro.graph.social_graph import SocialGraph

__all__ = ["SolveRequest", "request_from_spec"]

#: Spec keys that configure the problem rather than the solver.
_PROBLEM_KEYS = ("k", "connected", "required", "forbidden", "solver", "seed")


@dataclass
class SolveRequest:
    """One planning request for the batched front door.

    Parameters
    ----------
    problem:
        The WASO instance to solve.
    solver:
        Registry name of the solver (a name, not an instance, so the
        request can be shipped to a worker process).
    rng:
        Per-request seed (or ``None`` for a nondeterministic run).  A
        shared :class:`random.Random` instance forces the whole batch to
        run serially in request order — that is the only way its stream
        consumption can match a hand-written loop.
    solver_kwargs:
        Solver configuration (``budget``, ``m``, ``stages``, ...),
        forwarded to the registry factory.
    """

    problem: WASOProblem
    solver: str = "cbas-nd"
    rng: RngLike = None
    solver_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.solver, str):
            raise TypeError(
                "SolveRequest.solver must be a registry name (str) so the "
                f"request stays shippable, got {type(self.solver).__name__}"
            )

    @property
    def budget(self) -> int:
        """The request's sample budget (0 when the solver has none)."""
        budget = self.solver_kwargs.get("budget")
        return int(budget) if budget is not None else 0


def request_from_spec(graph: SocialGraph, spec: dict) -> SolveRequest:
    """Build a :class:`SolveRequest` from a plain dict over ``graph``.

    Recognized keys: ``k`` (required), ``connected`` (default ``True``),
    ``required`` / ``forbidden`` (node-id lists), ``solver`` (registry
    name, default ``"cbas-nd"``), ``seed`` (int), and any remaining keys
    are passed through as solver kwargs (``budget``, ``m``, ...).
    """
    if "k" not in spec:
        raise ValueError(f"request spec needs a 'k' field: {spec!r}")
    problem = WASOProblem(
        graph=graph,
        k=int(spec["k"]),
        connected=bool(spec.get("connected", True)),
        required=frozenset(spec.get("required", ())),
        forbidden=frozenset(spec.get("forbidden", ())),
    )
    solver_kwargs = {
        key: value for key, value in spec.items() if key not in _PROBLEM_KEYS
    }
    return SolveRequest(
        problem=problem,
        solver=spec.get("solver", "cbas-nd"),
        rng=spec.get("seed"),
        solver_kwargs=solver_kwargs,
    )
