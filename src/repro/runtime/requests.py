"""Serving-layer request objects for the batched ``solve_many`` front door.

A :class:`SolveRequest` is one user's planning query: a problem (graph +
group size + constraints), the solver to run, its configuration, and a
per-request seed.  :meth:`ExecutionContext.solve_many
<repro.runtime.context.ExecutionContext.solve_many>` takes a list of
them — heterogeneous ``k`` / constraints / solvers / budgets over one
shared graph — and multiplexes them over the runtime's pools.

:func:`request_from_spec` builds a request from a plain dict (one JSONL
line of the CLI's ``solve-many`` subcommand, or one message of a future
network front end).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.algorithms.base import RngLike
from repro.core.problem import WASOProblem
from repro.graph.social_graph import SocialGraph

__all__ = ["SolveRequest", "request_from_spec", "valid_spec_keys"]

#: Spec keys that configure the problem rather than the solver.
_PROBLEM_KEYS = (
    "k",
    "connected",
    "required",
    "forbidden",
    "solver",
    "seed",
    "deadline_s",
    "graph_path",
)

#: Solver-constructor parameters a spec must *not* set: they carry live
#: execution state (pools, strategies) that a JSON request cannot name.
_EXECUTION_ONLY_PARAMS = frozenset({"context", "executor"})


def valid_spec_keys(solver: str) -> "frozenset[str] | None":
    """Spec keys :func:`request_from_spec` accepts for ``solver``.

    The problem keys plus the solver factory's keyword parameters
    (minus the execution-state ones a serialized request cannot carry).
    Returns ``None`` for open ``**kwargs`` factories (e.g. the
    ``cbas-nd-g`` wrapper), whose keys cannot be enumerated from the
    signature — they validate at construction time instead.  Raises
    ``ValueError`` for an unknown solver name.
    """
    from repro.algorithms.registry import solver_factory

    params = inspect.signature(solver_factory(solver)).parameters
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return None
    return frozenset(params) - _EXECUTION_ONLY_PARAMS


@dataclass
class SolveRequest:
    """One planning request for the batched front door.

    Parameters
    ----------
    problem:
        The WASO instance to solve.
    solver:
        Registry name of the solver (a name, not an instance, so the
        request can be shipped to a worker process).
    rng:
        Per-request seed (or ``None`` for a nondeterministic run).  A
        shared :class:`random.Random` instance forces the whole batch to
        run serially in request order — that is the only way its stream
        consumption can match a hand-written loop.
    solver_kwargs:
        Solver configuration (``budget``, ``m``, ``stages``, ...),
        forwarded to the registry factory.
    deadline_s:
        Optional wall-clock budget, in seconds from the moment the
        batch starts executing.  A request whose dispatch is still
        pending when the deadline passes is cancelled and fails into
        :class:`~repro.exceptions.BatchExecutionError` with a
        ``kind="deadline"`` failure — the rest of the batch is
        unaffected.  Enforcement is at dispatch boundaries: a reply
        that already arrived is never discarded, and in-parent
        execution is not interrupted mid-solve.
    """

    problem: WASOProblem
    solver: str = "cbas-nd"
    rng: RngLike = None
    solver_kwargs: dict = field(default_factory=dict)
    deadline_s: "float | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.solver, str):
            raise TypeError(
                "SolveRequest.solver must be a registry name (str) so the "
                f"request stays shippable, got {type(self.solver).__name__}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    @property
    def budget(self) -> int:
        """The request's sample budget (0 when the solver has none)."""
        budget = self.solver_kwargs.get("budget")
        return int(budget) if budget is not None else 0


def request_from_spec(graph: SocialGraph, spec: dict) -> SolveRequest:
    """Build a :class:`SolveRequest` from a plain dict over ``graph``.

    Recognized keys: ``k`` (required), ``connected`` (default ``True``),
    ``required`` / ``forbidden`` (node-id lists), ``solver`` (registry
    name, default ``"cbas-nd"``), ``seed`` (int), ``deadline_s``
    (per-request wall-clock budget in seconds), ``graph_path`` (a saved
    frozen-index directory to solve over instead of ``graph``), and any
    remaining keys are passed through as solver kwargs (``budget``,
    ``m``, ...).

    A remaining key the solver's factory does not accept raises
    ``ValueError`` naming the valid keys — a typo like ``deadline`` for
    ``deadline_s`` must fail at the front door, not be silently
    dropped into a request that then ignores its deadline.
    """
    if "k" not in spec:
        raise ValueError(f"request spec needs a 'k' field: {spec!r}")
    graph_path = spec.get("graph_path")
    if graph_path is not None:
        # Path-installed tenant: the request names a saved frozen index
        # instead of relying on the connection's default graph.  Loading
        # goes through the process cache (one mapping per path), and the
        # typed storage errors propagate so the daemon can answer with
        # an "invalid" reply rather than dropping the connection.
        from repro.graph.io import load_cached_graph

        graph = load_cached_graph(graph_path)
    problem = WASOProblem(
        graph=graph,
        k=int(spec["k"]),
        connected=bool(spec.get("connected", True)),
        required=frozenset(spec.get("required", ())),
        forbidden=frozenset(spec.get("forbidden", ())),
    )
    solver_kwargs = {
        key: value for key, value in spec.items() if key not in _PROBLEM_KEYS
    }
    solver = spec.get("solver", "cbas-nd")
    accepted = valid_spec_keys(solver)  # unknown solver raises here
    if accepted is not None:
        unknown = sorted(set(solver_kwargs) - accepted)
        if unknown:
            valid = sorted(set(_PROBLEM_KEYS) | accepted)
            raise ValueError(
                f"unknown request key(s) {', '.join(map(repr, unknown))} "
                f"for solver {solver!r}; valid keys: {valid}"
            )
    deadline_s = spec.get("deadline_s")
    return SolveRequest(
        problem=problem,
        solver=solver,
        rng=spec.get("seed"),
        solver_kwargs=solver_kwargs,
        deadline_s=float(deadline_s) if deadline_s is not None else None,
    )
