"""The vector engine's evaluator behind the ``evaluator_for`` seam.

A thin subclass of :class:`~repro.core.willingness.
FastWillingnessEvaluator`: every scalar entry point (``value`` /
``add_delta`` / potentials) keeps working on the compiled lists — which
is what lets vector-engine samplers fall back to the scalar draw kernel
for paths the batch kernel does not cover — while :attr:`vgraph` hangs
the cached numpy arrays next to it for the batch kernel, and
:attr:`is_vector` is the flag the sampler, the solvers, and the stage
executors key the vectorized paths on.
"""

from __future__ import annotations

from repro.core.willingness import FastWillingnessEvaluator
from repro.vector.arrays import vector_graph_for

__all__ = ["VectorWillingnessEvaluator"]


class VectorWillingnessEvaluator(FastWillingnessEvaluator):
    """Compiled-array evaluator + cached numpy views for batch kernels."""

    is_vector = True

    def __init__(self, compiled) -> None:
        super().__init__(compiled)
        self.vgraph = vector_graph_for(self.compiled)
