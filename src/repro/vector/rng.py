"""Counter-based uniforms for the vector engine.

The scalar engines consume one shared ``random.Random`` stream in draw
order, which ties every draw's randomness to everything drawn before it
— exactly what makes a sharded run differ from a serial one.  The
vector engine instead derives every draw's uniforms *positionally* from
``numpy.random.Philox``, a counter-based generator:

* the **key** combines the solve-level base key (64 bits drawn once per
  solve from the seeded solver RNG) with the start node's index —
  ``(base_key << 64) | start_index`` — so every start owns an
  independent stream;
* the **counter** addresses the draw's position in that stream: draw
  ``d`` of a start owns the ``width`` doubles starting at stream
  position ``d × width``.  ``Generator(Philox(key, counter=c)).random``
  emits the double stream starting at position ``4·c`` (Philox-4x64
  yields four 64-bit words per counter block, one double each), so with
  ``width`` a multiple of 4 the counter is simply ``d × width / 4``.

A draw's uniforms are therefore a pure function of
``(base_key, start index, draw position)`` — independent of every other
draw, of batch boundaries, and of how a stage's draws are sharded
across workers.  That is the whole within-engine determinism story:
serial and stage-sharded vector runs consume identical randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MASK64", "uniform_width", "philox_key", "draw_uniforms"]

MASK64 = (1 << 64) - 1


def uniform_width(k: int) -> int:
    """Uniforms reserved per draw: one per pick, padded to Philox blocks.

    A draw makes at most ``k`` picks; the width is padded up to a
    multiple of 4 (one Philox-4x64 counter block = 4 doubles) so draw
    ``d``'s block starts exactly at counter ``d · width / 4``.  Derived
    from ``k`` alone — never from the seed size — so every draw of a
    solve shares one width whatever its start's seed looks like.
    """
    return max(4, ((k + 3) // 4) * 4)


def philox_key(base_key: int, start_key: int) -> int:
    """128-bit Philox key for one start node's draw stream."""
    return ((base_key & MASK64) << 64) | (start_key & MASK64)


def draw_uniforms(
    base_key: int, start_key: int, first_draw: int, count: int, width: int
) -> np.ndarray:
    """Uniforms for draws ``[first_draw, first_draw + count)`` of a start.

    Returns a ``(count, width)`` float64 matrix whose row ``i`` holds
    draw ``first_draw + i``'s uniforms.  Any sub-range of a start's
    draws yields the identical rows — the counter seeks straight to
    ``first_draw``'s block.
    """
    if width % 4:
        raise ValueError(f"width must be a multiple of 4, got {width}")
    bits = np.random.Philox(
        key=philox_key(base_key, start_key),
        counter=first_draw * (width // 4),
    )
    return np.random.Generator(bits).random(count * width).reshape(
        count, width
    )
