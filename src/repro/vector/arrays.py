"""Numpy views over a :class:`~repro.graph.compiled.CompiledGraph`.

The compiled index stores its CSR topology and per-node/per-edge weights
as plain Python lists (cheap to pickle, fast to index from the scalar
kernels).  The vector kernels need the same data as contiguous numpy
arrays; :class:`VectorGraph` converts each list exactly once and the
module-level cache keys the result by
:attr:`~repro.graph.compiled.CompiledGraph.payload_token` — the same
token the residency protocol uses — so:

* repeated solves on one graph reuse the arrays;
* a stage-pool worker, which receives the *detached* payload
  (``detach()`` shares the lists and the token), builds the arrays once
  per resident graph, not once per solve;
* a graph mutation mints a new token and therefore new arrays.

The cache holds a handful of graphs (mirroring the workers' bounded
resident stores) with least-recently-used eviction.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["VectorGraph", "vector_graph_for", "discard_vector_graph"]

#: Graphs kept vectorized at once; matches the spirit of the workers'
#: bounded resident stores (a serving session rotates a few graphs).
_CACHE_LIMIT = 8

_CACHE: "OrderedDict[str, VectorGraph]" = OrderedDict()


class VectorGraph:
    """Contiguous numpy mirror of one compiled graph's flat arrays."""

    __slots__ = (
        "token",
        "offsets",
        "targets",
        "pair_w",
        "weighted_interest",
        "potential",
        "degrees",
        "number_of_nodes",
    )

    def __init__(self, compiled) -> None:
        self.token = compiled.payload_token
        self.offsets = np.asarray(compiled.offsets, dtype=np.int64)
        self.targets = np.asarray(compiled.targets, dtype=np.int64)
        self.pair_w = np.asarray(compiled.pair_w, dtype=np.float64)
        self.weighted_interest = np.asarray(
            compiled.weighted_interest, dtype=np.float64
        )
        self.potential = np.asarray(compiled.potential, dtype=np.float64)
        self.degrees = np.diff(self.offsets)
        self.number_of_nodes = compiled.number_of_nodes


def vector_graph_for(compiled) -> VectorGraph:
    """The (cached) :class:`VectorGraph` for one compiled index."""
    token = compiled.payload_token
    graph = _CACHE.get(token)
    if graph is not None:
        _CACHE.move_to_end(token)
        return graph
    graph = VectorGraph(compiled)
    _CACHE[token] = graph
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return graph


def discard_vector_graph(token: str) -> None:
    """Drop one graph's cached arrays (no-op when absent).

    ``CompiledGraph.close`` calls this before unmapping an mmap-backed
    index: the cached numpy views alias the mapped buffers zero-copy, so
    they must be released for the mapping to actually close.
    """
    _CACHE.pop(token, None)
