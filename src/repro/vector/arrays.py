"""Numpy views over a :class:`~repro.graph.compiled.CompiledGraph`.

The compiled index stores its CSR topology and per-node/per-edge weights
as plain Python lists (cheap to pickle, fast to index from the scalar
kernels).  The vector kernels need the same data as contiguous numpy
arrays; :class:`VectorGraph` converts each list exactly once and the
module-level cache keys the result by
``(payload_token, generation)`` — the same identity the residency
protocol tracks — so:

* repeated solves on one graph reuse the arrays;
* a stage-pool worker, which receives the *detached* payload
  (``detach()`` shares the lists and the token), builds the arrays once
  per resident graph, not once per solve;
* an out-of-band graph mutation mints a new token and therefore new
  arrays, while an :meth:`~repro.graph.compiled.CompiledGraph.
  apply_deltas` patch bumps the generation — either way the stale numpy
  mirror is never served again (old generations age out of the LRU).

The cache holds a handful of graphs (mirroring the workers' bounded
resident stores) with least-recently-used eviction.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["VectorGraph", "vector_graph_for", "discard_vector_graph"]

#: Graphs kept vectorized at once; matches the spirit of the workers'
#: bounded resident stores (a serving session rotates a few graphs).
_CACHE_LIMIT = 8

_CACHE: "OrderedDict[tuple, VectorGraph]" = OrderedDict()


class VectorGraph:
    """Contiguous numpy mirror of one compiled graph's flat arrays."""

    __slots__ = (
        "token",
        "generation",
        "offsets",
        "targets",
        "pair_w",
        "weighted_interest",
        "potential",
        "degrees",
        "number_of_nodes",
    )

    def __init__(self, compiled) -> None:
        self.token = compiled.payload_token
        self.generation = getattr(compiled, "generation", 0)
        self.offsets = np.asarray(compiled.offsets, dtype=np.int64)
        self.targets = np.asarray(compiled.targets, dtype=np.int64)
        self.pair_w = np.asarray(compiled.pair_w, dtype=np.float64)
        self.weighted_interest = np.asarray(
            compiled.weighted_interest, dtype=np.float64
        )
        self.potential = np.asarray(compiled.potential, dtype=np.float64)
        self.degrees = np.diff(self.offsets)
        self.number_of_nodes = compiled.number_of_nodes


def vector_graph_for(compiled) -> VectorGraph:
    """The (cached) :class:`VectorGraph` for one compiled index."""
    key = (compiled.payload_token, getattr(compiled, "generation", 0))
    graph = _CACHE.get(key)
    if graph is not None:
        _CACHE.move_to_end(key)
        return graph
    graph = VectorGraph(compiled)
    _CACHE[key] = graph
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return graph


def discard_vector_graph(token: str) -> None:
    """Drop one graph's cached arrays, every generation (no-op if absent).

    ``CompiledGraph.close`` (and ``_materialize``, before patching an
    mmap-backed index) calls this ahead of unmapping: the cached numpy
    views alias the mapped buffers zero-copy, so every generation's
    views must be released for the mapping to actually close.
    """
    for key in [key for key in _CACHE if key[0] == token]:
        del _CACHE[key]
