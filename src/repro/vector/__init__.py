"""The ``vector`` engine: numpy batch kernels over the compiled arrays.

The compiled engine's per-call kernels are already near-optimal pure
Python; the remaining raw speed lives in *batch-level* vectorization.
This package evaluates a whole stage's draws as array operations:

* :mod:`repro.vector.arrays` — zero-copy-shaped numpy views over a
  :class:`~repro.graph.compiled.CompiledGraph`'s CSR / pair-weight /
  potential lists, cached per payload token so resident workers (which
  share the detached payload, and therefore the token) build them once;
* :mod:`repro.vector.rng` — a counter-based RNG scheme
  (``numpy.random.Philox``) keying every draw's uniforms by
  ``(solve key, start, draw position)``, which makes seeded vector runs
  bit-reproducible within the engine and independent of how a stage's
  draws are sharded across workers;
* :mod:`repro.vector.kernel` — the stage-batched frontier kernel:
  status-stamp membership matrices, cumulative-sum weighted picks, and
  ``bincount``-reduced willingness deltas for every draw of a stage at
  once;
* :mod:`repro.vector.stage_exec` — the serial-process stage executor
  that feeds whole stages to the kernel;
* :mod:`repro.vector.evaluator` — the
  :class:`~repro.vector.evaluator.VectorWillingnessEvaluator` behind the
  ``evaluator_for`` seam.

Determinism contract: the reference engine stays the bit-exact oracle
and the compiled engine matches it bit for bit; the vector engine is
bit-reproducible *within itself* (same seed → same result, serial or
stage-sharded, any worker count) but reassociates floating-point sums,
so it matches the oracle to tolerance on willingness and exactly on
integer quantities (members, sample counts, stages).
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401
except ImportError as _error:  # pragma: no cover - depends on environment
    raise ImportError(
        "engine='vector' requires numpy, which is a declared dependency "
        "(see pyproject.toml) but is not importable in this environment; "
        "install numpy or use engine='compiled'"
    ) from _error

from repro.vector.arrays import VectorGraph, vector_graph_for
from repro.vector.evaluator import VectorWillingnessEvaluator

__all__ = [
    "VectorGraph",
    "vector_graph_for",
    "VectorWillingnessEvaluator",
]
