"""Serial stage executor feeding whole stages to the vector kernel.

The scalar :class:`~repro.algorithms.stage_exec.SerialStageExecutor`
draws start-by-start against one shared RNG.  The vector executor
instead collects *every* funded start's share into one
:func:`~repro.vector.kernel.draw_stage_batch` call — the batch kernel
scores and extends all of the stage's draws together — and then runs the
scalar executor's exact per-start accounting over the returned batches
in index order.

That reordering is semantically safe for the staged solvers: within a
stage each start owns its own CE vector, so start ``i``'s refit never
influences start ``j``'s draws of the *same* stage (the same argument
the sharded executor already relies on).  Randomness is positional
(:mod:`repro.vector.rng`): each start's planned draw ordinal advances by
its **full** share every stage — even when the consecutive-failure cap
truncates the realized batch — so the per-draw uniforms are a pure
function of the allocation sequence, and serial and stage-sharded
vector runs consume identical randomness.
"""

from __future__ import annotations

from repro.algorithms.sampling import Sample, seed_for_start
from repro.algorithms.stage_exec import (
    MAX_CONSECUTIVE_FAILURES,
    SerialStageExecutor,
    StageContext,
)

__all__ = ["VectorSerialStageExecutor"]


class VectorSerialStageExecutor(SerialStageExecutor):
    """In-process stage execution through the batch kernel.

    Stateless across solves: the per-solve planned-draw ordinals live on
    the sampler (one sampler per solve), so one cached executor instance
    serves every vector solve of a context.
    """

    def begin_solve(self, ctx: StageContext) -> None:
        sampler = ctx.sampler
        if not getattr(sampler, "is_vector", False):
            raise RuntimeError(
                "VectorSerialStageExecutor requires a vector-engine sampler"
            )
        sampler.vector_ordinals = [0] * len(ctx.starts)

    def run_stage(self, ctx: StageContext, shares: "list[int]") -> None:
        solver = ctx.solver
        sampler = ctx.sampler
        node_stats = ctx.node_stats
        failures = ctx.failures
        stats = ctx.stats
        ordinals = sampler.vector_ordinals

        funded = [
            index
            for index, share in enumerate(shares)
            if share and not node_stats[index].pruned
        ]
        if not funded:
            return
        mode = solver._shard_mode()
        entries = [
            {
                "start_key": index,
                "seed": seed_for_start(ctx.problem, ctx.starts[index]),
                "first_draw": ordinals[index],
                "count": shares[index],
                "failures": failures[index],
            }
            for index in funded
        ]
        weight_rows = None
        if mode == "ce":
            weight_rows = [
                solver._stage_weight_array(index) for index in funded
            ]
        batches = sampler.draw_batch_vector(
            entries,
            mode=mode,
            weight_rows=weight_rows,
            max_failures=MAX_CONSECUTIVE_FAILURES,
        )

        best_sample = ctx.best_sample
        for index, batch in zip(funded, batches):
            # Ordinals advance by the planned share, not the realized
            # batch length — positional randomness must not depend on
            # where a failure cap happened to truncate.
            ordinals[index] += shares[index]
            stage_samples: list[Sample] = []
            for sample in batch:
                stats.samples_drawn += 1
                if sample is None:
                    stats.failed_samples += 1
                    failures[index] += 1
                    if failures[index] >= MAX_CONSECUTIVE_FAILURES:
                        node_stats[index].pruned = True
                    continue
                failures[index] = 0
                node_stats[index].record(sample.willingness)
                stage_samples.append(sample)
                if (
                    best_sample is None
                    or sample.willingness > best_sample.willingness
                ):
                    best_sample = sample
            solver._after_start_stage(index, stage_samples, stats)
        ctx.best_sample = best_sample
