"""The stage-batched frontier expansion kernel.

One call draws *every* funded start node's samples for a stage as
batched array operations.  Each draw is one **row** of the batch:

* a ``status`` matrix (int8, one column per graph node) replaces the
  scalar kernel's generation stamps — 0 untouched, 1 frontier, 2
  member;
* the frontier lives in a padded ``(rows, capacity)`` matrix with
  per-row lengths and the scalar kernel's exact swap-pop;
* each expansion step picks one frontier node per live row — uniformly
  (CBAS), by cumulative-sum weighted pick over a per-start weight row
  (CBAS-ND's CE vectors), or by the greedy willingness bias (RGreedy) —
  then scatters the member mark, gathers the chosen nodes' CSR rows in
  one flat pass, reduces the member-edge pair weights per row with
  ``bincount``, and appends the fresh allowed neighbours to the
  frontier;
* willingness starts from the sampler's cached per-seed base value (the
  scalar evaluator's exact float) and accumulates the same
  ``weighted_interest + Σ pair_w`` per-step delta.  The per-row
  accumulation *order* differs from the scalar kernel (edge deltas are
  reduced per step instead of per edge), which is exactly the
  float-reassociation the vector engine's tolerance oracle allows; the
  *set* of accumulated terms is identical, and every integer quantity
  (members, counts, failures) is exact.

Randomness comes positionally from :mod:`repro.vector.rng`: row ``i`` of
a start's uniform matrix belongs to planned draw ``first_draw + i``, so
the same draws produce the same samples however they are batched or
sharded.

Semantics notes
---------------
* Failure-cap truncation is applied *post hoc* over the produced batch
  (consecutive-failure counter seeded with the carry-in), reproducing
  the scalar ``draw_batch`` early stop.  In connected mode a non-pruned
  start's expansions cannot stall — a component of size ≥ k always
  offers an adjacent non-member — so failures arise only from
  disconnected seeds (required nodes spanning components) failing the
  final bridge check, and from WASO-dis runs with fewer than ``k``
  allowed nodes.
* The weighted pick resolves threshold position with the scalar path's
  ``bisect_left`` semantics and degrades to the uniform formula when a
  weight row's frontier mass is zero.  (The scalar path's
  measure-zero ``threshold == 0.0`` tie-break — first *positive* slot
  rather than first slot — is not reproduced; it has probability 2⁻⁵³
  per pick and the engines do not share RNG streams anyway.)
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sampling import Sample
from repro.vector.rng import draw_uniforms, uniform_width

__all__ = ["draw_stage_batch"]

#: Rough cap on (rows × per-row cells) per chunk, bounding the status /
#: frontier / uniform matrices to a few MB however large the stage is.
MAX_CHUNK_CELLS = 4_000_000

#: Never chunk below this many rows — tiny chunks forfeit the batching.
MIN_CHUNK_ROWS = 16


def draw_stage_batch(
    sampler,
    entries,
    base_key,
    mode="uniform",
    weight_rows=None,
    max_failures=None,
):
    """Draw one stage's batches for several starts in one vectorized pass.

    ``entries`` is a list of dicts with keys ``start_key`` (the integer
    keying the start's Philox stream), ``seed`` (the member seed set),
    ``first_draw`` (the start's planned draw ordinal for this batch),
    ``count`` and ``failures`` (carry-in consecutive-failure counter).
    ``weight_rows`` aligns with ``entries`` for ``mode="ce"`` (each a
    flat per-node weight array).  Returns one list of
    ``Sample | None`` per entry, in draw order, truncated at
    ``max_failures`` consecutive failures exactly like the scalar
    ``draw_batch``.
    """
    problem = sampler.problem
    k = problem.k
    width = uniform_width(k)
    out = [[] for _ in entries]

    # Resolve every entry's cached seed state first: chunk sizing needs
    # the largest initial frontier (WASO-dis frontiers are O(n)).
    specs = []
    max_frontier = 1
    for position, entry in enumerate(entries):
        state = sampler._seed_state(entry["seed"])
        if len(state[2]) > k:
            # Oversized seed: every draw fails, no kernel work needed.
            out[position].extend([None] * entry["count"])
            continue
        max_frontier = max(max_frontier, len(state[3]))
        wrow = weight_rows[position] if mode == "ce" else None
        specs.append(
            (position, entry["start_key"], state, entry["first_draw"],
             entry["count"], wrow)
        )

    if specs:
        n = sampler._compiled.number_of_nodes
        cells_per_row = n + max_frontier + 8 * width
        chunk_rows = max(MIN_CHUNK_ROWS, MAX_CHUNK_CELLS // cells_per_row)
        # Greedy chunk packing over the concatenated row space; a spec
        # larger than a chunk is split by draw range, which is free —
        # draw d's uniforms depend only on (base_key, start_key, d).
        chunk: list = []
        filled = 0
        for position, start_key, state, first, count, wrow in specs:
            remaining = count
            while remaining > 0:
                if filled >= chunk_rows:
                    _run_chunk(sampler, chunk, base_key, width, mode, out)
                    chunk, filled = [], 0
                take = min(chunk_rows - filled, remaining)
                chunk.append((position, start_key, state, first, take, wrow))
                first += take
                remaining -= take
                filled += take
        if chunk:
            _run_chunk(sampler, chunk, base_key, width, mode, out)

    results = []
    for position, entry in enumerate(entries):
        results.append(
            _truncate(out[position], entry.get("failures", 0), max_failures)
        )
    return results


def _truncate(batch, carry, max_failures):
    """Cut a batch at the consecutive-failure cap (scalar early stop)."""
    if max_failures is None:
        return batch
    failures = carry
    for position, sample in enumerate(batch):
        if sample is None:
            failures += 1
            if failures >= max_failures:
                return batch[: position + 1]
        else:
            failures = 0
    return batch


def _allowed_mask(sampler) -> np.ndarray:
    """Boolean per-node allowed mask, built once per sampler."""
    mask = getattr(sampler, "_vector_allowed", None)
    if mask is None:
        mask = np.frombuffer(
            bytes(sampler._allowed_mask), dtype=np.uint8
        ).astype(bool)
        sampler._vector_allowed = mask
    return mask


def _run_chunk(sampler, specs, base_key, width, mode, out):
    """Expand one chunk of rows to completion and emit its samples."""
    problem = sampler.problem
    comp = sampler._compiled
    vg = sampler.evaluator.vgraph
    n = comp.number_of_nodes
    k = problem.k
    connected = problem.connected
    check_allowed = sampler._check_allowed
    allowed = _allowed_mask(sampler) if (connected and check_allowed) else None

    counts = [count for *_head, count, _wrow in specs]
    rows = sum(counts)
    bounds = np.concatenate(([0], np.cumsum(counts)))

    status = np.zeros((rows, n), dtype=np.int8)
    willing = np.empty(rows, dtype=np.float64)
    member_lens = np.empty(rows, dtype=np.int64)
    members = np.zeros((rows, k), dtype=np.int64)
    picks = np.zeros(rows, dtype=np.int64)
    spec_of = np.empty(rows, dtype=np.int64)
    alive = np.ones(rows, dtype=bool)
    uniforms = np.empty((rows, width), dtype=np.float64)

    capacity = 8
    for _position, _key, state, _first, _count, _wrow in specs:
        capacity = max(capacity, len(state[3]))
    frontier = np.zeros((rows, capacity), dtype=np.int64)
    frontier_lens = np.zeros(rows, dtype=np.int64)

    for s, (_position, start_key, state, first, count, _wrow) in enumerate(
        specs
    ):
        value, _seed_connected, member_indices, seed_frontier = state
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        spec_of[lo:hi] = s
        willing[lo:hi] = value
        member_lens[lo:hi] = len(member_indices)
        if member_indices:
            member_arr = np.asarray(member_indices, dtype=np.int64)
            members[lo:hi, : len(member_indices)] = member_arr
            status[lo:hi, member_arr] = 2
        if seed_frontier:
            frontier_arr = np.asarray(seed_frontier, dtype=np.int64)
            frontier[lo:hi, : len(seed_frontier)] = frontier_arr
            status[lo:hi, frontier_arr] = 1
            frontier_lens[lo:hi] = len(seed_frontier)
        uniforms[lo:hi] = draw_uniforms(
            base_key, start_key, first, count, width
        )

    weight_matrix = None
    if mode == "ce":
        weight_matrix = np.stack(
            [np.asarray(wrow, dtype=np.float64) for *_head, wrow in specs]
        )

    offsets = vg.offsets
    targets = vg.targets
    pair_w = vg.pair_w
    interest = vg.weighted_interest
    degrees = vg.degrees

    max_steps = k - int(member_lens.min())
    for _step in range(max_steps):
        act = np.nonzero(alive & (member_lens < k))[0]
        if act.size == 0:
            break
        lens = frontier_lens[act]
        empty = lens == 0
        if empty.any():
            alive[act[empty]] = False
            act = act[~empty]
            if act.size == 0:
                break
            lens = frontier_lens[act]
        u = uniforms[act, picks[act]]

        if mode == "uniform":
            pick = np.minimum((u * lens).astype(np.int64), lens - 1)
            chosen = frontier[act, pick]
        else:
            span = int(lens.max())
            window = frontier[act, :span]
            in_frontier = np.arange(span)[None, :] < lens[:, None]
            if mode == "ce":
                values = weight_matrix[spec_of[act][:, None], window]
                values = np.where(in_frontier, values, 0.0)
                np.maximum(values, 0.0, out=values)
            else:  # greedy
                values = _greedy_weights(
                    vg, status, willing, act, window, in_frontier
                )
            cumulative = np.cumsum(values, axis=1)
            total = cumulative[:, -1]
            threshold = u * total
            weighted = np.minimum(
                (cumulative < threshold[:, None]).sum(axis=1), lens - 1
            )
            fallback = np.minimum((u * lens).astype(np.int64), lens - 1)
            pick = np.where(total > 0.0, weighted, fallback)
            chosen = window[np.arange(act.size), pick]

        # Swap-pop the chosen frontier slot, mark membership.
        frontier[act, pick] = frontier[act, lens - 1]
        frontier_lens[act] = lens - 1
        status[act, chosen] = 2
        members[act, member_lens[act]] = chosen
        member_lens[act] += 1
        picks[act] += 1

        # Merged delta + frontier extension over the chosen nodes' CSR
        # rows, all rows flattened into one gather.
        deltas = interest[chosen].copy()
        chosen_deg = degrees[chosen]
        edge_total = int(chosen_deg.sum())
        if edge_total:
            row_rep = np.repeat(np.arange(act.size), chosen_deg)
            head = np.concatenate(([0], np.cumsum(chosen_deg)[:-1]))
            slots = (
                np.arange(edge_total, dtype=np.int64)
                - head[row_rep]
                + offsets[chosen][row_rep]
            )
            neighbours = targets[slots]
            state = status[act[row_rep], neighbours]
            member_edge = state == 2
            if member_edge.any():
                deltas += np.bincount(
                    row_rep[member_edge],
                    weights=pair_w[slots][member_edge],
                    minlength=act.size,
                )
            if connected:
                fresh = state == 0
                if allowed is not None:
                    fresh &= allowed[neighbours]
                fresh_total = int(fresh.sum())
                if fresh_total:
                    fresh_rows = row_rep[fresh]
                    fresh_nodes = neighbours[fresh]
                    per_row = np.bincount(fresh_rows, minlength=act.size)
                    row_head = np.concatenate(
                        ([0], np.cumsum(per_row)[:-1])
                    )
                    rank = np.arange(fresh_total) - row_head[fresh_rows]
                    column = frontier_lens[act][fresh_rows] + rank
                    needed = int(column.max()) + 1
                    if needed > frontier.shape[1]:
                        grown = np.zeros(
                            (rows, max(needed, 2 * frontier.shape[1])),
                            dtype=np.int64,
                        )
                        grown[:, : frontier.shape[1]] = frontier
                        frontier = grown
                    frontier[act[fresh_rows], column] = fresh_nodes
                    status[act[fresh_rows], fresh_nodes] = 1
                    frontier_lens[act] += per_row
        willing[act] += deltas

    # Emit samples in draw order; complete rows succeed unless a
    # disconnected seed failed to bridge (scalar kernel's final check).
    nodes = comp.nodes
    graph = sampler.graph
    complete = alive & (member_lens == k)
    member_rows = members.tolist()
    willing_values = willing.tolist()
    bridge_memo: dict = {}
    for s, (position, _key, state, _first, _count, _wrow) in enumerate(specs):
        seed_connected = state[1]
        dest = out[position]
        for b in range(int(bounds[s]), int(bounds[s + 1])):
            if not complete[b]:
                dest.append(None)
                continue
            indices = tuple(member_rows[b])
            group = frozenset(map(nodes.__getitem__, indices))
            if connected and not seed_connected:
                bridged = bridge_memo.get(indices)
                if bridged is None:
                    bridged = graph.is_connected_subset(group)
                    bridge_memo[indices] = bridged
                if not bridged:
                    dest.append(None)
                    continue
            dest.append(
                Sample(
                    members=group,
                    willingness=willing_values[b],
                    indices=indices,
                )
            )


def _greedy_weights(vg, status, willing, act, window, in_frontier):
    """RGreedy's frontier weights ``max(0, W(S ∪ {v}))`` for every slot.

    One flat CSR gather over every (row, frontier-slot) pair: the delta
    of adding slot node ``v`` to row ``r``'s members is
    ``interest[v] + Σ pair_w`` over ``v``'s edges into ``r``'s member
    set, reduced per slot with ``bincount``.
    """
    flat_nodes = window[in_frontier]
    entry_rows = np.nonzero(in_frontier)[0]
    deltas = vg.weighted_interest[flat_nodes].copy()
    node_deg = vg.degrees[flat_nodes]
    edge_total = int(node_deg.sum())
    if edge_total:
        entry_rep = np.repeat(np.arange(flat_nodes.size), node_deg)
        head = np.concatenate(([0], np.cumsum(node_deg)[:-1]))
        slots = (
            np.arange(edge_total, dtype=np.int64)
            - head[entry_rep]
            + vg.offsets[flat_nodes][entry_rep]
        )
        member_edge = (
            status[act[entry_rows[entry_rep]], vg.targets[slots]] == 2
        )
        if member_edge.any():
            deltas += np.bincount(
                entry_rep[member_edge],
                weights=vg.pair_w[slots][member_edge],
                minlength=flat_nodes.size,
            )
    values = np.zeros(window.shape, dtype=np.float64)
    values[in_frontier] = np.maximum(
        0.0, willing[act][entry_rows] + deltas
    )
    return values
