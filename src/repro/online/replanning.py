"""Online computation — adjusting the group as invitations come back.

Paper §4.4.1: after invitations go out, some candidates decline.  The
already-confirmed attendees are *kept* (they anchor the partial solution,
like entangled queries that must stay coordinated), the decliners are
removed from the graph, and the second phase of CBAS-ND re-runs with the
confirmed set as the initial partial solution.  The start nodes of phase 1
need not be recomputed, which is why the paper calls the online step fast.

:class:`OnlinePlanner` wraps that loop as a small state machine:

    plan → invite → record accept/decline → replan → ... → final group

Re-plans are **warm-started** (``warm_start=True``, the default) when the
solver supports it (:class:`~repro.algorithms.cbas.CBAS` and subclasses):
the planner feeds the previous solve's
:class:`~repro.algorithms.cbas.CBASWarmState` back into the solver, so a
re-plan reuses (1) the frozen compiled index — cached on the shared graph,
declines only grow the ``forbidden`` set — (2) the phase-1 start-node
ranking with confirmed attendees promoted and decliners dropped, and
(3) CBAS-ND's surviving cross-entropy vectors, which keep refining instead
of resetting to the homogeneous prior.  Each solve's
``SolveStats.extra`` records ``replans`` (count so far) and
``replan_samples`` (budget actually drawn per planning round) so the
"online is fast" claim is observable.

Runtime integration: the planner executes through an
:class:`~repro.runtime.context.ExecutionContext` — passed in, adopted
from the solver, or a private serial one — which owns the worker pools
and the warm-state storage.  Both pools are resident
(:mod:`repro.parallel.residency`): when the context (or a solver-level
:class:`~repro.parallel.stage_pool.ShardedStageExecutor`) keeps a stage
pool warm, or when re-plans route to the solve-level
:class:`~repro.parallel.pool.ResidentSolvePool`, the planner's re-plans
reuse that pool *and* the graph arrays already resident in it.  By
default declines only grow the ``forbidden`` set, which leaves the
frozen index (and therefore its payload token) unchanged, so each
re-plan ships an O(1) problem spec instead of the O(V+E) graph.  With
``prune_declined=True`` a decline additionally *removes the decliner's
incident edges* — the graph really shrinks, as in paper §4.4.1 — via
:meth:`~repro.graph.compiled.CompiledGraph.apply_deltas`: the frozen
index is patched in place (same payload token, bumped generation), the
resident pools ship only the O(|delta|) ``graph_patch`` record instead
of re-installing the arrays, and the planner's stored warm state is
re-stamped so start nodes and CE vectors survive the mutation.  The
shared accounting exposes this uniformly:
``SolveStats.extra["graph_shipped"]`` is ``True`` for the initial plan
and ``False`` for every warm re-plan (``graph_installs`` stays 0 and
``graph_patch_bytes`` records the patch traffic when pruning).
Use the planner as a context manager (or call :meth:`OnlinePlanner.
close`) to release the pools when the planning session ends.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import RngLike, Solver, coerce_rng
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.exceptions import SolverError
from repro.graph.social_graph import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["OnlinePlanner", "Invitation", "ResponseState"]

#: Warm-state keys: each planner gets a unique slot in its context's
#: warm-state storage.
_PLANNER_TOKENS = itertools.count()


class ResponseState(Enum):
    """Lifecycle of one invitation."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    DECLINED = "declined"


@dataclass
class Invitation:
    """One person's invitation status."""

    node: NodeId
    state: ResponseState = ResponseState.PENDING


class OnlinePlanner:
    """Incremental group planner reacting to accepts / declines.

    Parameters
    ----------
    problem:
        The original WASO instance.
    solver:
        Solver used for the initial plan and each re-plan (default a
        CBAS-ND with a modest budget).
    rng:
        Seed / generator for reproducibility.
    warm_start:
        Re-plan from the previous round's start nodes and CE vectors
        instead of solving cold (ignored for solvers without warm-state
        support).
    prune_declined:
        When ``True``, :meth:`record_decline` removes the decliner's
        incident edges from the shared graph through
        :meth:`~repro.graph.compiled.CompiledGraph.apply_deltas`, so
        the frozen index is patched in place (payload token preserved,
        generation bumped) and warm resident workers receive a sparse
        ``graph_patch`` instead of a full re-install.  Off by default:
        pruning changes the potentials the samplers see, so pruned and
        forbidden-only re-plans are both valid but not bit-identical.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` planning
        runs through.  When omitted the planner adopts the solver's
        context (or builds its default solver through a private serial
        one).  The context owns the resident pools — so replans and
        fresh solves share one pool — and the warm-state storage.
    """

    def __init__(
        self,
        problem: WASOProblem,
        solver: Optional[Solver] = None,
        rng: RngLike = None,
        warm_start: bool = True,
        prune_declined: bool = False,
        context: "Optional[ExecutionContext]" = None,
    ) -> None:
        self.base_problem = problem
        if solver is None:
            if context is None:
                from repro.algorithms.cbas_nd import CBASND

                solver = CBASND(budget=200)
            else:
                solver = context.make_solver("cbas-nd", budget=200)
        self.solver = solver
        if context is None:
            context = getattr(solver, "context", None)
        if context is None:
            from repro.runtime.context import ExecutionContext

            context = ExecutionContext(mode="serial")
        # Co-own the context for the planning session: release() in
        # close() tears the pools down only once every owner is done.
        self.context = context.acquire()
        self._warm_key = ("online-planner", next(_PLANNER_TOKENS))
        self.rng = coerce_rng(rng)
        self.warm_start = warm_start
        self.prune_declined = prune_declined
        self.invitations: dict[NodeId, Invitation] = {}
        self.declined: set[NodeId] = set()
        self.current: Optional[GroupSolution] = None
        #: Re-plans performed so far (the initial plan is not a re-plan).
        self.replan_count = 0
        #: Samples drawn by each planning round, in order.
        self.replan_samples: list[int] = []
        self.last_result = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def accepted(self) -> set[NodeId]:
        return {
            inv.node
            for inv in self.invitations.values()
            if inv.state is ResponseState.ACCEPTED
        }

    @property
    def pending(self) -> set[NodeId]:
        return {
            inv.node
            for inv in self.invitations.values()
            if inv.state is ResponseState.PENDING
        }

    def plan(self) -> GroupSolution:
        """Compute (or re-compute) the recommended group.

        Confirmed attendees are required; declined ones are forbidden.
        Re-plans run warm (previous start nodes + surviving CE vectors,
        frozen index shared via the graph cache) unless ``warm_start``
        is off.  Raises :class:`InfeasibleProblemError` when declines
        have made the target group size unreachable.
        """
        problem = self._current_problem()
        is_replan = self.current is not None
        supports_warm = hasattr(self.solver, "warm_state")
        if supports_warm:
            # The planner's cross-solve state lives in the context's
            # warm-state storage, not on the solver.
            self.solver.warm_state = (
                self.context.warm_state(self._warm_key)
                if self.warm_start
                else None
            )
        try:
            result = self.context.solve(problem, self.solver, rng=self.rng)
        finally:
            if supports_warm:
                # Never leave the planner's state installed on the solver
                # (even when the solve raises): a later standalone
                # solver.solve() must stay a cold solve.
                self.solver.warm_state = None
        if supports_warm:
            self.context.store_warm_state(
                self._warm_key, self.solver.last_warm_state
            )
        if is_replan:
            self.replan_count += 1
        self.replan_samples.append(result.stats.samples_drawn)
        result.stats.extra["replans"] = self.replan_count
        result.stats.extra["replan_samples"] = list(self.replan_samples)
        self.last_result = result
        self.current = result.solution
        for node in self.current.members:
            if node not in self.invitations:
                self.invitations[node] = Invitation(node=node)
        return self.current

    def record_accept(self, node: NodeId) -> None:
        """Mark ``node`` as confirmed."""
        invitation = self._require_invited(node)
        if invitation.state is ResponseState.DECLINED:
            raise ValueError(f"{node!r} already declined")
        invitation.state = ResponseState.ACCEPTED

    def record_decline(self, node: NodeId) -> GroupSolution:
        """Mark ``node`` as declined and immediately re-plan.

        Returns the refreshed group (confirmed attendees preserved).
        With ``prune_declined`` the decliner's incident edges are first
        removed from the shared graph as an in-place delta patch, so
        the warm re-plan ships O(degree) bytes to resident workers
        instead of re-installing the frozen arrays.
        """
        invitation = self._require_invited(node)
        if invitation.state is ResponseState.ACCEPTED:
            raise ValueError(f"{node!r} already accepted")
        invitation.state = ResponseState.DECLINED
        self.declined.add(node)
        if self.prune_declined:
            self._prune_node(node)
        return self.plan()

    def finalize(self) -> GroupSolution:
        """Treat every pending invitation as accepted and return the group."""
        if self.current is None:
            self.plan()
        for node in list(self.pending):
            self.record_accept(node)
        assert self.current is not None
        return self.current

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release execution resources held for the planning session
        (idempotent).

        A stage-sharded solver keeps a worker pool warm between re-plans
        so the graph stays resident; closing the planner closes a
        solver-level executor (which tears the pool down only if the
        executor owns it — a caller-shared :class:`~repro.parallel.
        stage_pool.StagePool` stays up for other solvers) and releases
        the planner's co-ownership of its :class:`~repro.runtime.
        context.ExecutionContext` — the context's pools close once the
        last owner lets go.
        """
        if self._closed:
            return
        self._closed = True
        executor = getattr(self.solver, "executor", None)
        if executor is not None and hasattr(executor, "close"):
            executor.close()
        self.context.clear_warm_state(self._warm_key)
        self.context.release()

    def __enter__(self) -> "OnlinePlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _prune_node(self, node: NodeId) -> None:
        """Drop ``node``'s incident edges via an in-place delta patch.

        The compiled index keeps its payload token and bumps its
        generation, so resident pools patch warm workers instead of
        re-shipping the arrays.  The planner's stored warm state is
        re-stamped afterwards — the mutation count moved, but the start
        nodes and CE vectors were earned on this very graph and stay
        valid (the decliner itself is filtered out by the ``forbidden``
        check on reuse).
        """
        graph = self.base_problem.graph
        neighbors = list(graph.neighbors(node))
        if not neighbors:
            return
        graph.compiled().apply_deltas(
            [("remove_edge", node, neighbor) for neighbor in neighbors]
        )
        state = self.context.warm_state(self._warm_key)
        if state is not None and getattr(state, "graph_state", None) is not None:
            from repro.algorithms.cbas import CBAS

            state.graph_state = CBAS._graph_state(self.base_problem)

    def _current_problem(self) -> WASOProblem:
        confirmed = self.accepted
        required = self.base_problem.required | frozenset(confirmed)
        forbidden = self.base_problem.forbidden | frozenset(self.declined)
        if len(required & forbidden) > 0:
            raise SolverError("a confirmed attendee later declined")
        problem = WASOProblem(
            graph=self.base_problem.graph,
            k=self.base_problem.k,
            connected=self.base_problem.connected,
            required=required,
            forbidden=forbidden,
        )
        problem.ensure_feasible()
        return problem

    def _require_invited(self, node: NodeId) -> Invitation:
        try:
            return self.invitations[node]
        except KeyError:
            raise ValueError(f"{node!r} was never invited") from None
