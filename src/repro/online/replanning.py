"""Online computation — adjusting the group as invitations come back.

Paper §4.4.1: after invitations go out, some candidates decline.  The
already-confirmed attendees are *kept* (they anchor the partial solution,
like entangled queries that must stay coordinated), the decliners are
removed from the graph, and the second phase of CBAS-ND re-runs with the
confirmed set as the initial partial solution.  The start nodes of phase 1
need not be recomputed, which is why the paper calls the online step fast.

:class:`OnlinePlanner` wraps that loop as a small state machine:

    plan → invite → record accept/decline → replan → ... → final group
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.algorithms.base import RngLike, Solver, coerce_rng
from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.exceptions import SolverError
from repro.graph.social_graph import NodeId

__all__ = ["OnlinePlanner", "Invitation", "ResponseState"]


class ResponseState(Enum):
    """Lifecycle of one invitation."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    DECLINED = "declined"


@dataclass
class Invitation:
    """One person's invitation status."""

    node: NodeId
    state: ResponseState = ResponseState.PENDING


class OnlinePlanner:
    """Incremental group planner reacting to accepts / declines.

    Parameters
    ----------
    problem:
        The original WASO instance.
    solver:
        Solver used for the initial plan and each re-plan (default a
        CBAS-ND with a modest budget).
    rng:
        Seed / generator for reproducibility.
    """

    def __init__(
        self,
        problem: WASOProblem,
        solver: Optional[Solver] = None,
        rng: RngLike = None,
    ) -> None:
        self.base_problem = problem
        self.solver = solver if solver is not None else CBASND(budget=200)
        self.rng = coerce_rng(rng)
        self.invitations: dict[NodeId, Invitation] = {}
        self.declined: set[NodeId] = set()
        self.current: Optional[GroupSolution] = None

    # ------------------------------------------------------------------
    @property
    def accepted(self) -> set[NodeId]:
        return {
            inv.node
            for inv in self.invitations.values()
            if inv.state is ResponseState.ACCEPTED
        }

    @property
    def pending(self) -> set[NodeId]:
        return {
            inv.node
            for inv in self.invitations.values()
            if inv.state is ResponseState.PENDING
        }

    def plan(self) -> GroupSolution:
        """Compute (or re-compute) the recommended group.

        Confirmed attendees are required; declined ones are forbidden.
        Raises :class:`InfeasibleProblemError` when declines have made the
        target group size unreachable.
        """
        problem = self._current_problem()
        result = self.solver.solve(problem, rng=self.rng)
        self.current = result.solution
        for node in self.current.members:
            if node not in self.invitations:
                self.invitations[node] = Invitation(node=node)
        return self.current

    def record_accept(self, node: NodeId) -> None:
        """Mark ``node`` as confirmed."""
        invitation = self._require_invited(node)
        if invitation.state is ResponseState.DECLINED:
            raise ValueError(f"{node!r} already declined")
        invitation.state = ResponseState.ACCEPTED

    def record_decline(self, node: NodeId) -> GroupSolution:
        """Mark ``node`` as declined and immediately re-plan.

        Returns the refreshed group (confirmed attendees preserved).
        """
        invitation = self._require_invited(node)
        if invitation.state is ResponseState.ACCEPTED:
            raise ValueError(f"{node!r} already accepted")
        invitation.state = ResponseState.DECLINED
        self.declined.add(node)
        return self.plan()

    def finalize(self) -> GroupSolution:
        """Treat every pending invitation as accepted and return the group."""
        if self.current is None:
            self.plan()
        for node in list(self.pending):
            self.record_accept(node)
        assert self.current is not None
        return self.current

    # ------------------------------------------------------------------
    def _current_problem(self) -> WASOProblem:
        confirmed = self.accepted
        required = self.base_problem.required | frozenset(confirmed)
        forbidden = self.base_problem.forbidden | frozenset(self.declined)
        if len(required & forbidden) > 0:
            raise SolverError("a confirmed attendee later declined")
        problem = WASOProblem(
            graph=self.base_problem.graph,
            k=self.base_problem.k,
            connected=self.base_problem.connected,
            required=required,
            forbidden=forbidden,
        )
        problem.ensure_feasible()
        return problem

    def _require_invited(self, node: NodeId) -> Invitation:
        try:
            return self.invitations[node]
        except KeyError:
            raise ValueError(f"{node!r} was never invited") from None
