"""Online re-planning after attendee responses (paper §4.4.1)."""

from repro.online.replanning import Invitation, OnlinePlanner

__all__ = ["OnlinePlanner", "Invitation"]
