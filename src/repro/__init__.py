"""repro — reproduction of *Willingness Optimization for Social Group
Activity* (Shuai, Yang, Yu, Chen; VLDB 2013).

The library implements the WASO problem (select a connected group of ``k``
attendees maximizing the sum of interest and social-tightness scores), the
paper's randomized solvers CBAS and CBAS-ND (plus the DGreedy / RGreedy
baselines and exact IP ground truth), every scenario extension from §2.2
and §4.4, and the full evaluation harness that regenerates the paper's
figures.

Quickstart::

    from repro import facebook_like, recommend_group

    graph = facebook_like(500, seed=7)
    result = recommend_group(graph, k=10, solver="cbas-nd", rng=7)
    print(result.willingness, sorted(result.members))
"""

from repro.algorithms import (
    CBAS,
    CBASND,
    DGreedy,
    ExactBnB,
    IPSolver,
    RGreedy,
    SolveResult,
    Solver,
    SolveStats,
    available_solvers,
    make_solver,
)
from repro.core import (
    GroupSolution,
    WASOProblem,
    WillingnessEvaluator,
    recommend_group,
    solve_k_range,
    willingness,
)
from repro.exceptions import (
    BudgetExhaustedError,
    GraphError,
    InfeasibleProblemError,
    ProblemSpecificationError,
    ReproError,
    SolverError,
)
from repro.graph import (
    SocialGraph,
    dblp_like,
    facebook_like,
    figure1_graph,
    figure3_graph,
    flickr_like,
    random_social_graph,
)
from repro.runtime import (
    ExecutionContext,
    SolveRequest,
    choose_mode,
    request_from_spec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Graph
    "SocialGraph",
    "facebook_like",
    "dblp_like",
    "flickr_like",
    "random_social_graph",
    "figure1_graph",
    "figure3_graph",
    # Core
    "WASOProblem",
    "GroupSolution",
    "WillingnessEvaluator",
    "willingness",
    "recommend_group",
    "solve_k_range",
    # Runtime
    "ExecutionContext",
    "SolveRequest",
    "request_from_spec",
    "choose_mode",
    # Solvers
    "Solver",
    "SolveResult",
    "SolveStats",
    "DGreedy",
    "RGreedy",
    "CBAS",
    "CBASND",
    "ExactBnB",
    "IPSolver",
    "available_solvers",
    "make_solver",
    # Errors
    "ReproError",
    "GraphError",
    "ProblemSpecificationError",
    "InfeasibleProblemError",
    "SolverError",
    "BudgetExhaustedError",
]
