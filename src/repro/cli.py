"""Command-line interface.

Six subcommands::

    waso generate --family facebook --size 500 --seed 7 --out graph.json
    waso stats graph.json
    waso compile crawl.txt --cache-dir ~/.cache/waso
    waso solve graph.json --k 10 --solver cbas-nd --budget 300 --seed 7
    waso solve-many graph.json requests.jsonl --workers 4
    waso serve graph.json --port 7077 --max-queue 64

``compile`` freezes a graph (edge-list crawl or JSON) into an on-disk
compiled index — raw little-endian arrays plus a ``manifest.json`` (see
:mod:`repro.graph.storage`).  With ``--cache-dir`` the index is
content-addressed by the input bytes, so recompiling the same crawl is
a no-op; with ``--out`` it lands in an exact directory.  Everywhere the
other subcommands take a graph path (``solve``, ``solve-many``,
``serve`` and its ``--tenant`` values), a compiled-index directory is
accepted in place of a JSON file and is loaded mmap-backed — the
out-of-core serving path.

``solve`` prints the selected members and their willingness; ``--k-max``
turns it into a range query (one line per k).  ``--workers`` and
``--mode`` configure the runtime layer: ``--mode auto`` routes each
solve through the cost model in :mod:`repro.runtime.router`, ``serial``
/ ``solve`` / ``stage`` force an execution mode.  ``solve`` defaults to
``serial`` (seeded output identical on every machine); ``solve-many``
defaults to ``auto``.

``solve-many`` is the batched front door: every line of the JSONL file
is one request over the shared graph, e.g.::

    {"k": 8, "solver": "cbas-nd", "budget": 300, "seed": 7}
    {"k": 5, "required": [3], "budget": 200, "seed": 8}

Results come back in request order and are bit-identical to running
``solve`` once per line.  ``--timeout-s`` gives every request a
deadline and ``--max-retries`` bounds crash recovery; on partial
failure the completed requests print normally, each failed one prints a
JSONL error record (``index`` / ``error`` / ``retries`` / ``message``),
and the exit code is 2.

``serve`` runs the overload-safe serving daemon (:mod:`repro.serving`):
newline-delimited JSON requests over TCP (the ``solve-many`` spec plus
``id`` / ``tenant`` / ``slo_s``), bounded-queue admission control with
typed load shedding, SLO-inverted budget routing, and HTTP
``/healthz`` / ``/readyz`` / ``/metrics`` probes on the same port.
``--tenant name=graph.json`` (repeatable) registers extra graphs beside
the positional one (tenant ``default``).  The daemon drains on
SIGINT/SIGTERM: admitted requests are answered, then the pools shut
down.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms.registry import available_solvers
from repro.core.api import solve_k_range
from repro.exceptions import BatchExecutionError, ReproError
from repro.graph import generators
from repro.graph.io import (
    ingest_edge_list,
    load_edge_list,
    load_json,
    resolve_graph_source,
    save_json,
)
from repro.graph.stats import summarize
from repro.core.willingness import ENGINES
from repro.runtime import ExecutionContext, request_from_spec
from repro.runtime.router import MODES

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "facebook": generators.facebook_like,
    "dblp": generators.dblp_like,
    "flickr": generators.flickr_like,
    "random": generators.random_social_graph,
}


def _add_runtime_arguments(
    parser: argparse.ArgumentParser, default_mode: str
) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for the parallel modes (default: one per CPU)",
    )
    parser.add_argument(
        "--mode",
        choices=MODES,
        default=default_mode,
        help="execution-mode routing: auto (cost-model router), or force "
        "serial / solve (budget split across workers) / stage "
        "(stage-sharded CE).  Seeded `serial` output is identical on "
        "every machine; `auto` may route big solves to the stage pool, "
        f"whose results depend on the worker count (default: {default_mode})",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="compiled",
        help="sampling engine: compiled (flat-array kernels, bit-identical "
        "to reference), reference (dict-based oracle), or vector (numpy "
        "stage-batched kernels — fastest; bit-reproducible within the "
        "engine for any worker count, matches the oracle to tolerance) "
        "(default: compiled)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="waso",
        description=(
            "WASO group-activity planning "
            "(reproduction of Shuai et al., VLDB 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic social graph")
    gen.add_argument("--family", choices=sorted(_FAMILIES), default="facebook")
    gen.add_argument("--size", type=int, default=500)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True, help="output JSON path")

    stats = sub.add_parser("stats", help="summarize a graph file")
    stats.add_argument("graph", help="JSON graph path")

    comp = sub.add_parser(
        "compile",
        help="freeze a graph into an on-disk compiled index (mmap-ready)",
    )
    comp.add_argument(
        "graph",
        help="input graph: an edge-list crawl or a JSON graph file "
        "(JSON is detected by the .json extension; --json forces it)",
    )
    where = comp.add_mutually_exclusive_group(required=True)
    where.add_argument("--out", help="exact index directory to write")
    where.add_argument(
        "--cache-dir",
        help="content-addressed cache root: the index lands under a "
        "directory named by the input bytes' hash, so the same crawl "
        "compiles once ever",
    )
    comp.add_argument(
        "--json",
        action="store_true",
        help="treat the input as a JSON graph regardless of extension",
    )
    comp.add_argument(
        "--refresh",
        action="store_true",
        help="recompile even when the cache already holds this input",
    )

    solve = sub.add_parser("solve", help="recommend an activity group")
    solve.add_argument(
        "graph", help="JSON graph path or compiled-index directory"
    )
    solve.add_argument("--k", type=int, required=True)
    solve.add_argument("--k-max", type=int, default=None)
    solve.add_argument(
        "--solver", choices=available_solvers(), default="cbas-nd"
    )
    solve.add_argument("--budget", type=int, default=None)
    solve.add_argument("--m", type=int, default=None)
    solve.add_argument("--seed", type=int, default=None)
    solve.add_argument(
        "--disconnected",
        action="store_true",
        help="drop the connectivity constraint (WASO-dis)",
    )
    solve.add_argument(
        "--require",
        action="append",
        default=[],
        type=int,
        help="node id that must attend (repeatable)",
    )
    # `solve` defaults to serial so seeded output stays bit-identical
    # across machines (and to every previous release); `--mode auto`
    # opts into the router.
    _add_runtime_arguments(solve, default_mode="serial")

    many = sub.add_parser(
        "solve-many",
        help="solve a JSONL batch of requests over one graph",
    )
    many.add_argument(
        "graph", help="JSON graph path or compiled-index directory"
    )
    many.add_argument(
        "requests",
        help="JSONL file: one request object per line "
        '(e.g. {"k": 8, "solver": "cbas-nd", "budget": 300, "seed": 7})',
    )
    _add_runtime_arguments(many, default_mode="auto")
    many.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-request deadline in seconds (a request's own "
        "deadline_s field wins); an expired request fails with a "
        "JSONL error record while the rest of the batch completes",
    )
    many.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="how many times a dispatch whose worker crashed is "
        "retried before degrading to in-parent execution "
        "(default: the pools' built-in budget)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the JSONL serving daemon over one or more graphs",
    )
    serve.add_argument(
        "graph",
        help="JSON graph path or compiled-index directory (tenant "
        "'default')",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=GRAPH",
        help="register an extra tenant graph: NAME=path to a JSON graph "
        "or a compiled-index directory (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound address is announced "
        "on stdout)",
    )
    _add_runtime_arguments(serve, default_mode="auto")
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission queue bound; arrivals past it are shed with a "
        'typed kind="shed" rejection (default: 64)',
    )
    serve.add_argument(
        "--max-inflight-per-tenant",
        type=int,
        default=None,
        help="per-tenant cap on admitted-but-unanswered requests "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--queue-timeout-s",
        type=float,
        default=None,
        help="queue patience: an admitted request waiting longer is "
        'rejected with kind="queue_timeout" at the next dispatch '
        "boundary (default: wait forever)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="most requests one dispatch batch may carry (default: 8)",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="default per-request deadline in seconds (a request's own "
        "deadline_s field wins)",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="crash-retry budget for the pools (default: built-in)",
    )

    return parser


def _solver_kwargs(args) -> dict:
    kwargs = {}
    if args.budget is not None:
        kwargs["budget"] = args.budget
    if args.m is not None:
        kwargs["m"] = args.m
    return kwargs


def _load_graph(source: str):
    """A graph from a CLI path: JSON file or compiled-index directory."""
    try:
        return resolve_graph_source(source)
    except ReproError as error:
        raise SystemExit(f"cannot load graph {source!r}: {error}") from None


def _compile_command(args) -> int:
    import hashlib
    from pathlib import Path

    from repro.graph.storage import MANIFEST_NAME, save_compiled

    is_json = args.json or args.graph.endswith(".json")
    try:
        if args.out is not None:
            graph = (
                load_json(args.graph) if is_json else load_edge_list(args.graph)
            )
            index = Path(args.out)
            save_compiled(graph.compiled(), index)
        elif is_json:
            digest = hashlib.sha256(Path(args.graph).read_bytes()).hexdigest()
            index = Path(args.cache_dir) / digest[:20]
            if args.refresh or not (index / MANIFEST_NAME).is_file():
                save_compiled(load_json(args.graph).compiled(), index)
        else:
            index = ingest_edge_list(
                args.graph, args.cache_dir, refresh=args.refresh
            )
    except (OSError, ValueError, ReproError) as error:
        raise SystemExit(f"cannot compile {args.graph!r}: {error}") from None
    manifest = json.loads((index / MANIFEST_NAME).read_text(encoding="utf-8"))
    print(f"index: {index}")
    print(
        f"token: {manifest['payload_token']}  "
        f"nodes: {manifest['nodes']['count']}  "
        f"edges: {manifest['arrays']['targets']['count'] // 2}"
    )
    return 0


def _load_requests(graph, path: str) -> list:
    requests = []
    known_solvers = set(available_solvers())
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spec = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            try:
                request = request_from_spec(graph, spec)
            except (TypeError, ValueError, ReproError) as error:
                raise SystemExit(
                    f"{path}:{line_number}: invalid request: {error}"
                ) from None
            if request.solver not in known_solvers:
                raise SystemExit(
                    f"{path}:{line_number}: unknown solver "
                    f"{request.solver!r}; available: "
                    f"{sorted(known_solvers)}"
                )
            requests.append(request)
    return requests


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        graph = _FAMILIES[args.family](args.size, seed=args.seed)
        save_json(graph, args.out)
        print(f"wrote {args.family} graph: {summarize(graph)}")
        return 0

    if args.command == "stats":
        graph = load_json(args.graph)
        print(summarize(graph))
        return 0

    if args.command == "compile":
        return _compile_command(args)

    if args.command == "solve":
        graph = _load_graph(args.graph)
        k_max = args.k_max if args.k_max is not None else args.k
        with ExecutionContext(
            engine=args.engine, mode=args.mode, workers=args.workers
        ) as context:
            results = solve_k_range(
                graph,
                args.k,
                k_max,
                solver=args.solver,
                connected=not args.disconnected,
                required=args.require,
                rng=args.seed,
                context=context,
                **_solver_kwargs(args),
            )
        for k, result in results.items():
            members = ", ".join(map(str, result.solution.sorted_members()))
            print(
                f"k={k}: W={result.willingness:.4f} "
                f"({result.stats.elapsed_seconds * 1e3:.1f} ms) "
                f"members=[{members}]"
            )
        return 0

    if args.command == "solve-many":
        graph = _load_graph(args.graph)
        requests = _load_requests(graph, args.requests)
        if not requests:
            print("no requests")
            return 0
        if args.timeout_s is not None:
            if args.timeout_s <= 0:
                raise SystemExit(
                    f"--timeout-s must be positive, got {args.timeout_s}"
                )
            for request in requests:
                if request.deadline_s is None:
                    request.deadline_s = args.timeout_s
        if args.max_retries is not None and args.max_retries < 0:
            raise SystemExit(
                f"--max-retries must be >= 0, got {args.max_retries}"
            )
        failures: dict = {}
        with ExecutionContext(
            engine=args.engine,
            mode=args.mode,
            workers=args.workers,
            max_retries=args.max_retries,
        ) as context:
            try:
                results = context.solve_many(requests)
            except BatchExecutionError as error:
                # Partial failure is not a crash: the batch drained, the
                # completed requests print normally, and each failed one
                # becomes a machine-readable JSONL error record.
                results = error.results
                failures = error.failures
        for index, (request, result) in enumerate(zip(requests, results)):
            if result is None:
                failure = failures[index]
                message = str(failure).strip()
                print(
                    json.dumps(
                        {
                            "index": index,
                            "error": getattr(
                                failure, "kind", "solver_error"
                            ),
                            "retries": getattr(failure, "retries", 0),
                            "message": (
                                message.splitlines()[-1] if message else ""
                            ),
                        },
                        sort_keys=True,
                    )
                )
                continue
            members = ", ".join(map(str, result.solution.sorted_members()))
            print(
                f"#{index} {request.solver} k={request.problem.k}: "
                f"W={result.willingness:.4f} members=[{members}]"
            )
        return 2 if failures else 0

    if args.command == "serve":
        from repro.serving import ServingDaemon, run_daemon

        graphs = {"default": _load_graph(args.graph)}
        for entry in args.tenant:
            name, separator, path = entry.partition("=")
            if not separator or not name or not path:
                raise SystemExit(
                    f"--tenant needs NAME=GRAPH, got {entry!r}"
                )
            graphs[name] = _load_graph(path)
        try:
            daemon = ServingDaemon(
                graphs,
                engine=args.engine,
                mode=args.mode,
                workers=args.workers,
                max_retries=args.max_retries,
                max_queue=args.max_queue,
                max_inflight_per_tenant=args.max_inflight_per_tenant,
                queue_timeout_s=args.queue_timeout_s,
                batch_max=args.batch_max,
                default_deadline_s=args.timeout_s,
            )
        except (TypeError, ValueError, ReproError) as error:
            raise SystemExit(f"invalid serve configuration: {error}") from None
        return run_daemon(daemon, host=args.host, port=args.port)

    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
