"""Command-line interface.

Three subcommands::

    waso generate --family facebook --size 500 --seed 7 --out graph.json
    waso stats graph.json
    waso solve graph.json --k 10 --solver cbas-nd --budget 300 --seed 7

``solve`` prints the selected members and their willingness;
``--k-max`` turns it into a range query (one line per k).
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms.registry import available_solvers
from repro.core.api import solve_k_range
from repro.graph import generators
from repro.graph.io import load_json, save_json
from repro.graph.stats import summarize

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "facebook": generators.facebook_like,
    "dblp": generators.dblp_like,
    "flickr": generators.flickr_like,
    "random": generators.random_social_graph,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="waso",
        description=(
            "WASO group-activity planning "
            "(reproduction of Shuai et al., VLDB 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic social graph")
    gen.add_argument("--family", choices=sorted(_FAMILIES), default="facebook")
    gen.add_argument("--size", type=int, default=500)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True, help="output JSON path")

    stats = sub.add_parser("stats", help="summarize a graph file")
    stats.add_argument("graph", help="JSON graph path")

    solve = sub.add_parser("solve", help="recommend an activity group")
    solve.add_argument("graph", help="JSON graph path")
    solve.add_argument("--k", type=int, required=True)
    solve.add_argument("--k-max", type=int, default=None)
    solve.add_argument(
        "--solver", choices=available_solvers(), default="cbas-nd"
    )
    solve.add_argument("--budget", type=int, default=None)
    solve.add_argument("--m", type=int, default=None)
    solve.add_argument("--seed", type=int, default=None)
    solve.add_argument(
        "--disconnected",
        action="store_true",
        help="drop the connectivity constraint (WASO-dis)",
    )
    solve.add_argument(
        "--require",
        action="append",
        default=[],
        type=int,
        help="node id that must attend (repeatable)",
    )
    return parser


def _solver_kwargs(args) -> dict:
    kwargs = {}
    if args.budget is not None:
        kwargs["budget"] = args.budget
    if args.m is not None:
        kwargs["m"] = args.m
    return kwargs


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        graph = _FAMILIES[args.family](args.size, seed=args.seed)
        save_json(graph, args.out)
        print(f"wrote {args.family} graph: {summarize(graph)}")
        return 0

    if args.command == "stats":
        graph = load_json(args.graph)
        print(summarize(graph))
        return 0

    if args.command == "solve":
        graph = load_json(args.graph)
        k_max = args.k_max if args.k_max is not None else args.k
        results = solve_k_range(
            graph,
            args.k,
            k_max,
            solver=args.solver,
            connected=not args.disconnected,
            required=args.require,
            rng=args.seed,
            **_solver_kwargs(args),
        )
        for k, result in results.items():
            members = ", ".join(map(str, result.solution.sorted_members()))
            print(
                f"k={k}: W={result.willingness:.4f} "
                f"({result.stats.elapsed_seconds * 1e3:.1f} ms) "
                f"members=[{members}]"
            )
        return 0

    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
