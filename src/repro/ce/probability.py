"""Node-selection probability vectors and the cross-entropy update.

CBAS-ND maintains, per start node, a probability ``p_j`` of selecting each
node ``v_j`` during expansion (Definition 3).  After each stage the vector
is refitted to the *elite* samples — those whose willingness reaches the
top-ρ quantile ``γ`` (Definition 5) — via the paper's Eq. (4):

    p_j ← Σ_q 1{W(X_q) ≥ γ} · x_{q,j}  /  Σ_q 1{W(X_q) ≥ γ}

which §4.3 proves is the minimizer of the Kullback–Leibler distance to the
optimal importance-sampling density.  A smoothing step
``p ← w·p_new + (1 − w)·p_old`` keeps every probability strictly inside
(0, 1) so no node is permanently locked in or out.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.algorithms.sampling import Sample
from repro.graph.social_graph import NodeId

__all__ = ["SelectionProbabilities", "elite_threshold"]


def elite_threshold(willingness_values: Sequence[float], rho: float) -> float:
    """Top-ρ sample quantile ``γ = W_(⌈ρN⌉)`` (Definition 5).

    ``willingness_values`` need not be sorted; ``rho`` in (0, 1].
    """
    if not willingness_values:
        raise ValueError("cannot take a quantile of zero samples")
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must lie in (0, 1], got {rho}")
    ordered = sorted(willingness_values, reverse=True)
    rank = max(1, math.ceil(rho * len(ordered)))
    return ordered[rank - 1]


class SelectionProbabilities:
    """One start node's node-selection probability vector ``p_i``.

    Parameters
    ----------
    candidates:
        Nodes the vector ranges over (the problem's allowed nodes).
    k:
        Group size; the paper initializes every entry to ``(k − 1)/|V|``
        (homogeneous — stage 1 of CBAS-ND behaves exactly like CBAS).
    """

    def __init__(self, candidates: Iterable[NodeId], k: int) -> None:
        nodes = list(candidates)
        if not nodes:
            raise ValueError("need at least one candidate node")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        initial = min(1.0, (k - 1) / len(nodes)) if len(nodes) > 1 else 1.0
        if initial <= 0.0:
            initial = 1.0 / len(nodes)
        self._p: dict[NodeId, float] = {node: initial for node in nodes}
        self.gamma = -math.inf  # monotone elite threshold (pseudo-code 36-39)

    # ------------------------------------------------------------------
    def probability(self, node: NodeId) -> float:
        """Current selection probability of ``node`` (0 if unknown)."""
        return self._p.get(node, 0.0)

    __call__ = probability

    def as_dict(self) -> dict[NodeId, float]:
        return dict(self._p)

    # ------------------------------------------------------------------
    def update(
        self,
        samples: Sequence[Sample],
        rho: float,
        smoothing: float,
    ) -> float:
        """Apply Eq. (4) + smoothing using this stage's ``samples``.

        Returns the squared L2 distance between the old and new vectors —
        the convergence signal ``z_i`` of §4.4.2.  The elite threshold is
        kept monotone across stages as in Algorithm 2 (lines 36–39): the
        new stage's quantile only replaces ``γ`` when it improves it.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(
                f"smoothing weight must lie in [0, 1], got {smoothing}"
            )
        if not samples:
            return 0.0

        stage_gamma = elite_threshold(
            [sample.willingness for sample in samples], rho
        )
        self.gamma = max(self.gamma, stage_gamma)
        elites = [s for s in samples if s.willingness >= self.gamma]
        if not elites:
            # Every sample of this stage fell below the historic threshold;
            # keep the vector unchanged rather than fitting to nothing.
            return 0.0

        counts: dict[NodeId, int] = {}
        for sample in elites:
            for node in sample.members:
                counts[node] = counts.get(node, 0) + 1

        distance = 0.0
        size = len(elites)
        for node, old in self._p.items():
            target = counts.get(node, 0) / size
            new = smoothing * target + (1.0 - smoothing) * old
            distance += (new - old) ** 2
            self._p[node] = new
        return distance

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[NodeId, float]:
        """Copy of the vector (used by the backtracking controller)."""
        return dict(self._p)

    def restore(self, snapshot: dict[NodeId, float]) -> None:
        """Reset the vector to a previous :meth:`snapshot`."""
        self._p = dict(snapshot)

    def kl_distance(self, other: "SelectionProbabilities") -> float:
        """Bernoulli-factorized KL distance between two vectors.

        ``Σ_j p ln(p/q) + (1−p) ln((1−p)/(1−q))`` with clamping away from
        {0, 1}.  Exposed for diagnostics and tests of the CE theory.
        """

        def _clamp(x: float) -> float:
            return min(1.0 - 1e-12, max(1e-12, x))

        total = 0.0
        for node, p_raw in self._p.items():
            p = _clamp(p_raw)
            q = _clamp(other.probability(node))
            total += p * math.log(p / q)
            total += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
        return total
