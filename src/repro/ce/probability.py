"""Node-selection probability vectors and the cross-entropy update.

CBAS-ND maintains, per start node, a probability ``p_j`` of selecting each
node ``v_j`` during expansion (Definition 3).  After each stage the vector
is refitted to the *elite* samples — those whose willingness reaches the
top-ρ quantile ``γ`` (Definition 5) — via the paper's Eq. (4):

    p_j ← Σ_q 1{W(X_q) ≥ γ} · x_{q,j}  /  Σ_q 1{W(X_q) ≥ γ}

which §4.3 proves is the minimizer of the Kullback–Leibler distance to the
optimal importance-sampling density.  A smoothing step
``p ← w·p_new + (1 − w)·p_old`` keeps every probability strictly inside
(0, 1) so no node is permanently locked in or out.

Array layout and id-domain contract
-----------------------------------
The vector is stored as one flat ``list[float]`` plus an id mapping, in
one of two domains:

* **Compiled domain** — constructed with ``index_of=`` (the
  :attr:`~repro.graph.compiled.CompiledGraph.index_of` mapping of the
  problem's frozen index, shared, never copied): the array has one slot
  per *graph* node, indexed by compiled int id.  :attr:`array` then
  exposes the raw list so the fast sampler can weight a frontier draw
  with plain list indexing (``array[frontier_id]``, no per-slot dict
  probe) and the elite refit can count membership straight off
  :attr:`~repro.algorithms.sampling.Sample.indices`.  Slots of
  non-candidate (forbidden) nodes stay ``0.0`` and are never touched by
  the update.
* **Local domain** — the default (reference engine, hand-built tests):
  slots are candidate positions in input order and
  :meth:`probability` probes a node→slot dict.  :attr:`array` is ``None``.

Both domains run the identical Eq. (4) arithmetic over the candidates in
the same (input) order, so the probability values — and therefore seeded
solver runs — are bit-identical whichever domain backs the vector.
:meth:`as_dict` is the thin dict view in either domain; the execution
stack itself never converts back to node ids mid-solve.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.algorithms.sampling import Sample
from repro.graph.social_graph import NodeId

__all__ = ["SelectionProbabilities", "elite_threshold"]


def elite_threshold(willingness_values: Sequence[float], rho: float) -> float:
    """Top-ρ sample quantile ``γ = W_(⌈ρN⌉)`` (Definition 5).

    ``willingness_values`` need not be sorted; ``rho`` in (0, 1].
    """
    if not willingness_values:
        raise ValueError("cannot take a quantile of zero samples")
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must lie in (0, 1], got {rho}")
    ordered = sorted(willingness_values, reverse=True)
    rank = max(1, math.ceil(rho * len(ordered)))
    return ordered[rank - 1]


class SelectionProbabilities:
    """One start node's node-selection probability vector ``p_i``.

    Parameters
    ----------
    candidates:
        Nodes the vector ranges over (the problem's allowed nodes).
    k:
        Group size; the paper initializes every entry to ``(k − 1)/|V|``
        (homogeneous — stage 1 of CBAS-ND behaves exactly like CBAS).
    index_of:
        Optional compiled-id mapping (``CompiledGraph.index_of``).  When
        given, the vector lives in the compiled int-id domain (see the
        module docstring) and :attr:`array` serves the fast sampler
        directly; the mapping is shared by reference, not copied.
    size:
        Array length for the compiled domain (defaults to
        ``len(index_of)``, i.e. one slot per graph node).
    """

    __slots__ = (
        "_p",
        "_index_of",
        "_candidates",
        "_candidate_ids",
        "index_map",
        "gamma",
    )

    def __init__(
        self,
        candidates: Iterable[NodeId],
        k: int,
        *,
        index_of: "Mapping[NodeId, int] | None" = None,
        size: "int | None" = None,
    ) -> None:
        nodes = list(candidates)
        if not nodes:
            raise ValueError("need at least one candidate node")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        initial = min(1.0, (k - 1) / len(nodes)) if len(nodes) > 1 else 1.0
        if initial <= 0.0:
            initial = 1.0 / len(nodes)
        if index_of is None:
            #: identity of the shared compiled mapping (None = local domain)
            self.index_map = None
            self._index_of = {node: slot for slot, node in enumerate(nodes)}
            length = len(nodes)
        else:
            self.index_map = index_of
            self._index_of = index_of
            length = len(index_of) if size is None else size
        self._candidates = nodes
        self._candidate_ids = [self._index_of[node] for node in nodes]
        p = [0.0] * length
        for slot in self._candidate_ids:
            p[slot] = initial
        self._p = p
        self.gamma = -math.inf  # monotone elite threshold (pseudo-code 36-39)

    # ------------------------------------------------------------------
    @property
    def array(self) -> "list[float] | None":
        """Compiled-id-indexed weight array (``None`` in the local domain).

        The fast sampler hands this straight to its frontier draw; the
        list object is mutated in place by :meth:`update` so a borrowed
        reference stays current within one stage.
        """
        return self._p if self.index_map is not None else None

    def probability(self, node: NodeId) -> float:
        """Current selection probability of ``node`` (0 if unknown)."""
        slot = self._index_of.get(node)
        return 0.0 if slot is None else self._p[slot]

    __call__ = probability

    def set_probability(self, node: NodeId, value: float) -> None:
        """Install a probability by hand (tests / worked paper examples)."""
        try:
            self._p[self._index_of[node]] = value
        except KeyError:
            raise KeyError(f"{node!r} is not in this vector's domain") from None

    def reset_threshold(self) -> None:
        """Forget the monotone elite threshold ``γ`` (keep probabilities).

        Used when a vector survives into a *different* problem (online
        re-planning after declines): the old γ was earned against the old
        willingness ceiling, and carrying it over could leave every new
        stage's samples below threshold — freezing the vector for good.
        """
        self.gamma = -math.inf

    def replicate(self) -> "SelectionProbabilities":
        """Independent copy sharing the (read-only) domain metadata.

        CBAS-ND keeps one vector per start node over the same candidate
        set; replicating a freshly-built template gives each start its
        own probability array without re-deriving the candidate→slot
        mapping m times.
        """
        clone = SelectionProbabilities.__new__(SelectionProbabilities)
        clone.index_map = self.index_map
        clone._index_of = self._index_of
        clone._candidates = self._candidates
        clone._candidate_ids = self._candidate_ids
        clone._p = list(self._p)
        clone.gamma = self.gamma
        return clone

    def as_dict(self) -> dict[NodeId, float]:
        """Dict view ``{candidate: probability}`` (candidate input order)."""
        p = self._p
        return {
            node: p[slot]
            for node, slot in zip(self._candidates, self._candidate_ids)
        }

    # ------------------------------------------------------------------
    def update(
        self,
        samples: Sequence[Sample],
        rho: float,
        smoothing: float,
        compute_movement: bool = True,
    ) -> float:
        """Apply Eq. (4) + smoothing using this stage's ``samples``.

        Returns the squared L2 distance between the old and new vectors —
        the convergence signal ``z_i`` of §4.4.2.  The elite threshold is
        kept monotone across stages as in Algorithm 2 (lines 36–39): the
        new stage's quantile only replaces ``γ`` when it improves it.

        Elite membership is counted from :attr:`Sample.indices` when both
        the vector and the sample live in the compiled id domain — a plain
        array increment per member — falling back to node-id translation
        for reference-path samples.

        ``compute_movement=False`` skips the O(n) squared-distance
        accumulation and returns 0.0 (callers without backtracking — the
        default CBAS-ND configuration — discard the signal anyway); the
        probability values themselves are updated identically either way.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(
                f"smoothing weight must lie in [0, 1], got {smoothing}"
            )
        if not samples:
            return 0.0

        stage_gamma = elite_threshold(
            [sample.willingness for sample in samples], rho
        )
        self.gamma = max(self.gamma, stage_gamma)
        elites = [s for s in samples if s.willingness >= self.gamma]
        if not elites:
            # Every sample of this stage fell below the historic threshold;
            # keep the vector unchanged rather than fitting to nothing.
            return 0.0

        p = self._p
        compiled_domain = self.index_map is not None
        index_of = self._index_of
        counts: dict[int, int] = {}
        for sample in elites:
            indices = sample.indices if compiled_domain else None
            if indices is not None:
                for slot in indices:
                    counts[slot] = counts.get(slot, 0) + 1
            else:
                for node in sample.members:
                    slot = index_of.get(node)
                    if slot is not None:
                        counts[slot] = counts.get(slot, 0) + 1

        # Eq. (4) + smoothing, restructured around the elite-touched
        # slots: an untouched slot's elite frequency is 0, so its new
        # value is exactly ``(1 − w) · old`` (``w·0.0 + x == x`` in IEEE
        # arithmetic) — applied to the whole array with one C-level
        # comprehension — while only the ≤ k·|elites| touched slots get
        # the full formula.  Per-slot values are bit-identical to the
        # naive full loop; the movement sum groups the untouched term as
        # ``w² · Σ old²``.  Touched slots are visited in sorted (slot)
        # order so the movement is independent of how membership was
        # counted (int ids vs node-id translation).
        size = len(elites)
        keep = 1.0 - smoothing
        old_touched = {slot: p[slot] for slot in counts}
        total_sq = (
            sum([value * value for value in p]) if compute_movement else 0.0
        )
        p[:] = [keep * value for value in p]
        touched_sq = 0.0
        touched_term = 0.0
        for slot in sorted(counts):
            old = old_touched[slot]
            new = smoothing * (counts[slot] / size) + keep * old
            p[slot] = new
            if compute_movement:
                touched_sq += old * old
                touched_term += (new - old) ** 2
        if not compute_movement:
            return 0.0
        return smoothing * smoothing * (total_sq - touched_sq) + touched_term

    # ------------------------------------------------------------------
    def snapshot(self) -> list[float]:
        """Copy of the flat array (used by the backtracking controller)."""
        return list(self._p)

    def restore(self, snapshot: Sequence[float]) -> None:
        """Reset the vector to a previous :meth:`snapshot`.

        Restores in place so borrowed :attr:`array` references (the fast
        sampler holds one during a stage) stay valid.
        """
        if len(snapshot) != len(self._p):
            raise ValueError(
                f"snapshot length {len(snapshot)} does not match "
                f"vector length {len(self._p)}"
            )
        self._p[:] = snapshot

    def kl_distance(self, other: "SelectionProbabilities") -> float:
        """Bernoulli-factorized KL distance between two vectors.

        ``Σ_j p ln(p/q) + (1−p) ln((1−p)/(1−q))`` with clamping away from
        {0, 1}.  Exposed for diagnostics and tests of the CE theory.
        """

        def _clamp(x: float) -> float:
            return min(1.0 - 1e-12, max(1e-12, x))

        p_arr = self._p
        total = 0.0
        for node, slot in zip(self._candidates, self._candidate_ids):
            p = _clamp(p_arr[slot])
            q = _clamp(other.probability(node))
            total += p * math.log(p / q)
            total += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
        return total
