"""Node-selection probability vectors and the cross-entropy update.

CBAS-ND maintains, per start node, a probability ``p_j`` of selecting each
node ``v_j`` during expansion (Definition 3).  After each stage the vector
is refitted to the *elite* samples — those whose willingness reaches the
top-ρ quantile ``γ`` (Definition 5) — via the paper's Eq. (4):

    p_j ← Σ_q 1{W(X_q) ≥ γ} · x_{q,j}  /  Σ_q 1{W(X_q) ≥ γ}

which §4.3 proves is the minimizer of the Kullback–Leibler distance to the
optimal importance-sampling density.  A smoothing step
``p ← w·p_new + (1 − w)·p_old`` keeps every probability strictly inside
(0, 1) so no node is permanently locked in or out.

Array layout and id-domain contract
-----------------------------------
The vector is stored as one flat ``list[float]`` plus an id mapping, in
one of two domains:

* **Compiled domain** — constructed with ``index_of=`` (the
  :attr:`~repro.graph.compiled.CompiledGraph.index_of` mapping of the
  problem's frozen index, shared, never copied): the array has one slot
  per *graph* node, indexed by compiled int id.  :attr:`array` then
  exposes the raw list so the fast sampler can weight a frontier draw
  with plain list indexing (``array[frontier_id]``, no per-slot dict
  probe) and the elite refit can count membership straight off
  :attr:`~repro.algorithms.sampling.Sample.indices`.  Slots of
  non-candidate (forbidden) nodes stay ``0.0`` and are never touched by
  the update.
* **Local domain** — the default (reference engine, hand-built tests):
  slots are candidate positions in input order and
  :meth:`probability` probes a node→slot dict.  :attr:`array` is ``None``.

Both domains run the identical Eq. (4) arithmetic over the candidates in
the same (input) order, so the probability values — and therefore seeded
solver runs — are bit-identical whichever domain backs the vector.
:meth:`as_dict` is the thin dict view in either domain; the execution
stack itself never converts back to node ids mid-solve.

Lazy decay
----------
The smoothing step multiplies *every* slot by ``1 − w`` each stage; only
the ≤ k·|elites| elite-touched slots get the full Eq. (4) formula.  The
refit therefore records the uniform decay as a pending *round* (the keep
factor is appended to an internal list) in O(touched) time instead of
rewriting the whole O(n) array, and true values are materialized only on
read/draw — :attr:`array` (the fast sampler borrows it once per batch),
:meth:`probability`, :meth:`snapshot`, :meth:`as_dict`, ….

Materialization is **exact**, not a folded scale factor: each slot
remembers how many rounds are already folded into it, and catching up
applies the pending keep factors as the same left-to-right chain of
multiplications the historical eager comprehension performed
(``((p·k₁)·k₂)·…``).  A single accumulated product ``p·(k₁·k₂·…)`` would
drift from the eager path in the last ulp and flip quantile-threshold
comparisons downstream; the factored chain keeps lazily-materialized
values — and therefore seeded draws on both engines — bit-identical to
the eager implementation.  A vector that is refitted but never read again
(pruned or unfunded start nodes, the coordinator side of a stage-sharded
solve) never pays the O(n) pass at all.

Sharded stage merge
-------------------
A stage-sharded solve (``repro.parallel.stage_pool``) draws a stage's
samples in worker processes and refits the parent's vector from merged
per-shard elite evidence: :meth:`observe_stage_gamma` folds the merged
stage quantile into the monotone threshold and :meth:`update_from_counts`
applies Eq. (4) from pre-aggregated elite membership counts — the exact
arithmetic of :meth:`update`, minus the per-sample scan.  Both refit
entry points return the applied round as a compact *patch*
``("round", keep, ((slot, value), …))``; worker-resident mirror vectors
replay it with :meth:`apply_round` (or :meth:`restore` for a full-array
resync) and stay bit-identical to the parent without the parent ever
re-shipping the O(n) array.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.algorithms.sampling import Sample
from repro.graph.social_graph import NodeId

__all__ = ["SelectionProbabilities", "elite_threshold"]


def elite_threshold(willingness_values: Sequence[float], rho: float) -> float:
    """Top-ρ sample quantile ``γ = W_(⌈ρN⌉)`` (Definition 5).

    ``willingness_values`` need not be sorted; ``rho`` in (0, 1].
    """
    if not willingness_values:
        raise ValueError("cannot take a quantile of zero samples")
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must lie in (0, 1], got {rho}")
    ordered = sorted(willingness_values, reverse=True)
    rank = max(1, math.ceil(rho * len(ordered)))
    return ordered[rank - 1]


class SelectionProbabilities:
    """One start node's node-selection probability vector ``p_i``.

    Parameters
    ----------
    candidates:
        Nodes the vector ranges over (the problem's allowed nodes).
    k:
        Group size; the paper initializes every entry to ``(k − 1)/|V|``
        (homogeneous — stage 1 of CBAS-ND behaves exactly like CBAS).
    index_of:
        Optional compiled-id mapping (``CompiledGraph.index_of``).  When
        given, the vector lives in the compiled int-id domain (see the
        module docstring) and :attr:`array` serves the fast sampler
        directly; the mapping is shared by reference, not copied.
    size:
        Array length for the compiled domain (defaults to
        ``len(index_of)``, i.e. one slot per graph node).
    backend:
        ``"list"`` (default) stores ``_p`` as a plain list with the lazy
        decay-round machinery; ``"numpy"`` (the vector engine) stores a
        float64 ndarray and applies every refit round eagerly with one
        vectorized multiply — the decay chain then has one factor per
        round applied left-to-right, so per-slot values stay
        IEEE-identical to the lazy chain.  The numpy backend never books
        pending rounds, which makes every materialization path a no-op.
    """

    __slots__ = (
        "_p",
        "_backend",
        "_age",
        "_keeps",
        "_stale_rounds",
        "_last_touched",
        "_slot_materialized",
        "_index_of",
        "_candidates",
        "_candidate_ids",
        "index_map",
        "gamma",
    )

    def __init__(
        self,
        candidates: Iterable[NodeId],
        k: int,
        *,
        index_of: "Mapping[NodeId, int] | None" = None,
        size: "int | None" = None,
        backend: str = "list",
    ) -> None:
        if backend not in ("list", "numpy"):
            raise ValueError(
                f"backend must be 'list' or 'numpy', got {backend!r}"
            )
        nodes = list(candidates)
        if not nodes:
            raise ValueError("need at least one candidate node")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        initial = min(1.0, (k - 1) / len(nodes)) if len(nodes) > 1 else 1.0
        if initial <= 0.0:
            initial = 1.0 / len(nodes)
        if index_of is None:
            #: identity of the shared compiled mapping (None = local domain)
            self.index_map = None
            self._index_of = {node: slot for slot, node in enumerate(nodes)}
            length = len(nodes)
        else:
            self.index_map = index_of
            self._index_of = index_of
            length = len(index_of) if size is None else size
        self._candidates = nodes
        self._candidate_ids = [self._index_of[node] for node in nodes]
        self._backend = backend
        if backend == "numpy":
            p = np.zeros(length, dtype=np.float64)
            p[self._candidate_ids] = initial
            self._p = p
        else:
            p = [0.0] * length
            for slot in self._candidate_ids:
                p[slot] = initial
            self._p = p
        # Lazy-decay bookkeeping: _keeps[r] is the keep factor of refit
        # round r, _age[slot] the number of rounds already folded into
        # _p[slot].  _stale_rounds / _last_touched / _slot_materialized
        # exist only to keep the common one-pending-round full
        # materialization on the C-level comprehension fast path.
        self._age = [0] * length
        self._keeps: list[float] = []
        self._stale_rounds = 0
        self._last_touched: tuple = ()
        self._slot_materialized = False
        self.gamma = -math.inf  # monotone elite threshold (pseudo-code 36-39)

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    def _materialize_slot(self, slot: int) -> float:
        """Fold pending decay rounds into one slot (exact factored chain)."""
        keeps = self._keeps
        rounds = len(keeps)
        age = self._age[slot]
        value = self._p[slot]
        if age != rounds:
            while age < rounds:
                value *= keeps[age]
                age += 1
            self._p[slot] = value
            self._age[slot] = rounds
            self._slot_materialized = True
        return value

    def _materialize_all(self) -> None:
        """Fold pending decay rounds into every slot.

        The common case — exactly one pending round and no slot read
        since — decays the whole array with one C-level comprehension and
        restores the round's touched slots (which are already current),
        reproducing the historical eager pass bit-for-bit.  Mixed ages
        (several pending rounds, or interleaved per-slot reads) fall back
        to the per-slot factored chain, which is equally exact.
        """
        if not self._stale_rounds:
            return
        p = self._p
        keeps = self._keeps
        rounds = len(keeps)
        if self._stale_rounds == 1 and not self._slot_materialized:
            keep = keeps[-1]
            saved = [(slot, p[slot]) for slot in self._last_touched]
            p[:] = [keep * value for value in p]
            for slot, value in saved:
                p[slot] = value
        else:
            ages = self._age
            for slot, age in enumerate(ages):
                if age == rounds:
                    continue
                value = p[slot]
                while age < rounds:
                    value *= keeps[age]
                    age += 1
                p[slot] = value
        self._age = [rounds] * len(p)
        self._stale_rounds = 0
        self._last_touched = ()
        self._slot_materialized = False

    # ------------------------------------------------------------------
    @property
    def array(self) -> "list[float] | None":
        """Compiled-id-indexed weight array (``None`` in the local domain).

        Pending decay rounds are materialized on access, so the fast
        sampler can hand the returned list straight to its frontier draw;
        the list object is mutated in place by the refit so a borrowed
        reference stays current within one stage.
        """
        if self.index_map is None:
            return None
        self._materialize_all()
        return self._p

    def probability(self, node: NodeId) -> float:
        """Current selection probability of ``node`` (0 if unknown)."""
        slot = self._index_of.get(node)
        if slot is None:
            return 0.0
        if self._age[slot] != len(self._keeps):
            return self._materialize_slot(slot)
        return self._p[slot]

    __call__ = probability

    def set_probability(self, node: NodeId, value: float) -> None:
        """Install a probability by hand (tests / worked paper examples)."""
        try:
            slot = self._index_of[node]
        except KeyError:
            raise KeyError(f"{node!r} is not in this vector's domain") from None
        self._materialize_all()
        self._p[slot] = value

    def reset_threshold(self) -> None:
        """Forget the monotone elite threshold ``γ`` (keep probabilities).

        Used when a vector survives into a *different* problem (online
        re-planning after declines): the old γ was earned against the old
        willingness ceiling, and carrying it over could leave every new
        stage's samples below threshold — freezing the vector for good.
        """
        self.gamma = -math.inf

    def observe_stage_gamma(self, stage_gamma: float) -> float:
        """Fold one stage's elite quantile into the monotone threshold.

        Algorithm 2 (lines 36–39) keeps ``γ`` monotone across stages;
        :meth:`update` does this internally from the raw samples, a
        sharded stage merge computes the quantile from per-shard
        summaries and reports it here.  Returns the updated ``γ``.
        """
        self.gamma = max(self.gamma, stage_gamma)
        return self.gamma

    def replicate(self) -> "SelectionProbabilities":
        """Independent copy sharing the (read-only) domain metadata.

        CBAS-ND keeps one vector per start node over the same candidate
        set; replicating a freshly-built template gives each start its
        own probability array without re-deriving the candidate→slot
        mapping m times.
        """
        clone = SelectionProbabilities.__new__(SelectionProbabilities)
        clone.index_map = self.index_map
        clone._index_of = self._index_of
        clone._candidates = self._candidates
        clone._candidate_ids = self._candidate_ids
        clone._backend = self._backend
        clone._p = (
            self._p.copy() if self._backend == "numpy" else list(self._p)
        )
        clone._age = list(self._age)
        clone._keeps = list(self._keeps)
        clone._stale_rounds = self._stale_rounds
        clone._last_touched = tuple(self._last_touched)
        clone._slot_materialized = self._slot_materialized
        clone.gamma = self.gamma
        return clone

    def as_dict(self) -> dict[NodeId, float]:
        """Dict view ``{candidate: probability}`` (candidate input order)."""
        self._materialize_all()
        p = self._p
        return {
            node: p[slot]
            for node, slot in zip(self._candidates, self._candidate_ids)
        }

    # ------------------------------------------------------------------
    def update(
        self,
        samples: Sequence[Sample],
        rho: float,
        smoothing: float,
        compute_movement: bool = True,
    ) -> float:
        """Apply Eq. (4) + smoothing using this stage's ``samples``.

        Returns the squared L2 distance between the old and new vectors —
        the convergence signal ``z_i`` of §4.4.2.  The elite threshold is
        kept monotone across stages as in Algorithm 2 (lines 36–39): the
        new stage's quantile only replaces ``γ`` when it improves it.

        Elite membership is counted from :attr:`Sample.indices` when both
        the vector and the sample live in the compiled id domain — a plain
        array increment per member — falling back to node-id translation
        for reference-path samples.

        ``compute_movement=False`` (the default CBAS-ND configuration —
        no backtracking) applies the refit lazily: the uniform ``(1−w)``
        decay is recorded as a pending round in O(touched) time and
        materialized on the next read/draw.  ``compute_movement=True``
        needs the full old/new arrays for the O(n) squared-distance
        accumulation, so it materializes eagerly first.  The probability
        values any later read observes are bit-identical either way.
        """
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(
                f"smoothing weight must lie in [0, 1], got {smoothing}"
            )
        if not samples:
            return 0.0

        stage_gamma = elite_threshold(
            [sample.willingness for sample in samples], rho
        )
        self.gamma = max(self.gamma, stage_gamma)
        elites = [s for s in samples if s.willingness >= self.gamma]
        if not elites:
            # Every sample of this stage fell below the historic threshold;
            # keep the vector unchanged rather than fitting to nothing.
            return 0.0

        compiled_domain = self.index_map is not None
        index_of = self._index_of
        counts: dict[int, int] = {}
        if (
            compiled_domain
            and self._backend == "numpy"
            and all(sample.indices is not None for sample in elites)
        ):
            # Vector engine: one bincount over the concatenated elite
            # member indices replaces the per-member dict increments.
            flat = np.fromiter(
                (slot for sample in elites for slot in sample.indices),
                dtype=np.int64,
            )
            binned = np.bincount(flat, minlength=len(self._p))
            for slot in np.nonzero(binned)[0]:
                counts[int(slot)] = int(binned[slot])
        else:
            for sample in elites:
                indices = sample.indices if compiled_domain else None
                if indices is not None:
                    for slot in indices:
                        counts[slot] = counts.get(slot, 0) + 1
                else:
                    for node in sample.members:
                        slot = index_of.get(node)
                        if slot is not None:
                            counts[slot] = counts.get(slot, 0) + 1

        _, movement = self._refit(
            counts, len(elites), smoothing, compute_movement
        )
        return movement

    def update_from_counts(
        self,
        counts: Mapping[int, int],
        elite_size: int,
        smoothing: float,
        compute_movement: bool = False,
    ) -> "tuple[tuple, float]":
        """Eq. (4) + smoothing from pre-aggregated elite counts.

        The sharded stage merge counts elite membership across worker
        summaries (slot → number of elite samples containing it) and
        applies the refit here without ever materializing the samples;
        given the same counts, elite size, and prior state, the resulting
        probabilities are bit-identical to :meth:`update`.  The caller is
        responsible for the threshold bookkeeping
        (:meth:`observe_stage_gamma`) and for filtering the elites.

        Returns ``(patch, movement)``; the patch is the compact round
        record ``("round", keep, ((slot, value), …))`` that
        :meth:`apply_round` replays on worker-resident mirror vectors.
        """
        if elite_size < 1:
            raise ValueError(f"elite_size must be positive, got {elite_size}")
        if not counts:
            raise ValueError("elite counts must not be empty")
        return self._refit(dict(counts), elite_size, smoothing, compute_movement)

    def _refit(
        self,
        counts: dict,
        size: int,
        smoothing: float,
        compute_movement: bool,
    ) -> "tuple[tuple, float]":
        """Shared Eq. (4) + smoothing arithmetic; returns (patch, movement).

        Eq. (4) + smoothing, restructured around the elite-touched
        slots: an untouched slot's elite frequency is 0, so its new
        value is exactly ``(1 − w) · old`` (``w·0.0 + x == x`` in IEEE
        arithmetic) — recorded as a pending decay round (lazy) or applied
        with one C-level comprehension (eager, movement path) — while
        only the ≤ k·|elites| touched slots get the full formula.
        Per-slot values are bit-identical to the naive full loop; the
        movement sum groups the untouched term as ``w² · Σ old²``.
        Touched slots are visited in sorted (slot) order so the movement
        is independent of how membership was counted (int ids vs node-id
        translation vs shard aggregation).
        """
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(
                f"smoothing weight must lie in [0, 1], got {smoothing}"
            )
        keep = 1.0 - smoothing
        numpy_backend = self._backend == "numpy"
        if not compute_movement:
            slot_values = []
            for slot in sorted(counts):
                old = self._materialize_slot(slot)
                new = smoothing * (counts[slot] / size) + keep * old
                # Plain Python floats keep the patch tuples cheap to
                # pickle whichever backend produced them.
                slot_values.append((slot, float(new)))
            patch = ("round", keep, tuple(slot_values))
            self._record_round(keep, slot_values)
            return patch, 0.0

        self._materialize_all()
        p = self._p
        old_touched = {slot: float(p[slot]) for slot in counts}
        if numpy_backend:
            # Movement is a convergence control signal, not a sampled
            # quantity — the dot product's pairwise summation is fine.
            total_sq = float(np.dot(p, p))
            p *= keep
        else:
            total_sq = sum([value * value for value in p])
            p[:] = [keep * value for value in p]
        touched_sq = 0.0
        touched_term = 0.0
        slot_values = []
        for slot in sorted(counts):
            old = old_touched[slot]
            new = smoothing * (counts[slot] / size) + keep * old
            p[slot] = new
            slot_values.append((slot, new))
            touched_sq += old * old
            touched_term += (new - old) ** 2
        # The decay was applied in place: record no pending round, but
        # still hand the caller the patch a mirror needs to replay it.
        movement = smoothing * smoothing * (total_sq - touched_sq) + touched_term
        return ("round", keep, tuple(slot_values)), movement

    def _record_round(self, keep: float, slot_values: Sequence[tuple]) -> None:
        """Book one pending decay round + its touched-slot overwrites."""
        if self._backend == "numpy":
            # Eager application: one vectorized multiply per round keeps
            # the per-slot decay chain (left-to-right factor order)
            # IEEE-identical to the lazy path, with no pending rounds to
            # materialize later.
            p = self._p
            p *= keep
            for slot, value in slot_values:
                p[slot] = value
            return
        self._keeps.append(keep)
        rounds = len(self._keeps)
        if self._stale_rounds == 0:
            self._last_touched = tuple(slot for slot, _ in slot_values)
            self._slot_materialized = False
        self._stale_rounds += 1
        p = self._p
        age = self._age
        for slot, value in slot_values:
            p[slot] = value
            age[slot] = rounds

    def apply_round(self, keep: float, slot_values: Sequence[tuple]) -> None:
        """Replay a refit round produced by another vector instance.

        Stage-pool workers hold a mirror of each start node's vector and
        keep it synchronized by replaying the parent's round patches
        (``keep`` + the touched ``(slot, value)`` pairs).  The pending
        decay is recorded exactly like the parent's, so a mirror's lazily
        materialized values stay bit-identical to the parent's.
        """
        self._record_round(keep, list(slot_values))

    # ------------------------------------------------------------------
    def snapshot(self) -> list[float]:
        """Materialized copy of the flat array (backtracking, full resync)."""
        self._materialize_all()
        if self._backend == "numpy":
            return self._p.tolist()
        return list(self._p)

    def restore(self, snapshot: Sequence[float]) -> None:
        """Reset the vector to a previous :meth:`snapshot` (or any full array).

        Restores in place so borrowed :attr:`array` references (the fast
        sampler holds one during a stage) stay valid.  The installed
        values are taken as fully materialized: pending decay rounds are
        considered folded in.
        """
        if len(snapshot) != len(self._p):
            raise ValueError(
                f"snapshot length {len(snapshot)} does not match "
                f"vector length {len(self._p)}"
            )
        self._p[:] = snapshot
        rounds = len(self._keeps)
        self._age = [rounds] * len(self._p)
        self._stale_rounds = 0
        self._last_touched = ()
        self._slot_materialized = False

    def kl_distance(self, other: "SelectionProbabilities") -> float:
        """Bernoulli-factorized KL distance between two vectors.

        ``Σ_j p ln(p/q) + (1−p) ln((1−p)/(1−q))`` with clamping away from
        {0, 1}.  Exposed for diagnostics and tests of the CE theory.
        """

        def _clamp(x: float) -> float:
            return min(1.0 - 1e-12, max(1e-12, x))

        self._materialize_all()
        p_arr = self._p
        total = 0.0
        for node, slot in zip(self._candidates, self._candidate_ids):
            p = _clamp(p_arr[slot])
            q = _clamp(other.probability(node))
            total += p * math.log(p / q)
            total += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
        return total
