"""Backtracking on cross-entropy convergence (paper §4.4.2).

The CE literature's convergence criterion is a probability vector that
stops moving.  The paper turns this into a *backtracking* rule: when the
squared distance ``z_i = Σ_j (p_{i,t,j} − p_{i,t−1,j})²`` between successive
vectors falls below a threshold ``z_t``, the vector is reset to its
previous value and the stage is re-sampled, pushing the search away from a
premature freeze.
"""

from __future__ import annotations

from typing import Optional

from repro.ce.probability import SelectionProbabilities

__all__ = ["BacktrackController"]


class BacktrackController:
    """Tracks one start node's vector movement and decides backtracks.

    Parameters
    ----------
    threshold:
        Convergence threshold ``z_t``; ``None`` disables backtracking
        entirely (plain CBAS-ND).
    max_backtracks:
        Safety valve: stop backtracking after this many resets so a run
        always terminates.
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        max_backtracks: int = 3,
    ) -> None:
        if threshold is not None and threshold < 0.0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if max_backtracks < 0:
            raise ValueError(
                f"max_backtracks must be >= 0, got {max_backtracks}"
            )
        self.threshold = threshold
        self.max_backtracks = max_backtracks
        self.backtracks_used = 0
        # Flat-array snapshot from SelectionProbabilities.snapshot().
        self._previous: Optional[list] = None

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def observe(
        self,
        probabilities: SelectionProbabilities,
        movement: float,
    ) -> bool:
        """Report the squared movement ``z_i`` of the latest update.

        Returns ``True`` when the caller should backtrack: the previous
        vector has then already been restored into ``probabilities``.
        The pre-update snapshot must have been registered beforehand via
        :meth:`remember`.
        """
        if not self.enabled:
            return False
        if self._previous is None:
            return False
        if movement >= self.threshold:
            return False
        if self.backtracks_used >= self.max_backtracks:
            return False
        probabilities.restore(self._previous)
        self.backtracks_used += 1
        return True

    def remember(self, probabilities: SelectionProbabilities) -> None:
        """Snapshot the vector before an update (call once per stage)."""
        if self.enabled:
            self._previous = probabilities.snapshot()
