"""Cross-entropy machinery for CBAS-ND.

:class:`~repro.ce.probability.SelectionProbabilities` holds one start
node's node-selection probability vector and applies the elite-sample
update of the paper's Eq. (4) with the smoothing step;
:class:`~repro.ce.convergence.BacktrackController` implements the
§4.4.2 backtracking extension.
"""

from repro.ce.probability import SelectionProbabilities, elite_threshold
from repro.ce.convergence import BacktrackController

__all__ = [
    "SelectionProbabilities",
    "elite_threshold",
    "BacktrackController",
]
