"""Couple handling (paper §2.2).

People who must be selected together are merged into one node whose
interest is the sum of the two and whose tightness toward each outside
neighbour is the sum of the two originals' scores.  The caller must then
reduce ``k`` by one per merge (the merged node counts as one selection but
stands for two attendees) — :func:`merge_couple` returns the adjusted
problem so this cannot be forgotten.
"""

from __future__ import annotations

from typing import Optional

from repro.core.problem import WASOProblem
from repro.graph.social_graph import NodeId

__all__ = ["merge_couple", "expand_merged_members"]


def merge_couple(
    problem: WASOProblem,
    first: NodeId,
    second: NodeId,
    merged: Optional[NodeId] = None,
) -> tuple[WASOProblem, NodeId]:
    """Return ``(new_problem, merged_node)`` with the couple merged.

    The graph is copied (the input problem is untouched); ``k`` is reduced
    by one.  Required / forbidden sets referencing either member are
    remapped to the merged node.
    """
    graph = problem.graph.copy()
    merged_node = graph.merge_nodes(first, second, merged=merged)

    def _remap(nodes: frozenset) -> frozenset:
        remapped = {
            merged_node if node in (first, second) else node
            for node in nodes
        }
        return frozenset(remapped)

    new_problem = WASOProblem(
        graph=graph,
        k=problem.k - 1,
        connected=problem.connected,
        required=_remap(problem.required),
        forbidden=_remap(problem.forbidden),
    )
    return new_problem, merged_node


def expand_merged_members(
    members: frozenset,
    merged_node: NodeId,
    first: NodeId,
    second: NodeId,
) -> frozenset:
    """Translate a merged-graph solution back to the original attendees."""
    if merged_node not in members:
        return members
    expanded = set(members)
    expanded.remove(merged_node)
    expanded.update((first, second))
    return frozenset(expanded)
