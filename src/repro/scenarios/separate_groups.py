"""Separate groups — WASO-dis via the Theorem-2 virtual-node reduction.

WASO-dis drops the connectivity constraint (a camping trip may gather
several unrelated sub-groups).  Theorem 2 reduces it *to* connected WASO:
add a virtual node ``v`` with interest

    η_v = ε + Σ_{v_i ∈ V} ( η_i + Σ_j τ_ij )

(strictly larger than any achievable willingness, so ``v`` is always
selected) and zero-tightness edges to every node; then the optimal
``k+1``-node connected solution of the augmented graph is exactly the
optimal ``k``-node WASO-dis solution plus ``v``.

Note the solvers in this library also accept ``connected=False``
directly (the sampler then treats every remaining node as frontier); the
reduction is provided because the paper proves it, the tests verify the
theorem, and the separate-groups bench (Fig. 9(c,d)) follows the paper's
recipe of "adding the virtual node to the selection set".
"""

from __future__ import annotations

from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = [
    "VIRTUAL_NODE",
    "add_virtual_node",
    "reduce_wasodis",
    "strip_virtual_node",
]

#: Default id of the virtual node added by the reduction.
VIRTUAL_NODE = "__waso_virtual__"


def add_virtual_node(
    graph: SocialGraph,
    epsilon: float = 1.0,
    node_id: NodeId = VIRTUAL_NODE,
) -> SocialGraph:
    """Copy ``graph`` and add the Theorem-2 virtual node.

    The virtual node's interest exceeds the total positive willingness of
    the whole graph by ``epsilon``; it connects to every node with zero
    tightness.  Its ``λ`` is ``None`` so the full interest value enters
    the objective regardless of the graph's default weighting.
    """
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if graph.has_node(node_id):
        raise ValueError(f"virtual node id {node_id!r} already exists")
    evaluator = WillingnessEvaluator(graph)
    total = evaluator.value(set(graph.nodes()))
    augmented = graph.copy()
    augmented.add_node(node_id, interest=total + epsilon, lam=None)
    for node in graph.nodes():
        augmented.add_edge(node_id, node, 0.0)
    return augmented


def reduce_wasodis(
    problem: WASOProblem,
    epsilon: float = 1.0,
    node_id: NodeId = VIRTUAL_NODE,
) -> WASOProblem:
    """Rewrite a ``connected=False`` instance as connected WASO.

    Returns a problem with ``k + 1`` nodes to select, the virtual node
    required, on the augmented graph.  Feed its solutions to
    :func:`strip_virtual_node` to recover the WASO-dis group.
    """
    if problem.connected:
        raise ValueError("reduce_wasodis expects a connected=False problem")
    augmented = add_virtual_node(
        problem.graph, epsilon=epsilon, node_id=node_id
    )
    return WASOProblem(
        graph=augmented,
        k=problem.k + 1,
        connected=True,
        required=problem.required | frozenset({node_id}),
        forbidden=problem.forbidden,
    )


def strip_virtual_node(
    members: frozenset,
    node_id: NodeId = VIRTUAL_NODE,
) -> frozenset:
    """Remove the virtual node from a reduced solution's member set."""
    return frozenset(node for node in members if node != node_id)
