"""Candidate pre-filtering (paper footnote 1 and future work, §6).

The paper's footnote 1 notes that factors like activity time and location
are best handled by *preprocessing*: "filter out the people who are not
available, live too far, etc.".  Its future-work section asks for exactly
this as a feature — availability extraction (e.g. from a calendar) and
attribute parameters (location, gender, ...).

This module turns predicates over node metadata into WASO problems whose
``forbidden`` set excludes everyone who fails the filter:

* :func:`filtered_problem` — the general predicate form;
* :func:`attribute_filter` — predicate matching metadata key/values;
* :func:`availability_filter` — predicate over per-person availability
  slots (the "Google Calendar" integration the paper sketches, with the
  calendar replaced by an explicit schedule mapping).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.core.problem import WASOProblem
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["filtered_problem", "attribute_filter", "availability_filter"]

Predicate = Callable[[SocialGraph, NodeId], bool]


def filtered_problem(
    graph: SocialGraph,
    k: int,
    predicate: Predicate,
    connected: bool = True,
    required=(),
) -> WASOProblem:
    """WASO instance restricted to nodes passing ``predicate``.

    Required nodes are exempt from the filter (the organizer attends even
    if their own metadata would fail it).
    """
    required = frozenset(required)
    forbidden = frozenset(
        node
        for node in graph.nodes()
        if node not in required and not predicate(graph, node)
    )
    return WASOProblem(
        graph=graph,
        k=k,
        connected=connected,
        required=required,
        forbidden=forbidden,
    )


def attribute_filter(**expected) -> Predicate:
    """Predicate: every listed metadata key must equal the given value.

    A value may also be a callable ``value -> bool`` for range-style
    filters, e.g. ``attribute_filter(age=lambda a: a >= 18)``.  Nodes
    missing a listed key fail the filter.
    """

    def predicate(graph: SocialGraph, node: NodeId) -> bool:
        metadata = graph.metadata(node)
        for key, want in expected.items():
            if key not in metadata:
                return False
            have = metadata[key]
            if callable(want):
                if not want(have):
                    return False
            elif have != want:
                return False
        return True

    return predicate


def availability_filter(
    schedules: Mapping[NodeId, object],
    slot: object,
) -> Predicate:
    """Predicate: the person's schedule contains the activity ``slot``.

    ``schedules`` maps node -> a container of free slots; people absent
    from the mapping are treated as unavailable (conservative default —
    better to under-invite than to invite someone who cannot come).
    """

    def predicate(graph: SocialGraph, node: NodeId) -> bool:
        free = schedules.get(node)
        return free is not None and slot in free

    return predicate
