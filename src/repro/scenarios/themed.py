"""Interest-only and tightness-only scenarios (paper §2.2).

* **Exhibition** (the British Museum mailing potential Van Gogh visitors):
  topic interest dominates — ``λ_i = 1`` for all nodes, and connectivity is
  irrelevant (an e-mail blast needs no social path), so the instance is
  WASO-dis by default.
* **House-warming party**: only social tightness matters — ``λ_i = 0`` for
  all nodes, connectivity kept (guests should know each other through the
  group).
"""

from __future__ import annotations

from repro.core.problem import WASOProblem
from repro.graph.social_graph import SocialGraph

__all__ = ["exhibition_problem", "housewarming_problem"]


def exhibition_problem(
    graph: SocialGraph,
    k: int,
    connected: bool = False,
) -> WASOProblem:
    """Interest-only instance (``λ = 1`` everywhere)."""
    working = graph.copy()
    for node in working.nodes():
        working.set_lam(node, 1.0)
    return WASOProblem(graph=working, k=k, connected=connected)


def housewarming_problem(
    graph: SocialGraph,
    k: int,
    connected: bool = True,
) -> WASOProblem:
    """Tightness-only instance (``λ = 0`` everywhere)."""
    working = graph.copy()
    for node in working.nodes():
        working.set_lam(node, 0.0)
    return WASOProblem(graph=working, k=k, connected=connected)
