"""Invitation scenario (paper §2.2).

A host (e.g. the piano player holding a small concert) invites people who
are good friends *with the host*; pairwise acquaintance among guests is
unimportant.  Concretely we:

* restrict candidates to the host plus ``N(host)`` (everyone else is
  forbidden);
* require the host;
* set each guest's ``λ`` to ``guest_lambda``.

The paper's text for this scenario is self-contradicting: it motivates the
setup with "people that are very good friends with him/her" but then sets
``λ_j = 1`` (interest-only), which would ignore closeness entirely.  We
default to ``guest_lambda = 0`` — pure social tightness, matching the
motivation — and callers preferring the literal printed setting can pass
``guest_lambda = 1.0``.

Because every candidate is adjacent to the host, connectivity is
automatically satisfied through the host.
"""

from __future__ import annotations

from repro.core.problem import WASOProblem
from repro.exceptions import ProblemSpecificationError
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["invitation_problem"]


def invitation_problem(
    graph: SocialGraph,
    host: NodeId,
    k: int,
    guest_lambda: float = 0.0,
) -> WASOProblem:
    """Build the invitation WASO instance for ``host`` with ``k`` attendees.

    ``k`` counts the host too.  ``guest_lambda`` tunes how much a guest's
    own topic interest still matters (0 = pure closeness to the host, the
    paper's setting for a private concert).
    """
    if not graph.has_node(host):
        raise ValueError(f"host {host!r} is not in the graph")
    if k < 2:
        raise ValueError(f"an invitation needs k >= 2, got {k}")
    candidates = {host} | set(graph.neighbors(host))
    if k > len(candidates):
        raise ProblemSpecificationError(
            f"host {host!r} has only {len(candidates) - 1} friends; "
            f"cannot invite k={k} attendees"
        )
    working = graph.copy()
    for node in candidates:
        if node != host:
            working.set_lam(node, guest_lambda)
    forbidden = frozenset(
        node for node in working.nodes() if node not in candidates
    )
    return WASOProblem(
        graph=working,
        k=k,
        connected=True,
        required=frozenset({host}),
        forbidden=forbidden,
    )
