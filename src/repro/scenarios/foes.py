"""Foe handling (paper §2.2).

If ``v_i`` is a foe of ``v_j``, their tightness is set to a large negative
value so any group containing both has sharply reduced (typically
negative) willingness and is never selected by a maximizer.  Foes that are
not currently friends get a new edge carrying the penalty — otherwise the
penalty could never enter the objective.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["FOE_TIGHTNESS", "mark_foes"]

#: Default penalty; large relative to normalized scores in [0, 1].
FOE_TIGHTNESS = -1.0e6


def mark_foes(
    graph: SocialGraph,
    pairs: Iterable[tuple[NodeId, NodeId]],
    penalty: float = FOE_TIGHTNESS,
) -> SocialGraph:
    """Return a copy of ``graph`` with every pair marked as foes.

    ``penalty`` must be negative; both tightness directions are set.
    """
    if penalty >= 0.0:
        raise ValueError(f"foe penalty must be negative, got {penalty}")
    marked = graph.copy()
    for first, second in pairs:
        if marked.has_edge(first, second):
            marked.set_tightness(first, second, penalty)
            marked.set_tightness(second, first, penalty)
        else:
            marked.add_edge(first, second, penalty)
    return marked
