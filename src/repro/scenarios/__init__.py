"""Scenario transformations from the paper's §2.2 and §4.4.3.

Each helper rewrites a graph / problem so that the *unmodified* WASO
solvers handle the scenario:

* couples — merge two nodes that must attend together;
* foes — a large negative tightness keeps two people out of the same group;
* invitation — a host invites personal friends (``λ = 1`` on the
  neighbourhood, host required);
* exhibition — topic interest only (``λ = 1`` everywhere);
* house-warming — social tightness only (``λ = 0`` everywhere);
* separate groups — WASO-dis via the Theorem-2 virtual-node reduction.
"""

from repro.scenarios.couples import merge_couple
from repro.scenarios.foes import FOE_TIGHTNESS, mark_foes
from repro.scenarios.filters import (
    attribute_filter,
    availability_filter,
    filtered_problem,
)
from repro.scenarios.invitation import invitation_problem
from repro.scenarios.themed import exhibition_problem, housewarming_problem
from repro.scenarios.separate_groups import (
    VIRTUAL_NODE,
    add_virtual_node,
    reduce_wasodis,
    strip_virtual_node,
)

__all__ = [
    "merge_couple",
    "mark_foes",
    "FOE_TIGHTNESS",
    "invitation_problem",
    "exhibition_problem",
    "housewarming_problem",
    "filtered_problem",
    "attribute_filter",
    "availability_filter",
    "VIRTUAL_NODE",
    "add_virtual_node",
    "reduce_wasodis",
    "strip_virtual_node",
]
