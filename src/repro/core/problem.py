"""The WASO problem specification.

A :class:`WASOProblem` bundles the social graph with everything a solver
needs to know about one planning request:

* ``k`` — the expected number of attendees (§2.1);
* ``connected`` — whether the induced subgraph must be connected
  (``False`` gives WASO-dis, §2.2);
* ``required`` — attendees that must be in the group.  The paper's user
  study runs "with initiator" variants (§5.2) and its future-work section
  asks for user-specified must-include attendees — both map onto this set;
* ``forbidden`` — people excluded up front (the paper's preprocessing
  footnote: unavailable users, people who live too far, ...).

Validation happens eagerly in ``__post_init__`` so solvers can assume a
well-formed instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.exceptions import InfeasibleProblemError, ProblemSpecificationError
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["WASOProblem", "problem_from_payload_spec"]


def problem_from_payload_spec(compiled, spec: dict) -> "WASOProblem":
    """Rebuild a :class:`WASOProblem` from resident arrays + a spec dict.

    ``compiled`` is the worker-resident
    :class:`~repro.graph.compiled.CompiledGraph` whose
    ``payload_token`` matched ``spec["token"]``; the returned problem is
    backed by its dict-free :class:`~repro.graph.compiled.
    ArrayBackedGraph` facade, exactly like :meth:`WASOProblem.detached`.
    """
    if compiled.payload_token != spec["token"]:
        raise ValueError(
            f"resident graph {compiled.payload_token!r} does not match "
            f"problem spec {spec['token']!r}"
        )
    generation = spec.get("gen", 0)
    resident = getattr(compiled, "generation", 0)
    if resident != generation:
        raise ValueError(
            f"resident graph {compiled.payload_token!r} is at generation "
            f"{resident}, problem spec expects generation {generation}"
        )
    return WASOProblem(
        graph=compiled.graph,
        k=spec["k"],
        connected=spec["connected"],
        required=frozenset(spec["required"]),
        forbidden=frozenset(spec["forbidden"]),
    )


@dataclass(frozen=True)
class WASOProblem:
    """One WASO instance: pick ``k`` nodes of ``graph`` maximizing willingness.

    Parameters
    ----------
    graph:
        The social network (interest + tightness scores attached).
    k:
        Number of attendees to select.
    connected:
        Require the induced subgraph to be connected (default, the paper's
        base formulation).  ``False`` yields WASO-dis.
    required:
        Nodes that must appear in every feasible solution.
    forbidden:
        Nodes that may never appear.
    """

    graph: SocialGraph
    k: int
    connected: bool = True
    required: FrozenSet[NodeId] = field(default_factory=frozenset)
    forbidden: FrozenSet[NodeId] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "required", frozenset(self.required))
        object.__setattr__(self, "forbidden", frozenset(self.forbidden))
        if self.k < 1:
            raise ProblemSpecificationError(
                f"group size k must be at least 1, got {self.k}"
            )
        if self.k > self.graph.number_of_nodes():
            raise ProblemSpecificationError(
                f"k={self.k} exceeds the graph size "
                f"{self.graph.number_of_nodes()}"
            )
        for node in self.required | self.forbidden:
            if not self.graph.has_node(node):
                raise ProblemSpecificationError(
                    f"constraint references unknown node {node!r}"
                )
        overlap = self.required & self.forbidden
        if overlap:
            raise ProblemSpecificationError(
                f"nodes both required and forbidden: {sorted(map(repr, overlap))}"
            )
        if len(self.required) > self.k:
            raise ProblemSpecificationError(
                f"{len(self.required)} required nodes cannot fit in k={self.k}"
            )

    # ------------------------------------------------------------------
    # Candidate / feasibility helpers
    # ------------------------------------------------------------------
    def is_candidate(self, node: NodeId) -> bool:
        """True iff ``node`` may appear in a solution."""
        return self.graph.has_node(node) and node not in self.forbidden

    def candidates(self) -> list[NodeId]:
        """All selectable nodes (graph minus forbidden)."""
        return [n for n in self.graph.nodes() if n not in self.forbidden]

    def ensure_feasible(self) -> None:
        """Raise :class:`InfeasibleProblemError` if no solution can exist.

        Checks component capacities: for connected WASO some allowed
        component (containing all required nodes, if any) must hold at
        least ``k`` allowed nodes.  Unconstrained instances (empty
        ``forbidden``) whose graph already carries a fresh compiled index
        are validated from its cached component labels instead of a
        per-call BFS — this runs before *every* solve, so repeated solves
        on one unconstrained graph pay O(required), not O(V+E).  A
        non-empty ``forbidden`` set (e.g. online declines) still needs
        the BFS: allowed-induced components differ from graph components.
        """
        if not self.forbidden and self._ensure_feasible_compiled():
            return
        allowed = set(self.candidates())
        if len(allowed) < self.k:
            raise InfeasibleProblemError(
                f"only {len(allowed)} allowed nodes for k={self.k}"
            )
        if not self.connected:
            return
        components = self._allowed_components(allowed)
        required = set(self.required)
        if required:
            hosts = [c for c in components if required <= c]
            if not hosts:
                raise InfeasibleProblemError(
                    "required nodes do not share a connected component of "
                    "allowed nodes"
                )
            if all(len(c) < self.k for c in hosts):
                raise InfeasibleProblemError(
                    f"no component containing the required nodes has >= "
                    f"{self.k} allowed nodes"
                )
        elif all(len(c) < self.k for c in components):
            raise InfeasibleProblemError(
                f"no connected component of allowed nodes has >= {self.k} nodes"
            )

    def _ensure_feasible_compiled(self) -> bool:
        """Feasibility check off the cached compiled index.

        Only valid with an empty ``forbidden`` set (allowed components ==
        graph components).  Returns ``True`` when the check ran (raising
        on infeasibility), ``False`` when no fresh freeze is cached and
        the caller must fall back to the dict-path BFS.
        """
        accessor = getattr(self.graph, "compiled_if_cached", None)
        compiled = accessor() if accessor is not None else None
        if compiled is None:
            return False
        if self.graph.number_of_nodes() < self.k:
            raise InfeasibleProblemError(
                f"only {self.graph.number_of_nodes()} allowed nodes "
                f"for k={self.k}"
            )
        if not self.connected:
            return True
        sizes = compiled.component_size_by_index()
        if self.required:
            labels = compiled.component_label_by_index()
            index_of = compiled.index_of
            indices = [index_of[node] for node in self.required]
            host = labels[indices[0]]
            if any(labels[index] != host for index in indices):
                raise InfeasibleProblemError(
                    "required nodes do not share a connected component of "
                    "allowed nodes"
                )
            if sizes[indices[0]] < self.k:
                raise InfeasibleProblemError(
                    f"no component containing the required nodes has >= "
                    f"{self.k} allowed nodes"
                )
        elif max(sizes) < self.k:
            raise InfeasibleProblemError(
                f"no connected component of allowed nodes has >= {self.k} nodes"
            )
        return True

    def compiled(self):
        """Compiled flat-array index of this problem's graph.

        The freeze is cached on the graph (mutation-aware), so repeated
        solves and online re-planning rounds on the same network share one
        index, and pickling the problem for the process pool ships the
        frozen arrays along.
        """
        return self.graph.compiled()

    def payload_token(self) -> str:
        """Identity tag of this problem's frozen graph arrays.

        The token names one freeze of the graph (it survives pickling and
        :meth:`detached`), so a persistent worker pool can key its
        resident graph payloads by it: re-plans on the same graph reuse
        the resident arrays, while any mutation produces a fresh freeze —
        and therefore a fresh token — invalidating them.
        """
        return self.compiled().payload_token

    def payload_spec(self) -> dict:
        """Everything but the graph, as a small picklable dict.

        A stage-pool worker whose resident arrays match
        :meth:`payload_token` rebuilds this exact problem with
        :func:`problem_from_payload_spec` — re-plans (a growing
        ``forbidden`` set on an unchanged graph) ship only this spec,
        never the O(V+E) arrays.

        When the graph has been patched in place (``apply_deltas``), the
        spec also carries the index *generation* so a worker whose
        resident copy missed a patch fails loudly instead of solving a
        stale topology.  Generation-0 specs omit the key, keeping their
        pickled bytes identical to pre-delta builds.
        """
        spec = {
            "token": self.payload_token(),
            "k": self.k,
            "connected": self.connected,
            "required": tuple(self.required),
            "forbidden": tuple(self.forbidden),
        }
        generation = getattr(self.compiled(), "generation", 0)
        if generation:
            spec["gen"] = generation
        return spec

    def detached(self) -> "WASOProblem":
        """Slim, dict-free copy of this problem for worker processes.

        The copy's graph is the compiled index's
        :class:`~repro.graph.compiled.ArrayBackedGraph` facade: it serves
        topology (candidates, neighbourhoods, connectivity) and the
        compiled engine's evaluator from the flat arrays, but none of the
        score/mutation APIs the dict-based reference path needs.  Pickling
        it ships only the arrays — no adjacency dicts — which is what
        :mod:`repro.parallel.pool` sends to compiled-engine workers.
        Solving the copy with ``engine="compiled"`` is bit-identical to
        solving the original.
        """
        compiled = self.compiled().detach()
        return WASOProblem(
            graph=compiled.graph,
            k=self.k,
            connected=self.connected,
            required=self.required,
            forbidden=self.forbidden,
        )

    def allowed_component_sizes(self) -> dict[NodeId, int]:
        """Size of each allowed node's connected component (allowed-induced).

        CBAS uses this to skip start nodes whose component cannot hold a
        ``k``-group instead of burning budget on doomed expansions.
        """
        sizes: dict[NodeId, int] = {}
        for component in self._allowed_components(set(self.candidates())):
            size = len(component)
            for node in component:
                sizes[node] = size
        return sizes

    def _allowed_components(self, allowed: set[NodeId]) -> list[set[NodeId]]:
        """Connected components of the subgraph induced by allowed nodes."""
        remaining = set(allowed)
        components: list[set[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbour in self.graph.neighbors(current):
                    if neighbour in remaining and neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(seen)
            remaining -= seen
        return components

    def with_k(self, k: int) -> "WASOProblem":
        """Copy of this problem with a different group size."""
        return WASOProblem(
            graph=self.graph,
            k=k,
            connected=self.connected,
            required=self.required,
            forbidden=self.forbidden,
        )

    def without_nodes(self, nodes) -> "WASOProblem":
        """Copy with extra nodes moved to the forbidden set.

        Used by the online re-planner when attendees decline (§4.4.1).
        """
        extra = frozenset(nodes)
        return WASOProblem(
            graph=self.graph,
            k=self.k,
            connected=self.connected,
            required=self.required - extra,
            forbidden=self.forbidden | extra,
        )
