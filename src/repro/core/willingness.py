"""The willingness objective — Eq. (1) with the footnote-7 weighting.

For a group ``F`` the willingness is

    W(F) = Σ_{i ∈ F} ( a_i·η_i + b_i·Σ_{j ∈ F : e_ij ∈ E} τ_ij )

where ``(a_i, b_i) = (1, 1)`` for the plain Eq. (1) objective (node's
``λ = None``) or ``(λ_i, 1 − λ_i)`` otherwise.  Both directions of each
edge contribute, matching the paper's remark that ``τ_ij`` and ``τ_ji``
are counted separately.

:class:`WillingnessEvaluator` is the hot path of every solver: it caches
the per-node weighted interest and supports O(deg(v)) *incremental* deltas
for adding or removing a node from a partial group — the same trick that
makes the randomized algorithms cheap compared to recomputing W from
scratch at every expansion step.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = ["WillingnessEvaluator", "willingness"]


class WillingnessEvaluator:
    """Cached evaluator for one graph.

    The evaluator snapshots per-node weights at construction; if the graph's
    scores are mutated afterwards, build a fresh evaluator (solvers always
    do).
    """

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        # Pre-weighted interest a_i * eta_i, and tightness weight b_i.
        self._weighted_interest: dict[NodeId, float] = {}
        self._tightness_weight: dict[NodeId, float] = {}
        for node in graph.nodes():
            a, b = graph.weights(node)
            self._weighted_interest[node] = a * graph.interest(node)
            self._tightness_weight[node] = b

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------
    def value(self, group: Iterable[NodeId]) -> float:
        """Willingness of ``group`` (recomputed from scratch, O(Σ deg))."""
        members = set(group)
        total = 0.0
        for node in members:
            if node not in self._weighted_interest:
                raise NodeNotFoundError(node)
            total += self._weighted_interest[node]
            b = self._tightness_weight[node]
            if b == 0.0:
                continue
            for neighbour, tau in self.graph.neighbor_tightness(node).items():
                if neighbour in members:
                    total += b * tau
        return total

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------
    def add_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Increment of W when ``node`` joins ``group`` (node not in group).

        ``Δ = a_v·η_v + b_v·Σ_{j∈S} τ_vj + Σ_{j∈S} b_j·τ_jv`` — both the
        newcomer's outgoing tightness toward the group and the group's
        tightness toward the newcomer.
        """
        if node not in self._weighted_interest:
            raise NodeNotFoundError(node)
        delta = self._weighted_interest[node]
        b_node = self._tightness_weight[node]
        adjacency = self.graph.neighbor_tightness(node)
        for neighbour, tau_out in adjacency.items():
            if neighbour in group:
                delta += b_node * tau_out
                delta += self._tightness_weight[neighbour] * (
                    self.graph.neighbor_tightness(neighbour)[node]
                )
        return delta

    def remove_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Decrement of W when ``node`` leaves ``group`` (node in group)."""
        others = group - {node}
        return -self.add_delta(node, others)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def weighted_interest(self, node: NodeId) -> float:
        """``a_v · η_v`` for ``node``."""
        try:
            return self._weighted_interest[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def pair_weight(self, source: NodeId, target: NodeId) -> float:
        """Objective weight of edge ``{source, target}``:
        ``b_s·τ_st + b_t·τ_ts``."""
        return self._tightness_weight[source] * self.graph.tightness(
            source, target
        ) + self._tightness_weight[target] * self.graph.tightness(
            target, source
        )

    def node_potential(self, node: NodeId) -> float:
        """Upper-bound style score: weighted interest plus *all* incident
        weighted tightness (in both directions).

        This is the quantity CBAS phase 1 ranks start-node candidates by,
        and the optimistic per-node bound the branch-and-bound solver prunes
        with.
        """
        total = self.weighted_interest(node)
        b_node = self._tightness_weight[node]
        for neighbour, tau_out in self.graph.neighbor_tightness(node).items():
            total += b_node * tau_out
            total += self._tightness_weight[neighbour] * (
                self.graph.neighbor_tightness(neighbour)[node]
            )
        return total


def willingness(graph: SocialGraph, group: Iterable[NodeId]) -> float:
    """One-shot willingness of ``group`` on ``graph`` (builds an evaluator)."""
    return WillingnessEvaluator(graph).value(group)
