"""The willingness objective — Eq. (1) with the footnote-7 weighting.

For a group ``F`` the willingness is

    W(F) = Σ_{i ∈ F} ( a_i·η_i + b_i·Σ_{j ∈ F : e_ij ∈ E} τ_ij )

where ``(a_i, b_i) = (1, 1)`` for the plain Eq. (1) objective (node's
``λ = None``) or ``(λ_i, 1 − λ_i)`` otherwise.  Both directions of each
edge contribute, matching the paper's remark that ``τ_ij`` and ``τ_ji``
are counted separately.

Two evaluators implement the objective:

* :class:`WillingnessEvaluator` — the dict-based **reference** path.  It
  caches per-node weighted interests and, per edge, the *combined* pair
  weight ``w_uv = b_u·τ_uv + b_v·τ_vu`` so the O(deg(v)) incremental
  deltas need no reverse adjacency probe.  Exact/IP solvers and the
  differential tests use this path.
* :class:`FastWillingnessEvaluator` — the same quantities served from a
  :class:`~repro.graph.compiled.CompiledGraph` flat-array index.  The
  randomized solvers' hot loops run on it; it is engineered to reproduce
  the reference results bit-for-bit (same neighbour order, same
  floating-point expressions), so seeded solver runs are identical on
  either engine.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.compiled import CompiledGraph
from repro.graph.social_graph import NodeId, SocialGraph

__all__ = [
    "WillingnessEvaluator",
    "FastWillingnessEvaluator",
    "ENGINES",
    "validate_engine",
    "evaluator_for",
    "willingness",
]

#: Evaluator/sampler execution paths solvers can run on.
ENGINES = ("compiled", "reference", "vector")


def validate_engine(engine: str) -> str:
    """Validate and return an engine name (raises ``ValueError`` otherwise)."""
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be 'compiled', 'reference', or 'vector', "
            f"got {engine!r}"
        )
    return engine


class WillingnessEvaluator:
    """Cached dict-based evaluator for one graph (the reference path).

    The evaluator snapshots per-node weights and per-edge pair weights at
    construction; if the graph's scores are mutated afterwards, build a
    fresh evaluator (solvers always do).
    """

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        # Pre-weighted interest a_i * eta_i, and tightness weight b_i.
        self._weighted_interest: dict[NodeId, float] = {}
        self._tightness_weight: dict[NodeId, float] = {}
        for node in graph.nodes():
            a, b = graph.weights(node)
            self._weighted_interest[node] = a * graph.interest(node)
            self._tightness_weight[node] = b
        # Combined pair weight per directed adjacency slot:
        # _pairs[u][v] == b_u·τ_uv + b_v·τ_vu.  Cached once so add_delta /
        # node_potential never probe the reverse inner dict again.
        weight = self._tightness_weight
        self._pairs: dict[NodeId, dict[NodeId, float]] = {}
        for node in graph.nodes():
            b_node = weight[node]
            adjacency = graph.neighbor_tightness(node)
            self._pairs[node] = {
                neighbour: b_node * tau
                + weight[neighbour] * graph.neighbor_tightness(neighbour)[node]
                for neighbour, tau in adjacency.items()
            }

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------
    def value(self, group: Iterable[NodeId]) -> float:
        """Willingness of ``group`` (recomputed from scratch, O(Σ deg))."""
        members = set(group)
        total = 0.0
        for node in members:
            if node not in self._weighted_interest:
                raise NodeNotFoundError(node)
            total += self._weighted_interest[node]
            b = self._tightness_weight[node]
            if b == 0.0:
                continue
            for neighbour, tau in self.graph.neighbor_tightness(node).items():
                if neighbour in members:
                    total += b * tau
        return total

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------
    def add_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Increment of W when ``node`` joins ``group`` (node not in group).

        ``Δ = a_v·η_v + Σ_{j∈S} (b_v·τ_vj + b_j·τ_jv)`` — both the
        newcomer's outgoing tightness toward the group and the group's
        tightness toward the newcomer, taken from the cached pair weights.
        """
        if node not in self._weighted_interest:
            raise NodeNotFoundError(node)
        delta = self._weighted_interest[node]
        for neighbour, pair in self._pairs[node].items():
            if neighbour in group:
                delta += pair
        return delta

    def remove_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Decrement of W when ``node`` leaves ``group`` (node in group)."""
        others = group - {node}
        return -self.add_delta(node, others)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def weighted_interest(self, node: NodeId) -> float:
        """``a_v · η_v`` for ``node``."""
        try:
            return self._weighted_interest[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def pair_weight(self, source: NodeId, target: NodeId) -> float:
        """Objective weight of edge ``{source, target}``:
        ``b_s·τ_st + b_t·τ_ts``."""
        for node in (source, target):
            if node not in self._weighted_interest:
                raise NodeNotFoundError(node)
        try:
            return self._pairs[source][target]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def node_potential(self, node: NodeId) -> float:
        """Upper-bound style score: weighted interest plus *all* incident
        weighted tightness (in both directions).

        This is the quantity CBAS phase 1 ranks start-node candidates by,
        and the optimistic per-node bound the branch-and-bound solver prunes
        with.
        """
        total = self.weighted_interest(node)
        for pair in self._pairs[node].values():
            total += pair
        return total


class FastWillingnessEvaluator:
    """Flat-array evaluator over a :class:`CompiledGraph` (the fast path).

    Drop-in for :class:`WillingnessEvaluator` at the same node-id API, and
    bit-identical to it: the CSR slot order matches the adjacency-dict
    order, and every per-term floating-point expression is the same, so
    sums accumulate identically.  :class:`~repro.algorithms.sampling.
    ExpansionSampler` additionally recognises this evaluator and switches
    its draw loop to the int-indexed kernel.
    """

    def __init__(self, compiled: "CompiledGraph | SocialGraph") -> None:
        if isinstance(compiled, SocialGraph):
            compiled = compiled.compiled()
        self.compiled = compiled
        self.graph = compiled.graph
        # Local handle on the id-space row view, filled on first use:
        # ``add_delta`` runs per candidate inside the sampler's inner
        # loop, where a plain attribute beats re-entering the (lazy on
        # mmap-backed graphs) property every call.
        self._row_id_edges: "list | None" = None

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------
    def value(self, group: Iterable[NodeId]) -> float:
        """Willingness of ``group`` (single scan over member CSR rows)."""
        members = set(group)
        comp = self.compiled
        index_of = comp.index_of
        try:
            member_indices = {index_of[node] for node in members}
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        offsets = comp.offsets
        targets = comp.targets
        out_w = comp.out_w
        weighted_interest = comp.weighted_interest
        tightness_weight = comp.tightness_weight
        total = 0.0
        # Iterate in the same set order as the reference evaluator so the
        # floating-point accumulation is bit-identical.
        for node in members:
            index = index_of[node]
            total += weighted_interest[index]
            if tightness_weight[index] == 0.0:
                continue
            for slot in range(offsets[index], offsets[index + 1]):
                if targets[slot] in member_indices:
                    total += out_w[slot]
        return total

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------
    def add_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Increment of W when ``node`` joins ``group`` (node not in group)."""
        comp = self.compiled
        try:
            index = comp.index_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        delta = comp.weighted_interest[index]
        row_id_edges = self._row_id_edges
        if row_id_edges is None:
            row_id_edges = self._row_id_edges = comp.row_id_edges
        for neighbour, pair in row_id_edges[index]:
            if neighbour in group:
                delta += pair
        return delta

    def remove_delta(self, node: NodeId, group: set[NodeId]) -> float:
        """Decrement of W when ``node`` leaves ``group`` (node in group)."""
        others = group - {node}
        return -self.add_delta(node, others)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def weighted_interest(self, node: NodeId) -> float:
        """``a_v · η_v`` for ``node``."""
        try:
            return self.compiled.weighted_interest[self.compiled.index_of[node]]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def pair_weight(self, source: NodeId, target: NodeId) -> float:
        """Objective weight of edge ``{source, target}``:
        ``b_s·τ_st + b_t·τ_ts``."""
        comp = self.compiled
        try:
            source_index = comp.index_of[source]
            target_index = comp.index_of[target]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        for slot in range(comp.offsets[source_index], comp.offsets[source_index + 1]):
            if comp.targets[slot] == target_index:
                return comp.pair_w[slot]
        raise EdgeNotFoundError(source, target)

    def node_potential(self, node: NodeId) -> float:
        """CBAS phase-1 ranking score, precomputed at freeze time (O(1))."""
        try:
            return self.compiled.potential[self.compiled.index_of[node]]
        except KeyError:
            raise NodeNotFoundError(node) from None


def evaluator_for(
    graph: SocialGraph, engine: str = "compiled"
) -> "WillingnessEvaluator | FastWillingnessEvaluator":
    """Build the evaluator for the requested engine.

    ``"compiled"`` serves the flat-array fast path (freezing — or reusing
    the cached freeze of — the graph); ``"reference"`` the dict-based
    reference implementation; ``"vector"`` the compiled fast path plus
    cached numpy views for the stage-batched kernels.
    """
    if validate_engine(engine) == "compiled":
        return FastWillingnessEvaluator(graph.compiled())
    if engine == "vector":
        from repro.vector import VectorWillingnessEvaluator

        return VectorWillingnessEvaluator(graph.compiled())
    return WillingnessEvaluator(graph)


def willingness(graph: SocialGraph, group: Iterable[NodeId]) -> float:
    """One-shot willingness of ``group`` on ``graph`` (builds an evaluator)."""
    return WillingnessEvaluator(graph).value(group)
