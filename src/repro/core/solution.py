"""Solution objects and feasibility checking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.social_graph import NodeId

__all__ = ["GroupSolution"]


@dataclass(frozen=True)
class GroupSolution:
    """A candidate attendee group together with its willingness.

    Instances are produced by solvers but can be built by hand; use
    :meth:`evaluate` to construct one with the willingness computed for you
    and :meth:`check_feasible` to independently re-validate it against a
    problem (tests do this for every solver).
    """

    members: FrozenSet[NodeId]
    willingness: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", frozenset(self.members))

    @classmethod
    def evaluate(cls, problem: WASOProblem, members) -> "GroupSolution":
        """Build a solution for ``members``, computing its willingness."""
        evaluator = WillingnessEvaluator(problem.graph)
        members = frozenset(members)
        return cls(members=members, willingness=evaluator.value(members))

    def check_feasible(self, problem: WASOProblem) -> list[str]:
        """Return a list of violated constraints (empty = feasible)."""
        violations: list[str] = []
        if len(self.members) != problem.k:
            violations.append(
                f"size {len(self.members)} != k={problem.k}"
            )
        missing = [n for n in self.members if not problem.graph.has_node(n)]
        if missing:
            violations.append(f"unknown nodes: {sorted(map(repr, missing))}")
            return violations
        absent_required = problem.required - self.members
        if absent_required:
            violations.append(
                f"required nodes missing: {sorted(map(repr, absent_required))}"
            )
        banned = self.members & problem.forbidden
        if banned:
            violations.append(
                f"forbidden nodes present: {sorted(map(repr, banned))}"
            )
        if problem.connected and not problem.graph.is_connected_subset(
            self.members
        ):
            violations.append("induced subgraph is not connected")
        return violations

    def is_feasible(self, problem: WASOProblem) -> bool:
        """True iff the solution satisfies every constraint of ``problem``."""
        return not self.check_feasible(problem)

    def sorted_members(self) -> list[NodeId]:
        """Members in a stable, printable order."""
        return sorted(self.members, key=repr)

    def __str__(self) -> str:
        members = ", ".join(map(str, self.sorted_members()))
        return f"GroupSolution(W={self.willingness:.4f}, members=[{members}])"
