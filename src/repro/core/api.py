"""High-level convenience API.

``recommend_group`` is the one-call entry point a social networking site
would embed: hand it a graph and a group size, get back the recommended
attendees.  ``solve_k_range`` implements the paper's suggestion (§1) that
for activities without a fixed size the user specifies a range of ``k``
and inspects the solution for each.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.problem import WASOProblem
from repro.graph.social_graph import SocialGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import SolveResult

__all__ = ["recommend_group", "solve_k_range"]


def recommend_group(
    graph: SocialGraph,
    k: int,
    solver: str = "cbas-nd",
    connected: bool = True,
    required=(),
    forbidden=(),
    rng=None,
    **solver_kwargs,
) -> "SolveResult":
    """Recommend ``k`` attendees for an activity on ``graph``.

    Parameters
    ----------
    graph:
        Social network with interest / tightness scores attached.
    k:
        Number of attendees.
    solver:
        Registry name (default the paper's best performer, CBAS-ND).
    connected:
        ``False`` allows separate sub-groups (WASO-dis).
    required / forbidden:
        Must-include / must-exclude attendees.
    rng:
        Seed or ``random.Random`` for reproducibility.
    solver_kwargs:
        Forwarded to the solver constructor (``budget``, ``m``, ...).
    """
    from repro.algorithms.registry import make_solver

    problem = WASOProblem(
        graph=graph,
        k=k,
        connected=connected,
        required=frozenset(required),
        forbidden=frozenset(forbidden),
    )
    return make_solver(solver, **solver_kwargs).solve(problem, rng=rng)


def solve_k_range(
    graph: SocialGraph,
    k_min: int,
    k_max: int,
    solver: str = "cbas-nd",
    connected: bool = True,
    required=(),
    forbidden=(),
    rng=None,
    **solver_kwargs,
) -> dict[int, "SolveResult"]:
    """Solve WASO for every ``k`` in ``[k_min, k_max]``.

    Returns ``{k: SolveResult}`` so the organizer can pick the most
    suitable group size, as the paper proposes for activities without an
    a-priori fixed size.
    """
    if k_min < 1 or k_max < k_min:
        raise ValueError(
            f"need 1 <= k_min <= k_max, got k_min={k_min}, k_max={k_max}"
        )
    results: dict[int, "SolveResult"] = {}
    for k in range(k_min, k_max + 1):
        results[k] = recommend_group(
            graph,
            k,
            solver=solver,
            connected=connected,
            required=required,
            forbidden=forbidden,
            rng=rng,
            **solver_kwargs,
        )
    return results
