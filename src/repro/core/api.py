"""High-level convenience API.

``recommend_group`` is the one-call entry point a social networking site
would embed: hand it a graph and a group size, get back the recommended
attendees.  ``solve_k_range`` implements the paper's suggestion (§1) that
for activities without a fixed size the user specifies a range of ``k``
and inspects the solution for each.

Both entry points execute through the runtime layer: pass an
:class:`~repro.runtime.context.ExecutionContext` to pick engines, worker
pools, and parallel-mode routing (and to share those across calls);
without one each call builds a throwaway serial context, which preserves
the historical single-threaded behaviour exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.problem import WASOProblem
from repro.graph.social_graph import SocialGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import SolveResult
    from repro.runtime.context import ExecutionContext

__all__ = ["recommend_group", "solve_k_range"]


def _default_context() -> "ExecutionContext":
    from repro.runtime.context import ExecutionContext

    return ExecutionContext(mode="serial")


def recommend_group(
    graph: SocialGraph,
    k: int,
    solver: str = "cbas-nd",
    connected: bool = True,
    required=(),
    forbidden=(),
    rng=None,
    context: "Optional[ExecutionContext]" = None,
    **solver_kwargs,
) -> "SolveResult":
    """Recommend ``k`` attendees for an activity on ``graph``.

    Parameters
    ----------
    graph:
        Social network with interest / tightness scores attached.
    k:
        Number of attendees.
    solver:
        Registry name (default the paper's best performer, CBAS-ND).
    connected:
        ``False`` allows separate sub-groups (WASO-dis).
    required / forbidden:
        Must-include / must-exclude attendees.
    rng:
        Seed or ``random.Random`` for reproducibility.
    context:
        :class:`~repro.runtime.context.ExecutionContext` to execute
        through (engine, workers, parallel-mode routing); a private
        serial one is used when omitted.
    solver_kwargs:
        Forwarded to the solver constructor (``budget``, ``m``, ...).
    """
    problem = WASOProblem(
        graph=graph,
        k=k,
        connected=connected,
        required=frozenset(required),
        forbidden=frozenset(forbidden),
    )
    if context is None:
        context = _default_context()
    return context.solve(problem, solver=solver, rng=rng, **solver_kwargs)


def solve_k_range(
    graph: SocialGraph,
    k_min: int,
    k_max: int,
    solver: str = "cbas-nd",
    connected: bool = True,
    required=(),
    forbidden=(),
    rng=None,
    context: "Optional[ExecutionContext]" = None,
    **solver_kwargs,
) -> dict[int, "SolveResult"]:
    """Solve WASO for every ``k`` in ``[k_min, k_max]``.

    Returns ``{k: SolveResult}`` so the organizer can pick the most
    suitable group size, as the paper proposes for activities without an
    a-priori fixed size.  All solves share one ``context`` (and so one
    frozen graph index and one set of worker pools).
    """
    if k_min < 1 or k_max < k_min:
        raise ValueError(
            f"need 1 <= k_min <= k_max, got k_min={k_min}, k_max={k_max}"
        )
    if context is None:
        context = _default_context()
    results: dict[int, "SolveResult"] = {}
    for k in range(k_min, k_max + 1):
        results[k] = recommend_group(
            graph,
            k,
            solver=solver,
            connected=connected,
            required=required,
            forbidden=forbidden,
            rng=rng,
            context=context,
            **solver_kwargs,
        )
    return results
