"""Core WASO abstractions: problem specification, objective, solutions.

The flow is: build a :class:`~repro.graph.SocialGraph`, wrap it in a
:class:`WASOProblem` (group size ``k`` plus optional constraints), hand the
problem to any solver in :mod:`repro.algorithms`, and receive a
:class:`GroupSolution` whose feasibility can be re-checked independently.

:func:`~repro.core.api.recommend_group` / :func:`~repro.core.api.solve_k_range`
are the high-level one-call entry points.
"""

from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
    evaluator_for,
    willingness,
)
from repro.core.api import recommend_group, solve_k_range

__all__ = [
    "WASOProblem",
    "GroupSolution",
    "WillingnessEvaluator",
    "FastWillingnessEvaluator",
    "evaluator_for",
    "willingness",
    "recommend_group",
    "solve_k_range",
]
