"""Start-node selection (phase 1 of CBAS / CBAS-ND, also used by RGreedy).

The paper sums, for every node, the interest score and the tightness
scores of incident edges, then extracts the ``m`` largest with a heap
(§3.1; the complexity analysis explicitly mentions the heap).  Required
attendees are always promoted to start nodes — the user study's
"with initiator" runs state that CBAS-ND "always chooses the user as a
start node".
"""

from __future__ import annotations

import heapq
import math

from repro.core.problem import WASOProblem
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
)
from repro.graph.social_graph import NodeId

__all__ = ["select_start_nodes", "default_start_count"]


def default_start_count(problem: WASOProblem) -> int:
    """The paper's default ``m = ⌈n / k⌉`` (start nodes cover the network)."""
    return max(1, math.ceil(problem.graph.number_of_nodes() / problem.k))


def select_start_nodes(
    problem: WASOProblem,
    evaluator: "WillingnessEvaluator | FastWillingnessEvaluator",
    m: int,
) -> list[NodeId]:
    """Pick ``m`` start nodes by descending node potential.

    Node potential is ``a_v·η_v + b_v·Σ τ_vj + Σ b_j·τ_jv`` — the weighted
    interest plus incident weighted tightness.  Required nodes come first
    regardless of score.  Returns fewer than ``m`` nodes only when the
    graph has fewer candidates.  With a :class:`FastWillingnessEvaluator`
    each potential is an O(1) lookup into the compiled index's
    precomputed array.
    """
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    required = [node for node in problem.required]
    chosen: list[NodeId] = list(required)
    if len(chosen) >= m:
        return chosen[:m]

    taken = set(chosen)
    scored = (
        (evaluator.node_potential(node), repr(node), node)
        for node in problem.candidates()
        if node not in taken
    )
    top = heapq.nlargest(m - len(chosen), scored, key=lambda item: (item[0], item[1]))
    chosen.extend(node for _, _, node in top)
    return chosen
