"""The paper's literal Integer Programming formulation (Appendix B).

This module builds constraints (11)–(19) exactly as printed — the
root-to-node *path* encoding with variables ``p_{i,j,m,n}`` ("edge (m,n)
lies on the path from root i to selected node j") and level variables
``d_{i,j,m}`` that forbid cycles.  It exists for fidelity: tests verify it
produces the same optimum as the compact flow encoding in
:mod:`repro.algorithms.ip` and as brute-force enumeration.

The formulation needs ``O(n²·E)`` binary variables, so it is only usable
on tiny graphs — which mirrors the paper's own observation that optimal
solutions are obtainable "only in small cases".

One deliberate deviation: the printed constraint (19),
``p_{i,j,m,n} ≤ 2(x_m + x_n)``, is vacuous (its right side is ≥ 0 and ≥ 2
whenever either endpoint is selected); the accompanying prose says the
intent is that both path endpoints *must participate in F*, so we encode
``p_{i,j,m,n} ≤ x_m`` and ``p_{i,j,m,n} ≤ x_n``.
"""

from __future__ import annotations

import random
import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.algorithms.base import Solver, SolveResult, SolveStats
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError

__all__ = ["PaperIPSolver"]


class PaperIPSolver(Solver):
    """Exact solver using the verbatim Appendix-B formulation.

    ``node_limit`` guards against the O(n²·E) variable blow-up.
    """

    name = "paper-ip"

    def __init__(self, node_limit: int = 12) -> None:
        if node_limit < 2:
            raise ValueError(f"node_limit must be >= 2, got {node_limit}")
        self.node_limit = node_limit

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = WillingnessEvaluator(problem.graph)
        nodes = [n for n in problem.candidates()]
        if len(nodes) > self.node_limit:
            raise SolverError(
                f"PaperIPSolver refuses {len(nodes)} nodes "
                f"(limit {self.node_limit}); use IPSolver instead"
            )
        index_of = {node: i for i, node in enumerate(nodes)}
        allowed = set(nodes)
        arcs: list[tuple[int, int]] = []
        for u, v in problem.graph.edges():
            if u in allowed and v in allowed:
                arcs.append((index_of[u], index_of[v]))
                arcs.append((index_of[v], index_of[u]))
        neighbours: dict[int, list[int]] = {i: [] for i in range(len(nodes))}
        for m, n_ in arcs:
            neighbours[m].append(n_)

        n = len(nodes)
        k = problem.k
        big = float(n)
        use_paths = problem.connected and k > 1

        # Variable layout: x (n) | y (arcs) | r (n) | p (pairs*arcs) | d (pairs*n)
        num_pairs = n * (n - 1) if use_paths else 0
        x_off = 0
        y_off = n
        r_off = y_off + len(arcs)
        p_off = r_off + (n if use_paths else 0)
        d_off = p_off + num_pairs * len(arcs)
        num_vars = d_off + (num_pairs * n if use_paths else 0)

        pair_index: dict[tuple[int, int], int] = {}
        if use_paths:
            counter = 0
            for i in range(n):
                for j in range(n):
                    if i != j:
                        pair_index[(i, j)] = counter
                        counter += 1

        def p_var(i: int, j: int, arc: int) -> int:
            return p_off + pair_index[(i, j)] * len(arcs) + arc

        def d_var(i: int, j: int, m: int) -> int:
            return d_off + pair_index[(i, j)] * n + m

        arc_index: dict[tuple[int, int], int] = {
            arc: a for a, arc in enumerate(arcs)
        }

        objective = np.zeros(num_vars)
        b_weight = {}
        for i, node in enumerate(nodes):
            objective[x_off + i] = evaluator.weighted_interest(node)
            _, b = problem.graph.weights(node)
            b_weight[i] = b
        for a, (m, n_) in enumerate(arcs):
            tau = problem.graph.tightness(nodes[m], nodes[n_])
            objective[y_off + a] = b_weight[m] * tau

        rows: list[tuple[dict[int, float], float, float]] = []
        # (11) sum x = k.
        rows.append(({x_off + i: 1.0 for i in range(n)}, float(k), float(k)))
        # (12) x_i + x_j >= 2 y_ij  per directed arc.
        for a, (m, n_) in enumerate(arcs):
            rows.append(
                (
                    {x_off + m: 1.0, x_off + n_: 1.0, y_off + a: -2.0},
                    0.0,
                    np.inf,
                )
            )

        if use_paths:
            # (13) one root; (14) root selected.
            rows.append(({r_off + i: 1.0 for i in range(n)}, 1.0, 1.0))
            for i in range(n):
                rows.append(
                    ({r_off + i: 1.0, x_off + i: -1.0}, -np.inf, 0.0)
                )
            for (i, j) in pair_index:
                # (15) r_i + x_j - 1 <= sum_{n in N_i} p_{i,j,i,n}
                coeffs = {r_off + i: 1.0, x_off + j: 1.0}
                for n_ in neighbours[i]:
                    arc = arc_index[(i, n_)]
                    coeffs[p_var(i, j, arc)] = -1.0
                rows.append((coeffs, -np.inf, 1.0))
                # (16) r_i + x_j - 1 <= sum_{m in N_j} p_{i,j,m,j}
                coeffs = {r_off + i: 1.0, x_off + j: 1.0}
                for m in neighbours[j]:
                    arc = arc_index[(m, j)]
                    coeffs[p_var(i, j, arc)] = -1.0
                rows.append((coeffs, -np.inf, 1.0))
                # (17) flow continuity at intermediate nodes.
                for m in range(n):
                    if m in (i, j):
                        continue
                    coeffs = {}
                    for q in neighbours[m]:
                        coeffs[p_var(i, j, arc_index[(q, m)])] = 1.0
                    for n_ in neighbours[m]:
                        key = p_var(i, j, arc_index[(m, n_)])
                        coeffs[key] = coeffs.get(key, 0.0) - 1.0
                    rows.append((coeffs, 0.0, 0.0))
                # (18) anti-cycle levels per arc.
                for a, (m, n_) in enumerate(arcs):
                    rows.append(
                        (
                            {
                                d_var(i, j, m): 1.0,
                                d_var(i, j, n_): -1.0,
                                p_var(i, j, a): big,
                            },
                            -np.inf,
                            big - 1.0,
                        )
                    )
                # (19, strengthened) path arcs only between selected nodes.
                for a, (m, n_) in enumerate(arcs):
                    rows.append(
                        (
                            {p_var(i, j, a): 1.0, x_off + m: -1.0},
                            -np.inf,
                            0.0,
                        )
                    )
                    rows.append(
                        (
                            {p_var(i, j, a): 1.0, x_off + n_: -1.0},
                            -np.inf,
                            0.0,
                        )
                    )

        lower = np.zeros(num_vars)
        upper = np.ones(num_vars)
        integrality = np.ones(num_vars)
        if use_paths:
            d_slice = slice(d_off, num_vars)
            upper[d_slice] = big
            integrality[d_slice] = 0
        for node in problem.required:
            lower[x_off + index_of[node]] = 1.0

        constraint = _assemble(rows, num_vars)
        result = milp(
            c=-objective,
            constraints=[constraint],
            integrality=integrality,
            bounds=Bounds(lb=lower, ub=upper),
        )
        if result.x is None:
            raise SolverError(
                f"paper IP failed: status={result.status} ({result.message})"
            )
        members = frozenset(
            nodes[i] for i in range(n) if result.x[x_off + i] > 0.5
        )
        solution = GroupSolution(
            members=members, willingness=evaluator.value(members)
        )
        stats = SolveStats(samples_drawn=1, extra={"variables": num_vars})
        return SolveResult(solution=solution, stats=stats)


def _assemble(rows, num_vars) -> LinearConstraint:
    data: list[float] = []
    row_idx: list[int] = []
    col_idx: list[int] = []
    lower = np.empty(len(rows))
    upper = np.empty(len(rows))
    for r, (coeffs, lo, hi) in enumerate(rows):
        lower[r] = lo
        upper[r] = hi
        for col, value in coeffs.items():
            row_idx.append(r)
            col_idx.append(col)
            data.append(value)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(rows), num_vars)
    )
    return LinearConstraint(matrix, lower, upper)
