"""WASO solvers.

* :class:`~repro.algorithms.dgreedy.DGreedy` — deterministic greedy
  baseline (paper §1/§3: prone to local optima, Fig. 1).
* :class:`~repro.algorithms.rgreedy.RGreedy` — randomized greedy with
  willingness-proportional neighbour selection (paper §4.1).
* :class:`~repro.algorithms.cbas.CBAS` — randomized search with OCBA
  computational-budget allocation across start nodes (paper §3).
* :class:`~repro.algorithms.cbas_nd.CBASND` — CBAS plus cross-entropy
  neighbour differentiation (paper §4); ``allocation="gaussian"`` gives the
  CBAS-ND-G variant of Appendix A.
* :class:`~repro.algorithms.exact.ExactBnB` — exact branch-and-bound over
  connected k-subgraphs (ground truth for small instances).
* :class:`~repro.algorithms.ip.IPSolver` — exact MILP (compact
  single-commodity-flow encoding, solved by HiGHS through scipy); the
  stand-in for the paper's CPLEX runs.
* :mod:`~repro.algorithms.paper_ip` — the paper's literal IP formulation
  (constraints 11–19), for tiny graphs and fidelity tests.
"""

from repro.algorithms.base import SolveResult, Solver, SolveStats
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.rgreedy import RGreedy
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.exact import ExactBnB
from repro.algorithms.ip import IPSolver
from repro.algorithms.registry import available_solvers, make_solver

__all__ = [
    "Solver",
    "SolveResult",
    "SolveStats",
    "DGreedy",
    "RGreedy",
    "CBAS",
    "CBASND",
    "ExactBnB",
    "IPSolver",
    "available_solvers",
    "make_solver",
]
