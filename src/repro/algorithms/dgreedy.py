"""DGreedy — the deterministic greedy baseline.

At every iteration the algorithm adds the frontier node with the largest
willingness increment (paper §1/§3).  The first pick therefore maximizes
the weighted interest score alone, which is precisely why the greedy run in
the paper's Figure 1 gets trapped: it commits to the highest-interest start
node and explores a single sequence of the solution space.

Required attendees, when present, form the seed instead (the user-study
"with initiator" mode).  Ties are broken by node representation so the
algorithm is fully deterministic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import ContextSolver, SolveResult, SolveStats
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.exceptions import SolverError
from repro.graph.social_graph import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["DGreedy"]


class DGreedy(ContextSolver):
    """Deterministic greedy construction (one start node, one sequence).

    The compiled engine (the context default) reuses the graph's frozen
    flat-array index across solves; deltas are bit-identical to the
    reference path, so the deterministic result is engine-independent.
    ``engine=`` remains as a deprecated shim over the context.
    """

    name = "dgreedy"

    def __init__(
        self,
        engine: Optional[str] = None,
        context: "Optional[ExecutionContext]" = None,
    ) -> None:
        self._init_context(engine, context)

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = self.context.evaluator_for(problem, self.engine)
        graph = problem.graph
        allowed = set(problem.candidates())

        members: set[NodeId] = set(problem.required)
        if members:
            current = evaluator.value(members)
        else:
            start = self._best_first_node(problem, evaluator)
            members = {start}
            current = evaluator.value(members)

        while len(members) < problem.k:
            candidates = self._frontier(problem, members, allowed)
            if not candidates:
                raise SolverError(
                    "greedy expansion stalled before reaching k nodes"
                )
            best_node = None
            best_delta = -float("inf")
            for node in candidates:
                delta = evaluator.add_delta(node, members)
                if delta > best_delta or (
                    delta == best_delta
                    and best_node is not None
                    and repr(node) < repr(best_node)
                ):
                    best_node = node
                    best_delta = delta
            members.add(best_node)
            current += best_delta

        if problem.connected and not graph.is_connected_subset(members):
            raise SolverError(
                "greedy could not connect the required attendees"
            )
        solution = GroupSolution(members=frozenset(members), willingness=current)
        return SolveResult(solution=solution, stats=SolveStats(samples_drawn=1))

    # ------------------------------------------------------------------
    def _best_first_node(self, problem: WASOProblem, evaluator) -> NodeId:
        """Highest weighted-interest allowed node (deterministic ties)."""
        best_node = None
        best_score = -float("inf")
        for node in problem.candidates():
            score = evaluator.weighted_interest(node)
            if score > best_score or (
                score == best_score and repr(node) < repr(best_node)
            ):
                best_node = node
                best_score = score
        if best_node is None:
            raise SolverError("no candidate nodes available")
        return best_node

    def _frontier(
        self,
        problem: WASOProblem,
        members: set[NodeId],
        allowed: set[NodeId],
    ) -> list[NodeId]:
        if not problem.connected:
            return [node for node in allowed if node not in members]
        frontier: set[NodeId] = set()
        for member in members:
            for neighbour in problem.graph.neighbors(member):
                if neighbour in allowed and neighbour not in members:
                    frontier.add(neighbour)
        return list(frontier)
