"""Solver interface shared by every WASO algorithm."""

from __future__ import annotations

import abc
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import validate_engine
from repro.exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = [
    "Solver",
    "ContextSolver",
    "SolveResult",
    "SolveStats",
    "coerce_rng",
]

RngLike = Union[None, int, random.Random]


def coerce_rng(rng: RngLike) -> random.Random:
    """Accept ``None`` / seed / ``random.Random`` and return a generator."""
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


@dataclass
class SolveStats:
    """Bookkeeping a solver reports alongside its solution.

    ``samples_drawn`` counts complete k-node candidate groups evaluated
    (the paper's unit of computational budget T); ``failed_samples`` counts
    expansions that stalled before reaching k nodes; ``stages`` is the
    number of OCBA stages actually executed.  ``extra`` holds
    solver-specific diagnostics (e.g. per-start-node budgets).
    """

    samples_drawn: int = 0
    failed_samples: int = 0
    stages: int = 0
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass
class SolveResult:
    """A solution plus the statistics of the run that produced it."""

    solution: GroupSolution
    stats: SolveStats

    @property
    def willingness(self) -> float:
        return self.solution.willingness

    @property
    def members(self):
        return self.solution.members


class Solver(abc.ABC):
    """Base class: configure once, :meth:`solve` many problems.

    Subclasses implement :meth:`_solve`; the public :meth:`solve` wraps it
    with validation, RNG coercion, wall-clock timing, and a final
    feasibility assertion so no solver can silently return an infeasible
    group.
    """

    #: Short identifier used by the registry and the bench harness.
    name: str = "solver"

    def solve(self, problem: WASOProblem, rng: RngLike = None) -> SolveResult:
        """Solve ``problem`` and return a feasible :class:`SolveResult`."""
        problem.ensure_feasible()
        generator = coerce_rng(rng)
        started = time.perf_counter()
        result = self._solve(problem, generator)
        result.stats.elapsed_seconds = time.perf_counter() - started
        violations = result.solution.check_feasible(problem)
        if violations:
            raise SolverError(
                f"{self.name} produced an infeasible solution: "
                + "; ".join(violations)
            )
        return result

    @abc.abstractmethod
    def _solve(
        self, problem: WASOProblem, rng: random.Random
    ) -> SolveResult:
        """Produce a solution (feasibility is checked by the caller)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ContextSolver(Solver):
    """Solver whose execution state lives on an
    :class:`~repro.runtime.context.ExecutionContext`.

    Subclasses call :meth:`_init_context` from their constructor: a
    caller-supplied context provides the engine, the stage-executor
    routing, and the worker pools; without one the solver gets a private
    *serial* context, which reproduces the historical direct-call
    behaviour bit for bit (the deprecated ``engine=`` kwarg delegates to
    that private context).
    """

    #: The runtime layer this solver executes through.
    context: "ExecutionContext"
    #: Resolved engine name (the context's unless ``engine=`` overrode it).
    engine: str

    def _init_context(
        self,
        engine: Optional[str],
        context: "Optional[ExecutionContext]",
    ) -> None:
        if context is None:
            from repro.runtime.context import ExecutionContext

            # Private serial context: no pools, no auto-routing — a bare
            # ``Solver().solve()`` stays exactly the historical serial run.
            context = ExecutionContext(
                engine=engine if engine is not None else "compiled",
                mode="serial",
            )
        self.context = context
        self.engine = (
            validate_engine(engine) if engine is not None else context.engine
        )

    def __getstate__(self) -> dict:
        # Contexts hold worker pools (pipes, processes) that cannot cross
        # a process boundary; worker-side solves are serial, so ship the
        # solver without it and let ``__setstate__`` rebuild a private one.
        state = self.__dict__.copy()
        state["context"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("context") is None:
            from repro.runtime.context import ExecutionContext

            self.context = ExecutionContext(engine=self.engine, mode="serial")
