"""Stage-execution strategies for the staged randomized solvers.

CBAS and CBAS-ND run ``r`` OCBA stages; within a stage, every funded
start node draws its budget share of samples and the per-start statistics
(and, for CBAS-ND, the cross-entropy vectors) are updated from them.  The
paper parallelizes exactly this inner loop with OpenMP — threads draw the
stage's samples concurrently and synchronize only at stage boundaries
(Fig. 5(d)).

This module factors the inner loop behind a strategy object so the two
execution modes share the solver's stage skeleton (allocation, pruning,
write-off policy, warm starts):

* :class:`SerialStageExecutor` — the default in-process loop.  It
  performs the identical draw calls, in the identical order, against the
  identical RNG as the historical inline loop, so seeded serial runs are
  bit-for-bit unchanged.
* :class:`~repro.parallel.stage_pool.ShardedStageExecutor` — splits each
  funded start's share across a persistent worker pool
  (:class:`~repro.parallel.stage_pool.StagePool`), merges the compact
  per-shard summaries, and refits the CE vectors from the *merged* elite
  evidence — the process-based equivalent of the paper's OpenMP loop.

The solver owns everything problem-specific through the hook methods it
already exposes (``_draw_batch``, ``_after_start_stage``) plus the
shard-protocol hooks (``_shard_mode``, ``_shard_keep_rank``,
``_merge_start_stage``, ``_shard_initial_vectors``); executors only
orchestrate where and when draws happen.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import SolveStats
from repro.algorithms.sampling import ExpansionSampler, Sample, seed_for_start
from repro.budget.ocba import StartNodeStats
from repro.core.problem import WASOProblem

__all__ = [
    "MAX_CONSECUTIVE_FAILURES",
    "StageContext",
    "StageExecutor",
    "SerialStageExecutor",
]

#: A start node whose expansions keep failing (its component is smaller
#: than k) is written off after this many consecutive failures.
MAX_CONSECUTIVE_FAILURES = 5


@dataclass
class StageContext:
    """Per-solve state shared between the solver's skeleton and an executor.

    Built by :meth:`repro.algorithms.cbas.CBAS._solve` once phase 1 is
    settled (start nodes ranked, vectors prepared, undersized components
    pruned) and threaded through every ``run_stage`` call.  Executors
    mutate ``stats`` / ``node_stats`` / ``failures`` in place and track
    the incumbent best sample on ``best_sample``.
    """

    solver: object
    problem: WASOProblem
    sampler: ExpansionSampler
    rng: random.Random
    starts: list
    node_stats: "list[StartNodeStats]"
    failures: "list[int]"
    stats: SolveStats
    best_sample: Optional[Sample] = None


class StageExecutor:
    """Strategy interface: where a stage's sample draws happen."""

    def begin_solve(self, ctx: StageContext) -> None:
        """Per-solve setup (resident payloads, worker vector mirrors)."""

    def run_stage(self, ctx: StageContext, shares: "list[int]") -> None:
        """Draw one stage: ``shares[i]`` samples for start node ``i``."""
        raise NotImplementedError

    def end_solve(self, ctx: StageContext) -> None:
        """Per-solve teardown (the pool itself stays warm)."""


class SerialStageExecutor(StageExecutor):
    """In-process stage execution — the historical inline loop, verbatim.

    One shared RNG is consumed start-by-start in index order, every
    sample updates the OCBA statistics and the incumbent best as it is
    drawn, and the solver's ``_after_start_stage`` hook (the CE refit)
    runs per start — bit-identical results and statistics to the code
    this strategy was factored out of.
    """

    def run_stage(self, ctx: StageContext, shares: "list[int]") -> None:
        solver = ctx.solver
        node_stats = ctx.node_stats
        failures = ctx.failures
        stats = ctx.stats
        best_sample = ctx.best_sample
        for index, share in enumerate(shares):
            if share == 0 or node_stats[index].pruned:
                continue
            seed = seed_for_start(ctx.problem, ctx.starts[index])
            # One batch per (start, stage): the sampler resolves the
            # cached seed state once and stops early at the
            # consecutive-failure cap, so stats and RNG consumption
            # match the historical draw-at-a-time loop exactly.
            batch = solver._draw_batch(
                ctx.sampler, seed, ctx.rng, index, share, failures[index]
            )
            stage_samples: list[Sample] = []
            for sample in batch:
                stats.samples_drawn += 1
                if sample is None:
                    stats.failed_samples += 1
                    failures[index] += 1
                    if failures[index] >= MAX_CONSECUTIVE_FAILURES:
                        node_stats[index].pruned = True
                    continue
                failures[index] = 0
                node_stats[index].record(sample.willingness)
                stage_samples.append(sample)
                if (
                    best_sample is None
                    or sample.willingness > best_sample.willingness
                ):
                    best_sample = sample
            solver._after_start_stage(index, stage_samples, stats)
        ctx.best_sample = best_sample
