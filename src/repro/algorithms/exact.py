"""Exact WASO solver by branch-and-bound enumeration.

For connected WASO we enumerate every connected induced ``k``-subgraph
exactly once with the ESU tree (Wernicke's algorithm: fix a root, only ever
extend with exclusive neighbours of higher order), maintaining the
willingness incrementally and pruning with an admissible optimistic bound —
``W(partial) + Σ top (k − |partial|) node potentials``, where a node's
potential (weighted interest plus *all* incident weighted tightness)
upper-bounds its marginal contribution to any group.

For WASO-dis (``connected=False``) the same bound drives a subset
branch-and-bound over nodes ordered by potential.

Both modes are exponential in the worst case — this is the ground-truth
oracle for small instances (the role CPLEX plays in the paper's Fig. 9),
not a production solver.  ``node_limit`` guards against accidental use on
big graphs.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.algorithms.base import Solver, SolveResult, SolveStats
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError
from repro.graph.social_graph import NodeId

__all__ = ["ExactBnB"]


class ExactBnB(Solver):
    """Exhaustive branch-and-bound solver (exact optimum).

    Parameters
    ----------
    node_limit:
        Refuse graphs with more allowed nodes than this (safety guard —
        the search is exponential).
    """

    name = "exact-bnb"

    def __init__(self, node_limit: int = 400) -> None:
        if node_limit < 1:
            raise ValueError(f"node_limit must be positive, got {node_limit}")
        self.node_limit = node_limit

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        allowed = [n for n in problem.candidates()]
        if len(allowed) > self.node_limit:
            raise SolverError(
                f"ExactBnB refuses {len(allowed)} nodes "
                f"(limit {self.node_limit}); use IPSolver instead"
            )
        evaluator = WillingnessEvaluator(problem.graph)
        self._evaluator = evaluator
        self._problem = problem
        self._required = set(problem.required)
        self._best_members: Optional[frozenset] = None
        self._best_value = -float("inf")
        self._groups_examined = 0

        # Potentials sorted descending drive the optimistic bound.
        self._potential = {
            node: max(0.0, evaluator.node_potential(node)) for node in allowed
        }
        self._sorted_potentials = sorted(
            self._potential.values(), reverse=True
        )

        if problem.connected:
            self._search_connected(allowed)
        else:
            self._search_unconstrained(allowed)

        if self._best_members is None:
            raise SolverError("no feasible group exists")
        solution = GroupSolution(
            members=self._best_members, willingness=self._best_value
        )
        stats = SolveStats(samples_drawn=self._groups_examined)
        return SolveResult(solution=solution, stats=stats)

    # ------------------------------------------------------------------
    # Shared bound / record keeping
    # ------------------------------------------------------------------
    def _bound(self, current: float, missing: int) -> float:
        """Admissible optimistic completion bound."""
        return current + sum(self._sorted_potentials[:missing])

    def _consider(self, members: set[NodeId], value: float) -> None:
        self._groups_examined += 1
        if self._required - members:
            return
        if value > self._best_value:
            self._best_value = value
            self._best_members = frozenset(members)

    # ------------------------------------------------------------------
    # Connected enumeration (ESU with pruning)
    # ------------------------------------------------------------------
    def _search_connected(self, allowed: list[NodeId]) -> None:
        graph = self._problem.graph
        k = self._problem.k
        order = {node: index for index, node in enumerate(allowed)}
        allowed_set = set(allowed)

        def extend(
            sub: set[NodeId],
            ext: list[NodeId],
            root_rank: int,
            current: float,
        ) -> None:
            if len(sub) == k:
                self._consider(sub, current)
                return
            if self._bound(current, k - len(sub)) <= self._best_value:
                return
            ext = list(ext)
            while ext:
                node = ext.pop()
                # Exclusive new neighbours: higher order than the root and
                # not already adjacent to the current subgraph.
                new_ext = list(ext)
                for neighbour in graph.neighbors(node):
                    if (
                        neighbour in allowed_set
                        and order[neighbour] > root_rank
                        and neighbour not in sub
                        and not self._adjacent_to(sub, neighbour)
                        and neighbour != node
                    ):
                        new_ext.append(neighbour)
                delta = self._evaluator.add_delta(node, sub)
                sub.add(node)
                extend(sub, new_ext, root_rank, current + delta)
                sub.remove(node)

        for root in allowed:
            root_rank = order[root]
            base = {root}
            ext = [
                neighbour
                for neighbour in graph.neighbors(root)
                if neighbour in allowed_set and order[neighbour] > root_rank
            ]
            extend(base, ext, root_rank, self._evaluator.value(base))

    def _adjacent_to(self, sub: set[NodeId], node: NodeId) -> bool:
        graph = self._problem.graph
        adjacency = graph.neighbor_tightness(node)
        if len(adjacency) < len(sub):
            return any(member in sub for member in adjacency)
        return any(graph.has_edge(member, node) for member in sub)

    # ------------------------------------------------------------------
    # Unconstrained enumeration (WASO-dis)
    # ------------------------------------------------------------------
    def _search_unconstrained(self, allowed: list[NodeId]) -> None:
        k = self._problem.k
        ordered = sorted(
            allowed, key=lambda node: self._potential[node], reverse=True
        )

        def choose(index: int, members: set[NodeId], current: float) -> None:
            if len(members) == k:
                self._consider(members, current)
                return
            remaining_slots = k - len(members)
            if len(ordered) - index < remaining_slots:
                return
            if self._bound(current, remaining_slots) <= self._best_value:
                return
            node = ordered[index]
            delta = self._evaluator.add_delta(node, members)
            members.add(node)
            choose(index + 1, members, current + delta)
            members.remove(node)
            choose(index + 1, members, current)

        choose(0, set(), 0.0)
