"""CBAS-ND — CBAS with cross-entropy Neighbour Differentiation (paper §4).

CBAS-ND inherits CBAS's two-phase skeleton (start-node selection + staged
OCBA budget allocation) and changes only how a partial solution is grown:
instead of the uniform frontier draw, each start node ``v_i`` carries a
node-selection probability vector ``p_i`` (Definition 3).  Frontier node
``v_j`` is picked with probability proportional to ``p_{i,t,j}``; after
each stage the vector is refitted to that stage's elite samples via the
cross-entropy update of Eq. (4) and smoothed with weight ``w``:

    p ← w · (elite frequency) + (1 − w) · p_old

Theorem 6 shows this strictly improves the convergence rate over CBAS at
equal budget.  ``allocation="gaussian"`` switches the budget-allocation
rule to the Appendix-A Gaussian model, giving the paper's **CBAS-ND-G**
variant (Fig. 6); :func:`cbas_nd_g` is a convenience constructor for it.

The optional ``backtrack_threshold`` enables the §4.4.2 extension: when a
vector's movement ``z_i`` drops below the threshold, it is reset to its
previous state to escape premature convergence.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import SolveStats
from repro.algorithms.cbas import (
    _MAX_CONSECUTIVE_FAILURES,
    CBAS,
    CBASWarmState,
)
from repro.algorithms.sampling import ExpansionSampler, Sample
from repro.algorithms.stage_exec import StageExecutor
from repro.ce.convergence import BacktrackController
from repro.ce.probability import SelectionProbabilities
from repro.core.problem import WASOProblem
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["CBASND", "cbas_nd_g"]


class CBASND(CBAS):
    """CBAS with cross-entropy neighbour differentiation.

    Parameters (beyond :class:`~repro.algorithms.cbas.CBAS`)
    ----------------------------------------------------------
    rho:
        Elite quantile ``ρ`` (paper default 0.3).
    smoothing:
        Smoothing weight ``w`` (paper default 0.9).
    backtrack_threshold:
        Enable §4.4.2 backtracking below this squared-movement threshold
        (``None`` = off).
    """

    name = "cbas-nd"

    def __init__(
        self,
        budget: int = 200,
        m: Optional[int] = None,
        stages: Optional[int] = None,
        pb: float = 0.7,
        alpha: float = 0.99,
        allocation: str = "uniform",
        start_selection: str = "potential",
        engine: Optional[str] = None,
        executor: Optional[StageExecutor] = None,
        context: "Optional[ExecutionContext]" = None,
        rho: float = 0.3,
        smoothing: float = 0.9,
        backtrack_threshold: Optional[float] = None,
        max_backtracks: int = 3,
    ) -> None:
        super().__init__(
            budget=budget,
            m=m,
            stages=stages,
            pb=pb,
            alpha=alpha,
            allocation=allocation,
            start_selection=start_selection,
            engine=engine,
            executor=executor,
            context=context,
        )
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must lie in (0, 1], got {rho}")
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in [0, 1], got {smoothing}")
        self.rho = rho
        self.smoothing = smoothing
        self.backtrack_threshold = backtrack_threshold
        self.max_backtracks = max_backtracks
        self._vectors: list[SelectionProbabilities] = []
        self._vectors_warm: list[bool] = []
        self._controllers: list[BacktrackController] = []

    # ------------------------------------------------------------------
    # CBAS hooks
    # ------------------------------------------------------------------
    def _prepare(
        self,
        problem: WASOProblem,
        starts: list,
        evaluator: "WillingnessEvaluator | FastWillingnessEvaluator",
    ) -> None:
        # On the compiled engine the vectors live in the compiled int-id
        # domain: one float slot per graph node, shared index mapping, so
        # the sampler weights frontier draws by plain list indexing.
        compiled = getattr(evaluator, "compiled", None)
        index_of = compiled.index_of if compiled is not None else None
        warm = self.warm_state
        if warm is not None and warm.graph_state != self._graph_state(
            problem
        ):
            # Earned on a different (or since-mutated) graph: both
            # engines drop the vectors so seeded runs stay identical —
            # the compiled engine would rebuild anyway (new freeze, new
            # index_of), the reference engine has no other tripwire.
            warm = None
        template: Optional[SelectionProbabilities] = None
        vectors: list[SelectionProbabilities] = []
        warm_flags: list[bool] = []
        for start in starts:
            vector = warm.vectors.get(start) if warm is not None else None
            if vector is not None and vector.index_map is index_of:
                # Surviving vector from the previous re-planning round,
                # same id domain (same freeze or both local): keep
                # refining it instead of resetting to the homogeneous
                # prior (§4.4.1 — this is what makes replans converge
                # faster than cold solves).  The elite threshold does NOT
                # survive: it was earned against the previous problem's
                # willingness ceiling, and a decline may have lowered
                # that ceiling below γ, which would blank every elite set
                # and freeze the vector.
                vector.reset_threshold()
                vectors.append(vector)
                warm_flags.append(True)
                continue
            warm_flags.append(False)
            if template is None:
                template = SelectionProbabilities(
                    problem.candidates(),
                    problem.k,
                    index_of=index_of,
                    size=(
                        compiled.number_of_nodes
                        if compiled is not None
                        else None
                    ),
                    # The vector engine refits whole float64 arrays; the
                    # batch kernel reads them zero-copy and the eager
                    # numpy rounds stay IEEE-identical to the lazy chain.
                    backend=(
                        "numpy"
                        if getattr(evaluator, "is_vector", False)
                        else "list"
                    ),
                )
                vectors.append(template)
            else:
                vectors.append(template.replicate())
        self._vectors = vectors
        self._vectors_warm = warm_flags
        self._controllers = [
            BacktrackController(
                threshold=self.backtrack_threshold,
                max_backtracks=self.max_backtracks,
            )
            for _ in starts
        ]

    def _draw_batch(
        self,
        sampler: ExpansionSampler,
        seed: set,
        rng: random.Random,
        start_index: int,
        count: int,
        failures: int,
    ) -> list[Optional[Sample]]:
        vector = self._vectors[start_index]
        array = vector.array
        if array is not None and sampler.is_compiled:
            # Array-backed vector + int frontier: each frontier weight is
            # one list index, no per-slot dict probe.
            return sampler.draw_batch(
                seed,
                rng,
                count,
                weight_array=array,
                failures=failures,
                max_failures=_MAX_CONSECUTIVE_FAILURES,
            )
        return sampler.draw_batch(
            seed,
            rng,
            count,
            weight_of=vector.probability,
            failures=failures,
            max_failures=_MAX_CONSECUTIVE_FAILURES,
        )

    def _export_warm_state(self, starts: list) -> CBASWarmState:
        state = super()._export_warm_state(starts)
        state.vectors = dict(zip(starts, self._vectors))
        return state

    def _after_start_stage(
        self,
        start_index: int,
        samples: list[Sample],
        stats: SolveStats,
    ) -> None:
        if not samples:
            return
        vector = self._vectors[start_index]
        controller = self._controllers[start_index]
        controller.remember(vector)
        movement = vector.update(
            samples,
            rho=self.rho,
            smoothing=self.smoothing,
            # The movement signal only steers backtracking; without it
            # the O(n) distance accumulation is skipped.
            compute_movement=controller.enabled,
        )
        if controller.observe(vector, movement):
            stats.extra["backtracks"] = stats.extra.get("backtracks", 0) + 1

    # ------------------------------------------------------------------
    # Shard-protocol hooks (stage-sharded execution)
    # ------------------------------------------------------------------
    def _shard_mode(self) -> str:
        """Pool workers weight frontier draws by mirrored CE vectors."""
        return "ce"

    def _stage_weight_array(self, start_index: int):
        """The start's probability array for the vector kernel's CE mode."""
        return self._vectors[start_index].array

    def _shard_keep_rank(self, share: int) -> int:
        """Elite retention rank ``⌈ρ · share⌉`` for a stage share.

        The merged stream's elite quantile rank is ``⌈ρ·N_success⌉ ≤
        ⌈ρ·share⌉``, so shards retaining their top-``⌈ρ·share⌉`` samples
        (ties included) provably cover the merged elite set.
        """
        return max(1, math.ceil(self.rho * share))

    def _shard_initial_vectors(self) -> list:
        """Solve-start vector payloads: arrays for warm vectors only.

        Cold vectors are the homogeneous prior, which workers rebuild
        locally (bit-identically) from the problem spec — only vectors
        surviving from a previous re-planning round carry state worth
        shipping.
        """
        return [
            tuple(vector.snapshot()) if warm else None
            for vector, warm in zip(self._vectors, self._vectors_warm)
        ]

    def _merge_start_stage(
        self,
        start_index: int,
        successes: int,
        kept: "list[tuple[float, tuple[int, ...]]]",
        stats: SolveStats,
    ) -> "tuple | None":
        """One Eq. (4) refit from the merged shard evidence.

        The stage quantile is taken over the *full* merged stream (the
        per-shard retention rank guarantees the rank-``⌈ρ·N⌉`` value and
        every threshold-tied sample are among ``kept``), so the vector is
        refitted from exactly the elite set a serial run over the
        concatenated sample stream would produce.
        """
        if successes == 0:
            return None
        vector = self._vectors[start_index]
        rank = max(1, math.ceil(self.rho * successes))
        ordered = sorted((w for w, _ in kept), reverse=True)
        stage_gamma = ordered[min(rank, len(ordered)) - 1]
        gamma = vector.observe_stage_gamma(stage_gamma)
        elites = [(w, indices) for w, indices in kept if w >= gamma]
        if not elites:
            # Every sample fell below the historic threshold: keep the
            # vector unchanged rather than fitting to nothing.
            return None
        counts: dict[int, int] = {}
        for _, indices in elites:
            for slot in indices:
                counts[slot] = counts.get(slot, 0) + 1
        controller = self._controllers[start_index]
        controller.remember(vector)
        patch, movement = vector.update_from_counts(
            counts,
            len(elites),
            self.smoothing,
            compute_movement=controller.enabled,
        )
        if controller.observe(vector, movement):
            stats.extra["backtracks"] = stats.extra.get("backtracks", 0) + 1
            # The restore rewrote the whole array: mirrors need a full
            # resync, not the round patch.
            patch = ("full", tuple(vector.snapshot()))
        return patch


def cbas_nd_g(**kwargs) -> CBASND:
    """The paper's CBAS-ND-G: CBAS-ND with Gaussian budget allocation."""
    kwargs.setdefault("allocation", "gaussian")
    solver = CBASND(**kwargs)
    solver.name = "cbas-nd-g"
    return solver
