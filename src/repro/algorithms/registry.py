"""Solver registry — build solvers by name (CLI and bench harness)."""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import Solver
from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND, cbas_nd_g
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.exact import ExactBnB
from repro.algorithms.ip import IPSolver
from repro.algorithms.paper_ip import PaperIPSolver
from repro.algorithms.rgreedy import RGreedy

__all__ = ["available_solvers", "make_solver", "solver_factory"]

_FACTORIES: dict[str, Callable[..., Solver]] = {
    "dgreedy": DGreedy,
    "rgreedy": RGreedy,
    "cbas": CBAS,
    "cbas-nd": CBASND,
    "cbas-nd-g": cbas_nd_g,
    "exact-bnb": ExactBnB,
    "ip": IPSolver,
    "paper-ip": PaperIPSolver,
}


def available_solvers() -> list[str]:
    """Names accepted by :func:`make_solver`."""
    return sorted(_FACTORIES)


def solver_factory(name: str) -> Callable[..., Solver]:
    """The registry factory behind ``name`` (the runtime layer inspects
    its signature to decide which execution kwargs it understands)."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None


def make_solver(name: str, **kwargs) -> Solver:
    """Instantiate a solver by its registry name.

    Keyword arguments are forwarded to the solver constructor, so e.g.
    ``make_solver("cbas-nd", budget=500, m=50)`` works.
    """
    return solver_factory(name)(**kwargs)
