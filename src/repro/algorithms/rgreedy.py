"""RGreedy — randomized greedy with willingness-proportional selection.

The paper introduces RGreedy (§4.1) as the natural fix for CBAS's
indiscriminate uniform expansion: at iteration ``t`` the probability of
picking frontier node ``v_i`` is proportional to the willingness of the
group it would create,

    P(v_i | S_{t−1}) ∝ W({v_i} ∪ S_{t−1}).

This inherits greedy's myopia (only local information) *and* is expensive —
every expansion step must evaluate the willingness increment of every
frontier node, which is why the paper's running-time figures show RGreedy
two orders of magnitude slower than CBAS / CBAS-ND.  We keep that cost
profile honestly: no budget-allocation tricks, each of the ``m`` start
nodes is expanded ``T/m`` times.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import ContextSolver, SolveResult, SolveStats
from repro.algorithms.sampling import ExpansionSampler, seed_for_start
from repro.algorithms.start_nodes import default_start_count, select_start_nodes
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.exceptions import BudgetExhaustedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["RGreedy"]


class RGreedy(ContextSolver):
    """Randomized greedy baseline.

    Parameters
    ----------
    budget:
        Total number of complete samples ``T``.
    m:
        Number of start nodes; defaults to the paper's ``⌈n/k⌉``.
    engine:
        Deprecated shim (prefer the ``context``): ``"compiled"`` or
        ``"reference"`` sampling path; seeded results are identical on
        both.  ``None`` inherits the context's engine.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` to execute
        through (private serial one when omitted).
    """

    name = "rgreedy"

    def __init__(
        self,
        budget: int = 100,
        m: Optional[int] = None,
        engine: Optional[str] = None,
        context: "Optional[ExecutionContext]" = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if m is not None and m < 1:
            raise ValueError(f"m must be positive, got {m}")
        self.budget = budget
        self.m = m
        self._init_context(engine, context)

    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = self.context.evaluator_for(problem, self.engine)
        sampler = ExpansionSampler(problem, evaluator)
        m = self.m if self.m is not None else default_start_count(problem)
        starts = select_start_nodes(problem, evaluator, m)

        per_start = max(1, self.budget // max(1, len(starts)))
        stats = SolveStats()
        best_sample = None
        if sampler.is_vector:
            batches = self._draw_all_vector(
                problem, sampler, rng, starts, per_start
            )
        else:
            batches = None
        for index, start in enumerate(starts):
            remaining = self.budget - stats.samples_drawn
            if remaining <= 0:
                break
            if batches is not None:
                batch = batches[index]
            else:
                seed = seed_for_start(problem, start)
                # Batched per start: same draw count and RNG stream as
                # the historical draw-at-a-time loop, one seed-state
                # resolve.
                batch = sampler.draw_batch(
                    seed, rng, min(per_start, remaining), greedy_bias=True
                )
            for sample in batch:
                stats.samples_drawn += 1
                if sample is None:
                    stats.failed_samples += 1
                    continue
                if (
                    best_sample is None
                    or sample.willingness > best_sample.willingness
                ):
                    best_sample = sample
        batched = getattr(sampler, "vector_batch_draws", 0)
        if batched:
            stats.extra["vector_batch_draws"] = batched
        fallback = getattr(sampler, "vector_fallback_draws", 0)
        if fallback:
            stats.extra["vector_fallback_draws"] = fallback

        if best_sample is None:
            raise BudgetExhaustedError(
                "RGreedy drew no feasible sample within its budget"
            )
        solution = GroupSolution(
            members=best_sample.members, willingness=best_sample.willingness
        )
        stats.extra["start_nodes"] = len(starts)
        return SolveResult(solution=solution, stats=stats)

    def _draw_all_vector(
        self,
        problem: WASOProblem,
        sampler: ExpansionSampler,
        rng: random.Random,
        starts: list,
        per_start: int,
    ) -> "list[list]":
        """Every start's greedy batch in one vector-kernel call.

        RGreedy never truncates a batch (no failure cap), so each
        start's draw count is a pure function of the budget split and
        the whole solve can be planned — and drawn — up front.
        """
        sampler.vector_key = rng.getrandbits(64)
        entries = []
        planned = 0
        for index, start in enumerate(starts):
            remaining = self.budget - planned
            if remaining <= 0:
                break
            count = min(per_start, remaining)
            entries.append(
                {
                    "start_key": index,
                    "seed": seed_for_start(problem, start),
                    "first_draw": 0,
                    "count": count,
                    "failures": 0,
                }
            )
            planned += count
        batches = sampler.draw_batch_vector(entries, mode="greedy")
        batches.extend([] for _ in range(len(starts) - len(batches)))
        return batches
