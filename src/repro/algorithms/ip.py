"""Exact WASO via mixed-integer programming (the paper's CPLEX stand-in).

The paper solves WASO exactly with IBM CPLEX on an Integer Programming
formulation whose connectivity constraints route an explicit path from a
root to every selected node (Appendix B) — a formulation with
``O(n²·E)`` path variables.  CPLEX is proprietary and unavailable offline,
so this module provides the same *optimum* through an equivalent but much
more compact **single-commodity-flow** encoding solved by HiGHS via
``scipy.optimize.milp``:

* ``x_i ∈ {0,1}`` — node ``v_i`` selected (``Σ x_i = k``);
* ``y_e ∈ [0,1]`` — both endpoints of edge ``e`` selected; objective weight
  is the edge's pair contribution ``b_i·τ_ij + b_j·τ_ji``.  ``y_e ≤ x_i``,
  ``y_e ≤ x_j``, plus ``y_e ≥ x_i + x_j − 1`` when the weight is negative
  (foe edges) so the penalty cannot be dodged;
* ``r_i ∈ {0,1}`` — root selection, ``Σ r_i = 1``, ``r_i ≤ x_i``;
* ``f_a ≥ 0`` — flow on each directed arc.  The root injects ``k − 1``
  units, every other selected node consumes one
  (``inflow(i) − outflow(i) = x_i − k·r_i``), and arcs only carry flow
  between selected nodes (``f_a ≤ (k−1)·x_tail``, ``f_a ≤ (k−1)·x_head``).
  A feasible flow exists iff the selected nodes are connected.

``connected=False`` (WASO-dis) simply drops the root/flow block.  The
paper's *literal* formulation is kept for fidelity tests in
:mod:`repro.algorithms.paper_ip`.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, milp

from repro.algorithms.base import Solver, SolveResult, SolveStats
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError

__all__ = ["IPSolver"]


class IPSolver(Solver):
    """Exact solver backed by ``scipy.optimize.milp`` (HiGHS).

    Parameters
    ----------
    time_limit:
        Optional wall-clock limit (seconds) passed to HiGHS; on timeout the
        incumbent is returned if it is feasible, otherwise an error is
        raised.
    mip_gap:
        Relative optimality gap; 0.0 demands a proven optimum.
    """

    name = "ip"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_gap: float = 0.0,
    ) -> None:
        if time_limit is not None and time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if mip_gap < 0.0:
            raise ValueError(f"mip_gap must be >= 0, got {mip_gap}")
        self.time_limit = time_limit
        self.mip_gap = mip_gap

    # ------------------------------------------------------------------
    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = WillingnessEvaluator(problem.graph)
        nodes = [n for n in problem.candidates()]
        index_of = {node: i for i, node in enumerate(nodes)}
        allowed = set(nodes)
        edges = [
            (u, v)
            for u, v in problem.graph.edges()
            if u in allowed and v in allowed
        ]
        n = len(nodes)
        e = len(edges)
        k = problem.k

        use_flow = problem.connected and k > 1
        # Variable layout: x (n) | y (e) | r (n) | f (2e)
        num_vars = n + e + (n + 2 * e if use_flow else 0)
        x_off, y_off = 0, n
        r_off = n + e
        f_off = n + e + n

        objective = np.zeros(num_vars)
        for i, node in enumerate(nodes):
            objective[x_off + i] = evaluator.weighted_interest(node)
        edge_weights = []
        for j, (u, v) in enumerate(edges):
            weight = evaluator.pair_weight(u, v)
            edge_weights.append(weight)
            objective[y_off + j] = weight

        constraints = []
        rows: list[tuple[dict[int, float], float, float]] = []

        # (11) exactly k nodes.
        rows.append(
            ({x_off + i: 1.0 for i in range(n)}, float(k), float(k))
        )
        # (12) edge linking.
        for j, (u, v) in enumerate(edges):
            iu, iv = index_of[u], index_of[v]
            rows.append(
                ({y_off + j: 1.0, x_off + iu: -1.0}, -np.inf, 0.0)
            )
            rows.append(
                ({y_off + j: 1.0, x_off + iv: -1.0}, -np.inf, 0.0)
            )
            if edge_weights[j] < 0.0:
                rows.append(
                    (
                        {
                            x_off + iu: 1.0,
                            x_off + iv: 1.0,
                            y_off + j: -1.0,
                        },
                        -np.inf,
                        1.0,
                    )
                )

        if use_flow:
            # Single root.
            rows.append(
                ({r_off + i: 1.0 for i in range(n)}, 1.0, 1.0)
            )
            for i in range(n):
                rows.append(
                    ({r_off + i: 1.0, x_off + i: -1.0}, -np.inf, 0.0)
                )
            # Arc a = 2j is u->v, a = 2j+1 is v->u for edge j = (u, v).
            inflow: list[dict[int, float]] = [dict() for _ in range(n)]
            for j, (u, v) in enumerate(edges):
                iu, iv = index_of[u], index_of[v]
                a_uv = f_off + 2 * j
                a_vu = f_off + 2 * j + 1
                inflow[iv][a_uv] = 1.0
                inflow[iu][a_uv] = -1.0
                inflow[iu][a_vu] = 1.0
                inflow[iv][a_vu] = -1.0
                cap = float(k - 1)
                for arc in (a_uv, a_vu):
                    rows.append(
                        ({arc: 1.0, x_off + iu: -cap}, -np.inf, 0.0)
                    )
                    rows.append(
                        ({arc: 1.0, x_off + iv: -cap}, -np.inf, 0.0)
                    )
            # Conservation: inflow - outflow - x_i + k r_i = 0.
            for i in range(n):
                coeffs = dict(inflow[i])
                coeffs[x_off + i] = coeffs.get(x_off + i, 0.0) - 1.0
                coeffs[r_off + i] = coeffs.get(r_off + i, 0.0) + float(k)
                rows.append((coeffs, 0.0, 0.0))

        constraint = _build_constraint(rows, num_vars)
        constraints.append(constraint)

        lower = np.zeros(num_vars)
        upper = np.ones(num_vars)
        integrality = np.zeros(num_vars)
        integrality[x_off : x_off + n] = 1
        if use_flow:
            integrality[r_off : r_off + n] = 1
            upper[f_off : f_off + 2 * e] = float(max(0, k - 1))
        for node in problem.required:
            lower[x_off + index_of[node]] = 1.0
        # (forbidden nodes were excluded from `nodes` entirely)

        options: dict = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        if self.mip_gap > 0.0:
            options["mip_rel_gap"] = self.mip_gap

        from scipy.optimize import Bounds

        result = milp(
            c=-objective,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lb=lower, ub=upper),
            options=options,
        )
        if result.x is None:
            raise SolverError(
                f"MILP solver failed: status={result.status} "
                f"({result.message})"
            )

        members = frozenset(
            nodes[i] for i in range(n) if result.x[x_off + i] > 0.5
        )
        willingness = evaluator.value(members)
        solution = GroupSolution(members=members, willingness=willingness)
        stats = SolveStats(
            samples_drawn=1,
            extra={
                "mip_status": int(result.status),
                "variables": num_vars,
                "mip_objective": float(-result.fun),
            },
        )
        return SolveResult(solution=solution, stats=stats)


def _build_constraint(
    rows: list[tuple[dict[int, float], float, float]],
    num_vars: int,
) -> LinearConstraint:
    """Assemble sparse constraint rows into one LinearConstraint."""
    data: list[float] = []
    row_idx: list[int] = []
    col_idx: list[int] = []
    lower = np.empty(len(rows))
    upper = np.empty(len(rows))
    for r, (coeffs, lo, hi) in enumerate(rows):
        lower[r] = lo
        upper[r] = hi
        for col, value in coeffs.items():
            row_idx.append(r)
            col_idx.append(col)
            data.append(value)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(rows), num_vars)
    )
    return LinearConstraint(matrix, lower, upper)
