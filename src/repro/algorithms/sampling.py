"""Random expansion of partial solutions — the engine of every
randomized WASO solver.

A *sample* starts from a seed (a start node, plus any required attendees),
keeps a frontier of selectable neighbours, and repeatedly draws one
frontier node until ``k`` nodes are collected (paper §3).  The three
solvers differ only in *how* the draw is biased:

* CBAS — uniform over the frontier;
* RGreedy — probability proportional to the willingness of the group the
  node would create, ``P(v|S) ∝ W({v} ∪ S)`` (§4.1);
* CBAS-ND — probability proportional to the cross-entropy node-selection
  probability vector (§4.2).

Willingness is maintained incrementally (O(deg) per step), which is exactly
why the paper calls the uniform variant cheaper than greedy: no willingness
computation is needed *during* selection, only one delta after it.

The sampler has two execution paths sharing one behaviour:

* the **reference** path over the dict-based graph (used when constructed
  with a :class:`WillingnessEvaluator`);
* the **fast** path over :class:`~repro.graph.compiled.CompiledGraph`
  flat arrays (used with a :class:`FastWillingnessEvaluator`): an int
  frontier with O(1) swap-pop, generation-stamp membership tests instead
  of hash sets, an inlined pair-weight delta scan, a per-seed cached base
  willingness, and a skipped final connectivity BFS whenever the seed is
  already connected (connected expansion preserves connectivity).

The fast path mirrors the reference path's neighbour order and RNG
consumption exactly, so seeded draws — and therefore seeded solver runs —
produce identical results on either path.  Two further int-domain
amortizations ride on it: CBAS-ND's frontier weighting can be supplied as
a flat ``weight_array`` indexed by compiled id (one list index per slot
instead of a dict probe per node), and :meth:`ExpansionSampler.draw_batch`
resolves the cached per-seed state once for a whole run of draws from the
same start node.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence
from itertools import accumulate
from typing import NamedTuple, Optional

from repro.core.problem import WASOProblem
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
)
from repro.graph.social_graph import NodeId

__all__ = [
    "Sample",
    "ShardSummary",
    "ExpansionSampler",
    "weighted_pick",
    "pick_from_array",
    "seed_for_start",
    "summarize_shard",
]


class Sample(NamedTuple):
    """One complete k-node candidate group drawn by a sampler.

    A named tuple rather than a dataclass: samplers create one per draw,
    and the tuple constructor is measurably cheaper on the hot path.

    ``indices`` carries the members as compiled int ids (selection order)
    when the sample came off the fast path, ``None`` on the reference
    path.  The CE elite refit counts membership straight off it instead
    of translating node ids back through a dict; consumers comparing
    samples across engines should compare ``members``/``willingness``.
    """

    members: frozenset
    willingness: float
    indices: "tuple[int, ...] | None" = None


class ShardSummary(NamedTuple):
    """Compact result of one shard's draws for a (start node, stage) pair.

    Stage-sharded solves split a start node's per-stage budget across
    worker processes; each worker reduces its batch to this summary so
    the parent can reconstruct everything a stage needs — OCBA statistics,
    the incumbent best sample, the merged elite quantile, and the exact
    elite set for the Eq. (4) refit — from ``O(ρ·T)`` numbers per shard
    instead of the full sample stream.

    ``kept`` holds the shard's candidate elites as ``(willingness,
    member-index tuple)`` pairs in draw order: every sample whose
    willingness reaches the shard's ``keep_rank``-th best.  Because the
    merged stream's top-ρ quantile rank never exceeds ``keep_rank``
    (which the parent derives from the start's *total* stage share), the
    union of the shards' kept lists provably contains the merged stream's
    full elite set, ties at the threshold included.

    ``mean`` / ``m2`` are Welford moments over the shard's successes in
    draw order; ``trailing_failures`` counts the consecutive failed draws
    at the end of the batch and ``hit_cap`` reports an early stop at the
    consecutive-failure write-off limit.
    """

    attempts: int
    successes: int
    failures: int
    trailing_failures: int
    hit_cap: bool
    min_w: float
    max_w: float
    mean: float
    m2: float
    kept: "tuple[tuple[float, tuple[int, ...]], ...]"


def summarize_shard(
    batch: "Sequence[Optional[Sample]]",
    keep_rank: int,
    max_failures: Optional[int] = None,
    carry_failures: int = 0,
) -> ShardSummary:
    """Reduce one shard's draw batch to a :class:`ShardSummary`.

    ``keep_rank`` is the parent-supplied elite retention rank (at least
    1); ``max_failures`` / ``carry_failures`` mirror the write-off cap
    and the seeded consecutive-failure counter the batch was drawn with,
    so ``hit_cap`` reflects the same counter the draw loop stopped on.
    """
    if keep_rank < 1:
        raise ValueError(f"keep_rank must be positive, got {keep_rank}")
    successes = [sample for sample in batch if sample is not None]
    attempts = len(batch)
    failures = attempts - len(successes)
    trailing = 0
    for sample in reversed(batch):
        if sample is not None:
            break
        trailing += 1
    counter_end = trailing if successes else carry_failures + failures
    hit_cap = max_failures is not None and counter_end >= max_failures
    min_w = math.inf
    max_w = -math.inf
    mean = 0.0
    m2 = 0.0
    for count, sample in enumerate(successes, start=1):
        w = sample.willingness
        if w < min_w:
            min_w = w
        if w > max_w:
            max_w = w
        delta = w - mean
        mean += delta / count
        m2 += delta * (w - mean)
    kept: tuple = ()
    if successes:
        ordered = sorted(
            (sample.willingness for sample in successes), reverse=True
        )
        cutoff = ordered[min(keep_rank, len(ordered)) - 1]
        kept = tuple(
            (sample.willingness, sample.indices)
            for sample in successes
            if sample.willingness >= cutoff
        )
    return ShardSummary(
        attempts=attempts,
        successes=len(successes),
        failures=failures,
        trailing_failures=trailing,
        hit_cap=hit_cap,
        min_w=min_w,
        max_w=max_w,
        mean=mean,
        m2=m2,
        kept=kept,
    )


def weighted_pick(
    rng: random.Random, items: list, weights: list[float]
) -> int:
    """Pick an index with probability proportional to ``weights``.

    Non-positive weights are treated as zero; if every weight is zero the
    pick degrades to uniform (keeps samplers alive when a probability
    vector collapses).  The cumulative sums are built in a single pass and
    the threshold located by bisection.
    """
    cumulative: list[float] = []
    total = 0.0
    for weight in weights:
        if weight > 0.0:
            total += weight
        cumulative.append(total)
    if total <= 0.0:
        return rng.randrange(len(items))
    threshold = rng.random() * total
    if threshold <= 0.0:
        # Degenerate draw: the first positive-weight item wins, never a
        # zero-weight one that happens to share its cumulative value.
        for index, weight in enumerate(weights):
            if weight > 0.0:
                return index
    index = bisect_left(cumulative, threshold)
    return min(index, len(items) - 1)  # numerical tail guard


def pick_from_array(
    rng: random.Random, frontier: list[int], weight_array: Sequence[float]
) -> int:
    """:func:`weighted_pick` specialized for an int frontier + flat array.

    Gathers the weights with a C-level ``map`` and, when none is
    negative (always true for CE probability vectors), builds the
    cumulative sums with ``itertools.accumulate``.  Zero weights add
    exactly nothing to an IEEE running sum, so the cumulative list — and
    therefore every pick and the RNG stream — is bit-identical to
    :func:`weighted_pick` over the same values.  Negative weights are
    clamped to zero in place — same treatment :func:`weighted_pick`
    applies — instead of delegating to it, which would rebuild the
    already-gathered weight list a second time.
    """
    weights = list(map(weight_array.__getitem__, frontier))
    if min(weights) < 0.0:
        weights = [weight if weight > 0.0 else 0.0 for weight in weights]
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    if total <= 0.0:
        return rng.randrange(len(frontier))
    threshold = rng.random() * total
    if threshold <= 0.0:
        for index, weight in enumerate(weights):
            if weight > 0.0:
                return index
    index = bisect_left(cumulative, threshold)
    return min(index, len(frontier) - 1)  # numerical tail guard


def seed_for_start(problem: WASOProblem, start: NodeId) -> set[NodeId]:
    """Seed member set for an expansion beginning at ``start``.

    Required attendees are always part of the seed (the user-study
    "with initiator" mode and the future-work must-include feature).
    """
    return {start} | set(problem.required)


class ExpansionSampler:
    """Draws complete samples for one problem instance.

    Parameters
    ----------
    problem:
        The WASO instance (its ``connected`` flag decides whether the
        frontier is the neighbourhood of the partial solution or simply
        every remaining allowed node — the WASO-dis case).
    evaluator:
        Shared willingness evaluator (built once per solve).  Passing a
        :class:`FastWillingnessEvaluator` switches draws to the compiled
        int-indexed kernel.
    """

    def __init__(
        self,
        problem: WASOProblem,
        evaluator: "WillingnessEvaluator | FastWillingnessEvaluator",
    ) -> None:
        self.problem = problem
        self.evaluator = evaluator
        self.graph = problem.graph
        self._allowed = set(problem.candidates())
        compiled = getattr(evaluator, "compiled", None)
        self._compiled = compiled
        if compiled is not None:
            n = compiled.number_of_nodes
            # Generation stamps: per draw ``t`` the token pair is
            # ``(2t, 2t + 1)`` — ``status[i] == 2t + 1`` marks a member,
            # ``status[i] == 2t`` a frontier entry, anything smaller is
            # untouched this draw.  No per-draw clearing needed.
            self._status = [0] * n
            self._draw_serial = 0
            allowed_mask = bytearray(n)
            index_of = compiled.index_of
            for node in self._allowed:
                allowed_mask[index_of[node]] = 1
            self._allowed_mask = allowed_mask
            self._check_allowed = bool(problem.forbidden)
            # Per-seed cache: (base willingness, seed connected,
            # member indices, initial frontier) — all deterministic
            # functions of the seed set, shared by every draw from it.
            self._seed_cache: dict[frozenset, tuple] = {}
            # Vector-engine state: the solve-level Philox base key (set
            # by the solver once per solve) and the batched/fallback
            # draw counters surfaced through ``SolveStats.extra``.
            self.vector_key: Optional[int] = None
            self.vector_batch_draws = 0
            self.vector_fallback_draws = 0

    # ------------------------------------------------------------------
    @property
    def is_compiled(self) -> bool:
        """True when draws run on the compiled int-indexed kernel."""
        return self._compiled is not None

    @property
    def is_vector(self) -> bool:
        """True when the evaluator carries the numpy views for batching."""
        return getattr(self.evaluator, "is_vector", False)

    def draw(
        self,
        seed: set[NodeId],
        rng: random.Random,
        weight_of: Optional[Callable[[NodeId], float]] = None,
        greedy_bias: bool = False,
        weight_array: "Optional[Sequence[float]]" = None,
    ) -> Optional[Sample]:
        """Expand ``seed`` to ``k`` members; ``None`` if the expansion stalls.

        ``weight_of`` biases the frontier draw by a static per-node weight
        keyed by node id; ``weight_array`` does the same from a flat array
        indexed by compiled int id (CBAS-ND's array-backed probability
        vector — no per-slot dict probe, compiled engine only).
        ``greedy_bias`` biases it by the willingness of the resulting
        group (RGreedy).  The three are mutually exclusive.
        """
        self._validate_bias(weight_of, greedy_bias, weight_array)
        if self._compiled is not None:
            if self.is_vector:
                self.vector_fallback_draws += 1
            return self._draw_fast(
                self._seed_state(seed), rng, weight_of, weight_array,
                greedy_bias,
            )
        if weight_array is not None:
            raise ValueError(
                "weight_array requires the compiled engine; use weight_of "
                "on the reference path"
            )
        k = self.problem.k
        members = set(seed)
        if len(members) > k:
            return None
        current = self.evaluator.value(members)

        frontier: list[NodeId] = []
        in_frontier: set[NodeId] = set()
        self._extend_frontier(members, members, frontier, in_frontier)

        while len(members) < k:
            if not frontier:
                return None
            index = self._pick_index(
                frontier, members, current, rng, weight_of, greedy_bias
            )
            node = frontier[index]
            # Swap-pop keeps the uniform draw O(1).
            frontier[index] = frontier[-1]
            frontier.pop()
            current += self.evaluator.add_delta(node, members)
            members.add(node)
            self._extend_frontier({node}, members, frontier, in_frontier)

        if self.problem.connected and not self.graph.is_connected_subset(
            members
        ):
            # Only possible when the seed itself was disconnected and the
            # expansion failed to bridge it.
            return None
        return Sample(members=frozenset(members), willingness=current)

    # ------------------------------------------------------------------
    def draw_batch(
        self,
        seed: set[NodeId],
        rng: random.Random,
        count: int,
        weight_of: Optional[Callable[[NodeId], float]] = None,
        greedy_bias: bool = False,
        weight_array: "Optional[Sequence[float]]" = None,
        failures: int = 0,
        max_failures: Optional[int] = None,
    ) -> list[Optional[Sample]]:
        """Up to ``count`` draws from one seed, amortizing per-draw setup.

        The compiled path resolves the cached seed state (frozenset key
        hash + cache probe) once for the whole batch instead of once per
        draw.  ``failures`` seeds the consecutive-failure counter and the
        batch stops early once it reaches ``max_failures`` — mirroring the
        solvers' write-off rule, so batched and draw-at-a-time runs
        consume the identical RNG stream and report identical stats.
        Results are returned in draw order, ``None`` marking a stalled
        expansion.
        """
        self._validate_bias(weight_of, greedy_bias, weight_array)
        samples: list[Optional[Sample]] = []
        if self._compiled is not None:
            state = self._seed_state(seed)
            draw_fast = self._draw_fast
            for _ in range(count):
                sample = draw_fast(
                    state, rng, weight_of, weight_array, greedy_bias
                )
                samples.append(sample)
                if sample is None:
                    failures += 1
                    if max_failures is not None and failures >= max_failures:
                        break
                else:
                    failures = 0
            if self.is_vector:
                self.vector_fallback_draws += len(samples)
            return samples
        if weight_array is not None:
            raise ValueError(
                "weight_array requires the compiled engine; use weight_of "
                "on the reference path"
            )
        for _ in range(count):
            sample = self.draw(
                seed, rng, weight_of=weight_of, greedy_bias=greedy_bias
            )
            samples.append(sample)
            if sample is None:
                failures += 1
                if max_failures is not None and failures >= max_failures:
                    break
            else:
                failures = 0
        return samples

    # ------------------------------------------------------------------
    def draw_batch_vector(
        self,
        entries: "list[dict]",
        mode: str = "uniform",
        weight_rows=None,
        max_failures: Optional[int] = None,
    ) -> "list[list[Optional[Sample]]]":
        """One stage's batches for several starts through the numpy kernel.

        Each entry is a dict with ``start_key`` (the Philox stream key
        for the start), ``seed``, ``first_draw`` (the start's planned
        draw ordinal), ``count`` and ``failures`` (carry-in consecutive
        failures).  ``mode`` selects the frontier pick — ``"uniform"``
        (CBAS), ``"ce"`` (CBAS-ND, ``weight_rows`` aligned with
        ``entries``) or ``"greedy"`` (RGreedy).  Returns one
        draw-ordered batch per entry, truncated at ``max_failures``
        consecutive failures like :meth:`draw_batch`.
        """
        if not self.is_vector:
            raise RuntimeError(
                "draw_batch_vector requires the vector engine "
                "(evaluator_for(graph, 'vector'))"
            )
        if self.vector_key is None:
            raise RuntimeError(
                "vector_key is unset; the solver derives it from the "
                "seeded RNG once per solve"
            )
        from repro.vector.kernel import draw_stage_batch

        batches = draw_stage_batch(
            self,
            entries,
            base_key=self.vector_key,
            mode=mode,
            weight_rows=weight_rows,
            max_failures=max_failures,
        )
        self.vector_batch_draws += sum(len(batch) for batch in batches)
        return batches

    @staticmethod
    def _validate_bias(weight_of, greedy_bias, weight_array) -> None:
        if (
            (weight_of is not None)
            + (weight_array is not None)
            + bool(greedy_bias)
        ) > 1:
            raise ValueError(
                "weight_of, weight_array and greedy_bias are mutually "
                "exclusive"
            )

    # ------------------------------------------------------------------
    # Fast path (compiled flat arrays, int index space)
    # ------------------------------------------------------------------
    def _seed_state(self, seed: set[NodeId]) -> tuple:
        """Cached per-seed state shared by every draw from one seed.

        ``(base willingness, seed connected, member index tuple, initial
        frontier tuple)`` — the base value, connectivity, and the initial
        frontier (built in the reference path's exact order) are the same
        for all draws from a given seed, so they are computed once.
        """
        key = frozenset(seed)
        state = self._seed_cache.get(key)
        if state is not None:
            return state
        # Copy the seed exactly like the reference path does: the copy's
        # iteration order is the canonical member order both paths share.
        members = set(seed)
        value = self.evaluator.value(members)
        seed_connected = len(members) <= 1 or (
            self.graph.is_connected_subset(members)
        )
        comp = self._compiled
        index_of = comp.index_of
        # Same member iteration order as the reference path (a copy of the
        # same seed set) so the frontier fills in the same sequence.
        member_indices = tuple(index_of[node] for node in members)
        member_set = set(member_indices)
        frontier: list[int] = []
        if self.problem.connected:
            allowed = self._allowed_mask
            row_targets = comp.row_targets
            seen = set(member_set)
            for index in member_indices:
                for other in row_targets[index]:
                    if other not in seen and allowed[other]:
                        seen.add(other)
                        frontier.append(other)
        else:
            # WASO-dis: every remaining allowed node is selectable;
            # populated once, in the reference path's set order.
            for node in self._allowed:
                other = index_of[node]
                if other not in member_set:
                    frontier.append(other)
        state = (value, seed_connected, member_indices, tuple(frontier))
        self._seed_cache[key] = state
        return state

    def _draw_fast(
        self,
        seed_state: tuple,
        rng: random.Random,
        weight_of: Optional[Callable[[NodeId], float]],
        weight_array: "Optional[Sequence[float]]",
        greedy_bias: bool,
    ) -> Optional[Sample]:
        problem = self.problem
        k = problem.k
        current, seed_connected, seed_indices, seed_frontier = seed_state
        if len(seed_indices) > k:
            return None

        comp = self._compiled
        row_edges = comp.row_edges
        weighted_interest = comp.weighted_interest
        nodes = comp.nodes
        allowed = self._allowed_mask
        status = self._status
        self._draw_serial += 1
        frontier_token = 2 * self._draw_serial
        member_token = frontier_token + 1
        connected = problem.connected

        member_indices = list(seed_indices)
        for index in member_indices:
            status[index] = member_token
        frontier = list(seed_frontier)
        for index in frontier:
            status[index] = frontier_token

        count = len(member_indices)
        # random.Random.randrange(n) is a validation wrapper around
        # _randbelow(n); calling the latter directly consumes the identical
        # random stream (so reference/fast runs stay bit-identical) while
        # skipping the per-call argument checks.
        randbelow = getattr(rng, "_randbelow", rng.randrange)
        append = frontier.append
        uniform = (
            weight_of is None and weight_array is None and not greedy_bias
        )
        check_allowed = self._check_allowed
        while count < k:
            if not frontier:
                return None
            if uniform:
                pick = randbelow(len(frontier))
            elif weight_array is not None:
                # CBAS-ND's array-backed vector: the frontier already
                # holds compiled ids, so each weight is one list index.
                pick = pick_from_array(rng, frontier, weight_array)
            elif weight_of is not None:
                weights = [weight_of(nodes[index]) for index in frontier]
                pick = weighted_pick(rng, frontier, weights)
            else:
                weights = []
                for index in frontier:
                    delta = weighted_interest[index]
                    for other, pair in row_edges[index]:
                        if status[other] == member_token:
                            delta += pair
                    weights.append(max(0.0, current + delta))
                pick = weighted_pick(rng, frontier, weights)
            index = frontier[pick]
            # Swap-pop keeps the uniform draw O(1).
            frontier[pick] = frontier[-1]
            frontier.pop()
            status[index] = member_token
            member_indices.append(index)
            count += 1

            # One merged pass over the new member's row: accumulate the
            # willingness delta from member neighbours and push fresh
            # allowed neighbours onto the frontier.  Branch order favours
            # the common untouched-neighbour case.
            delta = weighted_interest[index]
            if connected:
                if check_allowed:
                    for other, pair in row_edges[index]:
                        state = status[other]
                        if state < frontier_token:
                            if allowed[other]:
                                status[other] = frontier_token
                                append(other)
                        elif state == member_token:
                            delta += pair
                else:
                    for other, pair in row_edges[index]:
                        state = status[other]
                        if state < frontier_token:
                            status[other] = frontier_token
                            append(other)
                        elif state == member_token:
                            delta += pair
            else:
                for other, pair in row_edges[index]:
                    if status[other] == member_token:
                        delta += pair
            current += delta

        group = frozenset(map(nodes.__getitem__, member_indices))
        if connected and not seed_connected:
            # A connected expansion of a connected seed stays connected;
            # only a disconnected seed needs the per-draw bridge check.
            if not self.graph.is_connected_subset(group):
                return None
        return Sample(
            members=group,
            willingness=current,
            indices=tuple(member_indices),
        )

    # ------------------------------------------------------------------
    def _extend_frontier(
        self,
        new_members: Iterable[NodeId],
        members: set[NodeId],
        frontier: list[NodeId],
        in_frontier: set[NodeId],
    ) -> None:
        if self.problem.connected:
            for member in new_members:
                for neighbour in self.graph.neighbors(member):
                    if (
                        neighbour not in members
                        and neighbour not in in_frontier
                        and neighbour in self._allowed
                    ):
                        in_frontier.add(neighbour)
                        frontier.append(neighbour)
        elif not frontier and not in_frontier:
            # WASO-dis: every remaining allowed node is always selectable;
            # populate once.
            for node in self._allowed:
                if node not in members:
                    in_frontier.add(node)
                    frontier.append(node)

    def _pick_index(
        self,
        frontier: list[NodeId],
        members: set[NodeId],
        current: float,
        rng: random.Random,
        weight_of: Optional[Callable[[NodeId], float]],
        greedy_bias: bool,
    ) -> int:
        if weight_of is not None:
            weights = [weight_of(node) for node in frontier]
            return weighted_pick(rng, frontier, weights)
        if greedy_bias:
            weights = [
                max(
                    0.0,
                    current + self.evaluator.add_delta(node, members),
                )
                for node in frontier
            ]
            return weighted_pick(rng, frontier, weights)
        return rng.randrange(len(frontier))
