"""Random expansion of partial solutions — the engine of every
randomized WASO solver.

A *sample* starts from a seed (a start node, plus any required attendees),
keeps a frontier of selectable neighbours, and repeatedly draws one
frontier node until ``k`` nodes are collected (paper §3).  The three
solvers differ only in *how* the draw is biased:

* CBAS — uniform over the frontier;
* RGreedy — probability proportional to the willingness of the group the
  node would create, ``P(v|S) ∝ W({v} ∪ S)`` (§4.1);
* CBAS-ND — probability proportional to the cross-entropy node-selection
  probability vector (§4.2).

Willingness is maintained incrementally (O(deg) per step), which is exactly
why the paper calls the uniform variant cheaper than greedy: no willingness
computation is needed *during* selection, only one delta after it.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Optional

from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.social_graph import NodeId

__all__ = [
    "Sample",
    "ExpansionSampler",
    "weighted_pick",
    "seed_for_start",
]


@dataclass(frozen=True)
class Sample:
    """One complete k-node candidate group drawn by a sampler."""

    members: frozenset
    willingness: float


def weighted_pick(
    rng: random.Random, items: list, weights: list[float]
) -> int:
    """Pick an index with probability proportional to ``weights``.

    Non-positive weights are treated as zero; if every weight is zero the
    pick degrades to uniform (keeps samplers alive when a probability
    vector collapses).
    """
    total = 0.0
    for weight in weights:
        if weight > 0.0:
            total += weight
    if total <= 0.0:
        return rng.randrange(len(items))
    threshold = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        if weight > 0.0:
            cumulative += weight
            if cumulative >= threshold:
                return index
    return len(items) - 1  # numerical tail guard


def seed_for_start(problem: WASOProblem, start: NodeId) -> set[NodeId]:
    """Seed member set for an expansion beginning at ``start``.

    Required attendees are always part of the seed (the user-study
    "with initiator" mode and the future-work must-include feature).
    """
    return {start} | set(problem.required)


class ExpansionSampler:
    """Draws complete samples for one problem instance.

    Parameters
    ----------
    problem:
        The WASO instance (its ``connected`` flag decides whether the
        frontier is the neighbourhood of the partial solution or simply
        every remaining allowed node — the WASO-dis case).
    evaluator:
        Shared willingness evaluator (built once per solve).
    """

    def __init__(
        self, problem: WASOProblem, evaluator: WillingnessEvaluator
    ) -> None:
        self.problem = problem
        self.evaluator = evaluator
        self.graph = problem.graph
        self._allowed = set(problem.candidates())

    # ------------------------------------------------------------------
    def draw(
        self,
        seed: set[NodeId],
        rng: random.Random,
        weight_of: Optional[Callable[[NodeId], float]] = None,
        greedy_bias: bool = False,
    ) -> Optional[Sample]:
        """Expand ``seed`` to ``k`` members; ``None`` if the expansion stalls.

        ``weight_of`` biases the frontier draw by a static per-node weight
        (CBAS-ND's probability vector).  ``greedy_bias`` biases it by the
        willingness of the resulting group (RGreedy); the two are mutually
        exclusive.
        """
        if weight_of is not None and greedy_bias:
            raise ValueError("weight_of and greedy_bias are mutually exclusive")
        k = self.problem.k
        members = set(seed)
        if len(members) > k:
            return None
        current = self.evaluator.value(members)

        frontier: list[NodeId] = []
        in_frontier: set[NodeId] = set()
        self._extend_frontier(members, members, frontier, in_frontier)

        while len(members) < k:
            if not frontier:
                return None
            index = self._pick_index(
                frontier, members, current, rng, weight_of, greedy_bias
            )
            node = frontier[index]
            # Swap-pop keeps the uniform draw O(1).
            frontier[index] = frontier[-1]
            frontier.pop()
            current += self.evaluator.add_delta(node, members)
            members.add(node)
            self._extend_frontier({node}, members, frontier, in_frontier)

        if self.problem.connected and not self.graph.is_connected_subset(
            members
        ):
            # Only possible when the seed itself was disconnected and the
            # expansion failed to bridge it.
            return None
        return Sample(members=frozenset(members), willingness=current)

    # ------------------------------------------------------------------
    def _extend_frontier(
        self,
        new_members: Iterable[NodeId],
        members: set[NodeId],
        frontier: list[NodeId],
        in_frontier: set[NodeId],
    ) -> None:
        if self.problem.connected:
            for member in new_members:
                for neighbour in self.graph.neighbors(member):
                    if (
                        neighbour not in members
                        and neighbour not in in_frontier
                        and neighbour in self._allowed
                    ):
                        in_frontier.add(neighbour)
                        frontier.append(neighbour)
        elif not frontier and not in_frontier:
            # WASO-dis: every remaining allowed node is always selectable;
            # populate once.
            for node in self._allowed:
                if node not in members:
                    in_frontier.add(node)
                    frontier.append(node)

    def _pick_index(
        self,
        frontier: list[NodeId],
        members: set[NodeId],
        current: float,
        rng: random.Random,
        weight_of: Optional[Callable[[NodeId], float]],
        greedy_bias: bool,
    ) -> int:
        if weight_of is not None:
            weights = [weight_of(node) for node in frontier]
            return weighted_pick(rng, frontier, weights)
        if greedy_bias:
            weights = [
                max(
                    0.0,
                    current + self.evaluator.add_delta(node, members),
                )
                for node in frontier
            ]
            return weighted_pick(rng, frontier, weights)
        return rng.randrange(len(frontier))
