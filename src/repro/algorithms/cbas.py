"""CBAS — Computational Budget Allocation for Start nodes (paper §3).

Phase 1 selects ``m`` start nodes by node potential; phase 2 runs ``r``
stages, each of which (a) apportions the stage budget ``T/r`` across the
surviving start nodes with the OCBA rule of Theorem 3 and (b) expands each
funded start node that many times by *uniform* random frontier selection.
Start nodes whose allocation drops to zero are pruned from later stages.

The solution quality is the maximum willingness over all samples
(Definition 1); Theorem 5 gives the approximation guarantee
``E[Q] ≥ N_b · (1/(N_b+1))^{(N_b+1)/N_b} · Q*``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.algorithms.base import Solver, SolveResult, SolveStats
from repro.algorithms.sampling import ExpansionSampler, Sample, seed_for_start
from repro.algorithms.start_nodes import default_start_count, select_start_nodes
from repro.budget.ocba import (
    StartNodeStats,
    apportion,
    gaussian_weights,
    uniform_weights,
)
from repro.budget.stages import plan_stages
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
    evaluator_for,
    validate_engine,
)
from repro.exceptions import BudgetExhaustedError

__all__ = ["CBAS"]

#: A start node whose expansions keep failing (its component is smaller
#: than k) is written off after this many consecutive failures.
_MAX_CONSECUTIVE_FAILURES = 5


class CBAS(Solver):
    """Randomized solver with OCBA budget allocation across start nodes.

    Parameters
    ----------
    budget:
        Total computational budget ``T`` (number of complete samples).
    m:
        Number of start nodes (default: the paper's ``⌈n/k⌉``).
    stages:
        Number of allocation stages ``r`` (default: the paper's bound via
        :func:`repro.budget.stages.plan_stages` with ``P_b``/``α`` below).
    pb, alpha:
        Confidence and closeness-ratio parameters used only to derive the
        default ``stages``.
    engine:
        ``"compiled"`` (default) runs sampling on the flat-array
        :class:`~repro.graph.compiled.CompiledGraph` index;
        ``"reference"`` keeps the dict-based path.  Seeded results are
        identical on both engines.
    """

    name = "cbas"

    def __init__(
        self,
        budget: int = 200,
        m: Optional[int] = None,
        stages: Optional[int] = None,
        pb: float = 0.7,
        alpha: float = 0.9,
        allocation: str = "uniform",
        start_selection: str = "potential",
        engine: str = "compiled",
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if m is not None and m < 1:
            raise ValueError(f"m must be positive, got {m}")
        if stages is not None and stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        if allocation not in ("uniform", "gaussian"):
            raise ValueError(
                f"allocation must be 'uniform' or 'gaussian', got {allocation!r}"
            )
        if start_selection not in ("potential", "random"):
            raise ValueError(
                "start_selection must be 'potential' or 'random', "
                f"got {start_selection!r}"
            )
        self.budget = budget
        self.m = m
        self.stages = stages
        self.pb = pb
        self.alpha = alpha
        self.allocation = allocation
        self.start_selection = start_selection
        self.engine = validate_engine(engine)

    # ------------------------------------------------------------------
    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = evaluator_for(problem.graph, self.engine)
        sampler = ExpansionSampler(problem, evaluator)
        m = self.m if self.m is not None else default_start_count(problem)
        if self.start_selection == "random":
            starts = self._random_starts(problem, m, rng)
        else:
            starts = select_start_nodes(problem, evaluator, m)
        stage_total = self._stage_count(problem, len(starts))

        node_stats = [StartNodeStats(node=start) for start in starts]
        failures = [0] * len(starts)
        stats = SolveStats()
        best_sample: Optional[Sample] = None
        self._prepare(problem, starts, evaluator)
        self._prune_undersized_components(problem, starts, node_stats, stats)

        per_stage = max(1, self.budget // stage_total)
        for stage in range(stage_total):
            stats.stages += 1
            if stage == 0:
                # Zero weight for starts pruned up front (sub-k components)
                # so their stage-0 share is redirected, not discarded.
                shares = apportion(
                    [0.0 if stat.pruned else 1.0 for stat in node_stats],
                    per_stage,
                )
            else:
                if self.allocation == "gaussian":
                    weights = gaussian_weights(node_stats)
                else:
                    weights = uniform_weights(node_stats)
                for index, weight in enumerate(weights):
                    if weight <= 0.0:
                        node_stats[index].pruned = True
                shares = apportion(weights, per_stage)

            for index, share in enumerate(shares):
                if share == 0 or node_stats[index].pruned:
                    continue
                seed = seed_for_start(problem, starts[index])
                stage_samples: list[Sample] = []
                for _ in range(share):
                    sample = self._draw(sampler, seed, rng, index)
                    stats.samples_drawn += 1
                    if sample is None:
                        stats.failed_samples += 1
                        failures[index] += 1
                        if failures[index] >= _MAX_CONSECUTIVE_FAILURES:
                            node_stats[index].pruned = True
                            break
                        continue
                    failures[index] = 0
                    node_stats[index].record(sample.willingness)
                    stage_samples.append(sample)
                    if (
                        best_sample is None
                        or sample.willingness > best_sample.willingness
                    ):
                        best_sample = sample
                self._after_start_stage(index, stage_samples, stats)

            stats.extra.setdefault("stage_best", []).append(
                best_sample.willingness if best_sample is not None else None
            )
            if all(stat.pruned for stat in node_stats):
                break

        if best_sample is None:
            raise BudgetExhaustedError(
                "CBAS drew no feasible sample within its budget"
            )
        stats.extra["start_nodes"] = len(starts)
        stats.extra["pruned_start_nodes"] = sum(
            1 for stat in node_stats if stat.pruned
        )
        solution = GroupSolution(
            members=best_sample.members, willingness=best_sample.willingness
        )
        return SolveResult(solution=solution, stats=stats)

    # ------------------------------------------------------------------
    def _prune_undersized_components(
        self,
        problem: WASOProblem,
        starts: list,
        node_stats: list[StartNodeStats],
        stats: SolveStats,
    ) -> None:
        """Write off start nodes whose component cannot hold ``k`` members.

        Every expansion from such a start is doomed; pruning them up front
        redirects their budget instead of burning it on
        ``_MAX_CONSECUTIVE_FAILURES`` stalls per start.
        """
        if not problem.connected:
            return
        if self.engine == "compiled" and not problem.forbidden:
            # No forbidden nodes: allowed-induced components equal the
            # graph's components, which the frozen index already labelled.
            compiled = problem.compiled()
            by_index = compiled.component_size_by_index()
            index_of = compiled.index_of
            sizes = {start: by_index[index_of[start]] for start in starts}
        else:
            sizes = problem.allowed_component_sizes()
        skipped = 0
        for index, start in enumerate(starts):
            if sizes.get(start, 0) < problem.k:
                node_stats[index].pruned = True
                skipped += 1
        if skipped:
            stats.extra["skipped_small_components"] = skipped

    # ------------------------------------------------------------------
    # Hooks overridden by CBAS-ND
    # ------------------------------------------------------------------
    def _prepare(
        self,
        problem: WASOProblem,
        starts: list,
        evaluator: "WillingnessEvaluator | FastWillingnessEvaluator",
    ) -> None:
        """Per-solve setup hook (CBAS-ND builds its probability vectors)."""

    def _draw(
        self,
        sampler: ExpansionSampler,
        seed: set,
        rng: random.Random,
        start_index: int,
    ) -> Optional[Sample]:
        """One expansion; CBAS uses the uniform frontier draw."""
        return sampler.draw(seed, rng)

    def _after_start_stage(
        self,
        start_index: int,
        samples: list[Sample],
        stats: SolveStats,
    ) -> None:
        """Called after each start node's draws in a stage (CE update)."""

    def _random_starts(
        self, problem: WASOProblem, m: int, rng: random.Random
    ) -> list:
        """Ablation mode: start nodes drawn uniformly (required first)."""
        required = list(problem.required)
        pool = [n for n in problem.candidates() if n not in problem.required]
        extra = rng.sample(pool, min(max(0, m - len(required)), len(pool)))
        return (required + extra)[: max(1, m)]

    def _stage_count(self, problem: WASOProblem, m: int) -> int:
        if self.stages is not None:
            return self.stages
        return plan_stages(
            self.budget,
            n=problem.graph.number_of_nodes(),
            k=problem.k,
            m=m,
            pb=self.pb,
            alpha=self.alpha,
        )
