"""CBAS — Computational Budget Allocation for Start nodes (paper §3).

Phase 1 selects ``m`` start nodes by node potential; phase 2 runs ``r``
stages, each of which (a) apportions the stage budget ``T/r`` across the
surviving start nodes with the OCBA rule of Theorem 3 and (b) expands each
funded start node that many times by *uniform* random frontier selection.
Start nodes whose allocation drops to zero are pruned from later stages.

The solution quality is the maximum willingness over all samples
(Definition 1); Theorem 5 gives the approximation guarantee
``E[Q] ≥ N_b · (1/(N_b+1))^{(N_b+1)/N_b} · Q*``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.algorithms.base import ContextSolver, SolveResult, SolveStats
from repro.algorithms.sampling import ExpansionSampler, Sample
from repro.algorithms.stage_exec import (
    MAX_CONSECUTIVE_FAILURES,
    SerialStageExecutor,
    StageContext,
    StageExecutor,
)
from repro.algorithms.start_nodes import default_start_count, select_start_nodes
from repro.budget.ocba import (
    StartNodeStats,
    apportion,
    gaussian_weights,
    uniform_weights,
)
from repro.budget.stages import plan_stages
from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
)
from repro.exceptions import BudgetExhaustedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["CBAS", "CBASWarmState"]

#: Historical alias — the write-off cap now lives with the stage
#: execution strategies (serial and sharded runs share one policy).
_MAX_CONSECUTIVE_FAILURES = MAX_CONSECUTIVE_FAILURES

#: Historical alias — executor selection now lives on the
#: :class:`~repro.runtime.context.ExecutionContext`; this instance only
#: backs old call sites that import it directly.
_SERIAL_EXECUTOR = SerialStageExecutor()


@dataclass
class CBASWarmState:
    """Reusable cross-solve state for §4.4.1 online re-planning.

    After every solve a :class:`CBAS` (or subclass) exports one of these
    as ``solver.last_warm_state``; installing it as ``solver.warm_state``
    before the next solve on the *same graph* skips the phase-1 start
    ranking (the paper: "the start nodes of phase 1 need not be
    recomputed") and, for CBAS-ND, carries the surviving cross-entropy
    vectors forward instead of resetting them to the homogeneous prior.
    The frozen compiled index is reused automatically — it is cached on
    the shared graph — so a warm re-plan never re-freezes.
    """

    #: Phase-1 start nodes in ranked order (required nodes first).
    starts: list = field(default_factory=list)
    #: CBAS-ND only: start node -> its SelectionProbabilities vector.
    vectors: dict = field(default_factory=dict)
    #: Identity + mutation stamp of the graph this state was earned on;
    #: vectors are only reused when it still matches (both engines drop
    #: them in lockstep, keeping seeded runs engine-identical).
    graph_state: "tuple | None" = None


class CBAS(ContextSolver):
    """Randomized solver with OCBA budget allocation across start nodes.

    Parameters
    ----------
    budget:
        Total computational budget ``T`` (number of complete samples).
    m:
        Number of start nodes (default: the paper's ``⌈n/k⌉``).
    stages:
        Number of allocation stages ``r`` (default: the paper's bound via
        :func:`repro.budget.stages.plan_stages` with ``P_b``/``α`` below).
    pb, alpha:
        Confidence and closeness-ratio parameters used only to derive the
        default ``stages``.
    engine:
        Deprecated shim — prefer configuring the ``context``.
        ``"compiled"`` runs sampling on the flat-array
        :class:`~repro.graph.compiled.CompiledGraph` index;
        ``"reference"`` keeps the dict-based path.  Seeded results are
        identical on both engines.  ``None`` (the default) inherits the
        context's engine (itself defaulting to ``"compiled"``).
    executor:
        Deprecated shim — prefer the context's mode routing.  An
        explicit :class:`~repro.algorithms.stage_exec.StageExecutor`
        pins the stage strategy for every solve, bypassing the context.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` this solver
        executes through (engine, stage-executor routing, worker pools).
        Without one the solver gets a private serial context — the
        historical in-process behaviour, bit for bit.
    """

    name = "cbas"

    def __init__(
        self,
        budget: int = 200,
        m: Optional[int] = None,
        stages: Optional[int] = None,
        pb: float = 0.7,
        alpha: float = 0.9,
        allocation: str = "uniform",
        start_selection: str = "potential",
        engine: Optional[str] = None,
        executor: Optional[StageExecutor] = None,
        context: "Optional[ExecutionContext]" = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if m is not None and m < 1:
            raise ValueError(f"m must be positive, got {m}")
        if stages is not None and stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        if allocation not in ("uniform", "gaussian"):
            raise ValueError(
                f"allocation must be 'uniform' or 'gaussian', got {allocation!r}"
            )
        if start_selection not in ("potential", "random"):
            raise ValueError(
                "start_selection must be 'potential' or 'random', "
                f"got {start_selection!r}"
            )
        self.budget = budget
        self.m = m
        self.stages = stages
        self.pb = pb
        self.alpha = alpha
        self.allocation = allocation
        self.start_selection = start_selection
        self._init_context(engine, context)
        self.executor = executor
        #: Install a :class:`CBASWarmState` here (online re-planning) to
        #: reuse phase-1 starts / CE vectors; cleared by the caller, not
        #: by the solver, so one state can serve several re-plans.
        self.warm_state: Optional[CBASWarmState] = None
        #: Exported after every solve; feed back via ``warm_state``.
        self.last_warm_state: Optional[CBASWarmState] = None

    # ------------------------------------------------------------------
    def _solve(self, problem: WASOProblem, rng: random.Random) -> SolveResult:
        evaluator = self.context.evaluator_for(problem, self.engine)
        sampler = ExpansionSampler(problem, evaluator)
        m = self.m if self.m is not None else default_start_count(problem)
        warm = self.warm_state
        starts = (
            self._warm_start_nodes(problem, warm, m)
            if warm is not None
            else []
        )
        warm_used = bool(starts)
        if not starts:
            if self.start_selection == "random":
                starts = self._random_starts(problem, m, rng)
            else:
                starts = select_start_nodes(problem, evaluator, m)
        stage_total = self._stage_count(problem, len(starts))

        node_stats = [StartNodeStats(node=start) for start in starts]
        failures = [0] * len(starts)
        stats = SolveStats()
        best_sample: Optional[Sample] = None
        self._prepare(problem, starts, evaluator)
        self._prune_undersized_components(problem, starts, node_stats, stats)
        if warm_used and all(stat.pruned for stat in node_stats):
            # Declines can shrink the previous solution's region below k
            # while another component stays viable: every reused start
            # just got written off, so fall back to a cold ranking
            # instead of burning the whole budget on zero draws.
            warm_used = False
            if self.start_selection == "random":
                starts = self._random_starts(problem, m, rng)
            else:
                starts = select_start_nodes(problem, evaluator, m)
            stage_total = self._stage_count(problem, len(starts))
            node_stats = [StartNodeStats(node=start) for start in starts]
            failures = [0] * len(starts)
            self._prepare(problem, starts, evaluator)
            self._prune_undersized_components(
                problem, starts, node_stats, stats
            )

        # Explicit executor (deprecated kwarg) wins; otherwise the context
        # routes — serial by default, stage-sharded when its cost model
        # (or a forced mode) says this solve is worth sharding.
        executor = self.executor
        if executor is None:
            executor = self.context.executor_for(self, problem)
        context = StageContext(
            solver=self,
            problem=problem,
            sampler=sampler,
            rng=rng,
            starts=starts,
            node_stats=node_stats,
            failures=failures,
            stats=stats,
            best_sample=best_sample,
        )
        per_stage = max(1, self.budget // stage_total)
        if sampler.is_vector:
            # The solve-level Philox base key is drawn here — after phase
            # 1, before any stage — so serial and stage-sharded vector
            # runs read it from the identical point of the seeded stream.
            sampler.vector_key = rng.getrandbits(64)
        executor.begin_solve(context)
        try:
            for stage in range(stage_total):
                stats.stages += 1
                if stage == 0:
                    # Zero weight for starts pruned up front (sub-k
                    # components) so their stage-0 share is redirected,
                    # not discarded.
                    shares = apportion(
                        [0.0 if stat.pruned else 1.0 for stat in node_stats],
                        per_stage,
                    )
                else:
                    if self.allocation == "gaussian":
                        weights = gaussian_weights(node_stats)
                    else:
                        weights = uniform_weights(node_stats)
                    for index, weight in enumerate(weights):
                        if weight <= 0.0:
                            node_stats[index].pruned = True
                    shares = apportion(weights, per_stage)

                executor.run_stage(context, shares)

                stats.extra.setdefault("stage_best", []).append(
                    context.best_sample.willingness
                    if context.best_sample is not None
                    else None
                )
                if all(stat.pruned for stat in node_stats):
                    break
        finally:
            executor.end_solve(context)
        best_sample = context.best_sample

        if best_sample is None:
            raise BudgetExhaustedError(
                "CBAS drew no feasible sample within its budget"
            )
        self.last_warm_state = self._export_warm_state(starts)
        self.last_warm_state.graph_state = self._graph_state(problem)
        if warm_used:
            stats.extra["warm_start"] = True
        stats.extra["start_nodes"] = len(starts)
        stats.extra["pruned_start_nodes"] = sum(
            1 for stat in node_stats if stat.pruned
        )
        # Vectorization accounting (satellite of the vector engine):
        # written only when non-zero so non-vector runs' stats stay
        # byte-identical to the historical output.
        batched = getattr(sampler, "vector_batch_draws", 0)
        if batched:
            stats.extra["vector_batch_draws"] = batched
        fallback = getattr(sampler, "vector_fallback_draws", 0)
        if fallback:
            stats.extra["vector_fallback_draws"] = fallback
        solution = GroupSolution(
            members=best_sample.members, willingness=best_sample.willingness
        )
        return SolveResult(solution=solution, stats=stats)

    # ------------------------------------------------------------------
    def _prune_undersized_components(
        self,
        problem: WASOProblem,
        starts: list,
        node_stats: list[StartNodeStats],
        stats: SolveStats,
    ) -> None:
        """Write off start nodes whose component cannot hold ``k`` members.

        Every expansion from such a start is doomed; pruning them up front
        redirects their budget instead of burning it on
        ``_MAX_CONSECUTIVE_FAILURES`` stalls per start.
        """
        if not problem.connected:
            return
        if self.engine in ("compiled", "vector") and not problem.forbidden:
            # No forbidden nodes: allowed-induced components equal the
            # graph's components, which the frozen index already labelled.
            compiled = problem.compiled()
            by_index = compiled.component_size_by_index()
            index_of = compiled.index_of
            sizes = {start: by_index[index_of[start]] for start in starts}
        else:
            sizes = problem.allowed_component_sizes()
        skipped = 0
        for index, start in enumerate(starts):
            if sizes.get(start, 0) < problem.k:
                node_stats[index].pruned = True
                skipped += 1
        if skipped:
            stats.extra["skipped_small_components"] = skipped

    # ------------------------------------------------------------------
    # Warm start (§4.4.1 online re-planning)
    # ------------------------------------------------------------------
    def _warm_start_nodes(
        self, problem: WASOProblem, warm: CBASWarmState, m: int
    ) -> list:
        """Reuse a previous solve's phase-1 start nodes.

        Required attendees (the online planner's confirmed set) are
        promoted to the front and the list is truncated to ``m`` — the
        same contract ``select_start_nodes`` honours, so replans keep the
        configured OCBA concentration instead of diluting the per-stage
        budget over an ever-growing start list.  Starts that have since
        become forbidden are dropped; an empty result makes the caller
        fall back to a cold start ranking.
        """
        chosen = list(problem.required)
        if len(chosen) >= m:
            return chosen[:m]
        taken = set(chosen)
        for start in warm.starts:
            if len(chosen) >= m:
                break
            if start not in taken and problem.is_candidate(start):
                taken.add(start)
                chosen.append(start)
        return chosen

    def _export_warm_state(self, starts: list) -> CBASWarmState:
        """Snapshot reusable state after a solve (CBAS-ND adds vectors)."""
        return CBASWarmState(starts=list(starts))

    @staticmethod
    def _graph_state(problem: WASOProblem) -> tuple:
        """Identity + mutation stamp of the problem's graph.

        A warm state whose stamp no longer matches was earned on a
        different (or since-mutated) graph; its vectors are then dropped
        on *both* engines — mirroring the compiled engine's behaviour,
        where any mutation produces a fresh freeze and a new ``index_of``
        object.
        """
        graph = problem.graph
        return (id(graph), getattr(graph, "_mutation_count", None))

    # ------------------------------------------------------------------
    # Hooks overridden by CBAS-ND
    # ------------------------------------------------------------------
    def _prepare(
        self,
        problem: WASOProblem,
        starts: list,
        evaluator: "WillingnessEvaluator | FastWillingnessEvaluator",
    ) -> None:
        """Per-solve setup hook (CBAS-ND builds its probability vectors)."""

    def _draw_batch(
        self,
        sampler: ExpansionSampler,
        seed: set,
        rng: random.Random,
        start_index: int,
        count: int,
        failures: int,
    ) -> list[Optional[Sample]]:
        """One start node's expansions for a stage; CBAS draws uniformly."""
        return sampler.draw_batch(
            seed,
            rng,
            count,
            failures=failures,
            max_failures=_MAX_CONSECUTIVE_FAILURES,
        )

    def _after_start_stage(
        self,
        start_index: int,
        samples: list[Sample],
        stats: SolveStats,
    ) -> None:
        """Called after each start node's draws in a stage (CE update)."""

    # ------------------------------------------------------------------
    # Shard-protocol hooks (stage-sharded execution; see stage_pool)
    # ------------------------------------------------------------------
    def _shard_mode(self) -> str:
        """How pool workers bias their frontier draws for this solver."""
        return "uniform"

    def _stage_weight_array(self, start_index: int) -> "list | None":
        """Per-start frontier weight row for the vector kernel's CE mode.

        ``None`` for uniform CBAS; CBAS-ND returns the start's
        probability array.
        """
        return None

    def _shard_keep_rank(self, share: int) -> int:
        """Samples each shard must retain, ranked by willingness.

        Uniform CBAS only needs the incumbent best back from a shard;
        CBAS-ND raises this to the elite retention rank ``⌈ρ·share⌉``.
        """
        return 1

    def _shard_initial_vectors(self) -> "list | None":
        """Per-start CE vector payloads for solve start (``None`` = none)."""
        return None

    def _merge_start_stage(
        self,
        start_index: int,
        successes: int,
        kept: "list[tuple[float, tuple[int, ...]]]",
        stats: SolveStats,
    ) -> "tuple | None":
        """Merge one start node's shard summaries (CE refit for CBAS-ND).

        ``kept`` concatenates the shards' candidate-elite samples in
        shard order.  Returns the vector-sync patch workers must replay
        before the next stage, or ``None`` when there is nothing to sync
        (uniform CBAS always; CBAS-ND when a stage produced no elites).
        """
        return None

    def _random_starts(
        self, problem: WASOProblem, m: int, rng: random.Random
    ) -> list:
        """Ablation mode: start nodes drawn uniformly (required first)."""
        required = list(problem.required)
        pool = [n for n in problem.candidates() if n not in problem.required]
        extra = rng.sample(pool, min(max(0, m - len(required)), len(pool)))
        return (required + extra)[: max(1, m)]

    def _stage_count(self, problem: WASOProblem, m: int) -> int:
        if self.stages is not None:
            return self.stages
        return plan_stages(
            self.budget,
            n=problem.graph.number_of_nodes(),
            k=problem.k,
            m=m,
            pb=self.pb,
            alpha=self.alpha,
        )
