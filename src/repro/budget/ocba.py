"""Budget-allocation rules across start nodes.

CBAS divides its total budget ``T`` into ``r`` stages; at each stage the
per-start-node share is proportional to the probability that the start
node's best sample could still overtake the incumbent best start node
``v_b``:

* **Uniform model** (paper §3.2, Theorem 3): sample willingness from start
  node ``v_i`` is treated as uniform on ``[c_i, d_i]`` (its observed worst /
  best), giving ``P(J*_i ≥ J*_b) ≤ ½·((d_i − c_b)/(d_b − c_b))^{N_b}`` and
  the allocation ratio ``N_i/N_j = ((d_i − c_b)/(d_j − c_b))^{N_b}``.
  Start nodes with ``d_i ≤ c_b`` are pruned (the probability is zero).
* **Gaussian model** (paper Appendix A, used by CBAS-ND-G): willingness is
  fitted as ``N(μ_i, σ_i²)`` and the overtake probability
  ``P(J*_b ≤ J*_i) = 1 − ∫ N_b Φ_b^{N_b−1} φ_b Φ_i^{N_i} dx`` is evaluated
  numerically (no closed form exists — the paper makes the same point).

All computations run in log space so large exponents ``N_b`` do not
underflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "StartNodeStats",
    "uniform_weights",
    "gaussian_weights",
    "gaussian_overtake_probability",
    "apportion",
]


@dataclass
class StartNodeStats:
    """Running sample statistics for one start node.

    ``c``/``d`` are the worst/best sampled willingness (the uniform model's
    support), ``n`` the budget consumed so far.  Mean and variance are
    maintained with Welford's algorithm for the Gaussian model.
    """

    node: object
    c: float = math.inf
    d: float = -math.inf
    n: int = 0
    pruned: bool = False
    _mean: float = 0.0
    _m2: float = 0.0

    def record(self, willingness: float) -> None:
        """Fold one sampled willingness into the statistics."""
        self.n += 1
        self.c = min(self.c, willingness)
        self.d = max(self.d, willingness)
        delta = willingness - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (willingness - self._mean)

    def merge_summary(
        self, count: int, low: float, high: float, mean: float, m2: float
    ) -> None:
        """Fold a pre-aggregated batch of samples into the statistics.

        Stage-sharded solves reduce each shard's samples to ``(count,
        min, max, mean, M2)`` in the worker and merge here.  ``c``/``d``/
        ``n`` — everything the default uniform model reads — merge
        exactly; the Gaussian model's moments use Chan et al.'s parallel
        Welford combination, which matches the serial accumulation up to
        floating-point association (merging into empty statistics is
        exact).
        """
        if count <= 0:
            return
        self.c = min(self.c, low)
        self.d = max(self.d, high)
        before = self.n
        total = before + count
        delta = mean - self._mean
        self._mean += delta * (count / total)
        self._m2 += m2 + delta * delta * (before * count / total)
        self.n = total

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.n - 1))

    @property
    def has_samples(self) -> bool:
        return self.n > 0


def _best_index(stats: list[StartNodeStats]) -> Optional[int]:
    """Index of the incumbent best start node ``v_b`` (highest ``d``)."""
    best: Optional[int] = None
    for index, stat in enumerate(stats):
        if stat.pruned or not stat.has_samples:
            continue
        if best is None or stat.d > stats[best].d:
            best = index
    return best


def uniform_weights(
    stats: list[StartNodeStats], exponent_cap: float = 500.0
) -> list[float]:
    """Relative budget weights under the uniform model (Theorem 3).

    Returns one non-negative weight per start node (zero = prune).  The
    incumbent best node gets weight 1; every other node gets
    ``½·((d_i − c_b)/(d_b − c_b))^{N_b}``, computed in log space and with
    the exponent capped at ``exponent_cap`` to avoid total collapse in
    pathological runs.
    """
    best = _best_index(stats)
    if best is None:
        return [0.0 if s.pruned else 1.0 for s in stats]
    c_b = stats[best].c
    d_b = stats[best].d
    spread = d_b - c_b
    n_b = min(float(max(1, stats[best].n)), exponent_cap)

    weights: list[float] = []
    for index, stat in enumerate(stats):
        if stat.pruned or not stat.has_samples:
            weights.append(0.0)
            continue
        if index == best:
            weights.append(1.0)
            continue
        if spread <= 0.0:
            # Degenerate incumbent (all samples equal): fall back to
            # comparing bests directly.
            weights.append(1.0 if stat.d >= d_b else 0.0)
            continue
        ratio = (stat.d - c_b) / spread
        if ratio <= 0.0:
            weights.append(0.0)  # Theorem 3: overtake probability is zero.
            continue
        ratio = min(ratio, 1.0)
        weights.append(0.5 * math.exp(n_b * math.log(ratio)))
    return weights


def gaussian_overtake_probability(
    mu_b: float,
    sigma_b: float,
    n_b: int,
    mu_i: float,
    sigma_i: float,
    n_i: int,
    grid_points: int = 400,
) -> float:
    """``P(J*_b ≤ J*_i)`` for Gaussian per-sample willingness.

    Evaluates ``1 − ∫ N_b Φ_b^{N_b−1} φ_b Φ_i^{N_i} dx`` on a trapezoid
    grid spanning ±8σ of the incumbent (Appendix A).  Degenerate standard
    deviations fall back to point-mass comparisons.
    """
    n_b = max(1, n_b)
    n_i = max(1, n_i)
    if sigma_b <= 0.0 and sigma_i <= 0.0:
        return 1.0 if mu_i >= mu_b else 0.0
    sigma_b = max(sigma_b, 1e-12)
    sigma_i = max(sigma_i, 1e-12)

    from scipy.stats import norm

    low = mu_b - 8.0 * sigma_b
    high = mu_b + 8.0 * sigma_b
    xs = np.linspace(low, high, grid_points)
    phi_b = norm.pdf(xs, loc=mu_b, scale=sigma_b)
    cdf_b = norm.cdf(xs, loc=mu_b, scale=sigma_b)
    cdf_i = norm.cdf(xs, loc=mu_i, scale=sigma_i)
    # Log-space power to survive large N.
    with np.errstate(divide="ignore"):
        log_term = (n_b - 1) * np.log(np.clip(cdf_b, 1e-300, 1.0)) + (
            n_i
        ) * np.log(np.clip(cdf_i, 1e-300, 1.0))
    integrand = n_b * phi_b * np.exp(log_term)
    prob_b_wins = float(np.trapezoid(integrand, xs))
    return float(min(1.0, max(0.0, 1.0 - prob_b_wins)))


def gaussian_weights(stats: list[StartNodeStats]) -> list[float]:
    """Relative budget weights under the Gaussian model (Appendix A)."""
    best = _best_index(stats)
    if best is None:
        return [0.0 if s.pruned else 1.0 for s in stats]
    incumbent = stats[best]
    weights: list[float] = []
    for index, stat in enumerate(stats):
        if stat.pruned or not stat.has_samples:
            weights.append(0.0)
        elif index == best:
            weights.append(1.0)
        else:
            weights.append(
                gaussian_overtake_probability(
                    incumbent.mean,
                    incumbent.std,
                    incumbent.n,
                    stat.mean,
                    stat.std,
                    stat.n,
                )
            )
    return weights


def apportion(weights: list[float], total: int) -> list[int]:
    """Split ``total`` integer budget units proportionally to ``weights``.

    Largest-remainder apportionment; guarantees the result sums to
    ``total`` and that any strictly-positive weight receives at least one
    unit when enough units exist (so no live start node starves outright).
    All-zero weights split the budget evenly.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    count = len(weights)
    if count == 0:
        return []
    mass = sum(w for w in weights if w > 0.0)
    if mass <= 0.0:
        base = total // count
        shares = [base] * count
        for index in range(total - base * count):
            shares[index] += 1
        return shares

    raw = [max(0.0, w) / mass * total for w in weights]
    shares = [int(math.floor(value)) for value in raw]
    remainders = [value - share for value, share in zip(raw, shares)]
    leftover = total - sum(shares)
    order = sorted(range(count), key=lambda i: remainders[i], reverse=True)
    for index in order[:leftover]:
        shares[index] += 1

    # Keep every live start node minimally funded when budget allows.
    if total >= sum(1 for w in weights if w > 0.0):
        starving = [i for i, w in enumerate(weights) if w > 0.0 and shares[i] == 0]
        for needy in starving:
            donor = max(range(count), key=lambda i: shares[i])
            if shares[donor] > 1:
                shares[donor] -= 1
                shares[needy] += 1
    return shares
