"""Stage planning for the multi-stage budget allocation.

The paper's pseudo-code (Algorithms 1–2) derives the first-stage budget
``T₁`` and the number of stages ``r`` from the requested confidence ``P_b``
(the probability that the identified best start node really is best) and
the closeness ratio ``α``:

* ``T₁ = ⌈ m · ln(2(1 − P_b)/(m − 1)) / ln α ⌉``
* Example 1 bounds the stage count by
  ``r ≤ T·k·ln α / (n · ln(2(1 − P_b)/(n/k − 1)))``.

Both expressions are defined only when their logarithms are negative
(``P_b`` close to 1, ``α < 1``); the helpers below guard the domains and
clamp the results into practical ranges so callers can always pass the
paper's defaults (``P_b = 0.7``, ``α = 0.9``) — or, like the experiments in
§5, simply fix ``T`` and ``r`` directly.
"""

from __future__ import annotations

import math

__all__ = ["initial_budget", "plan_stages"]


def initial_budget(m: int, pb: float = 0.7, alpha: float = 0.9) -> int:
    """First-stage budget ``T₁`` (pseudo-code line 4).

    Returns at least ``m`` so that every start node can draw one sample.
    """
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    if not 0.0 < pb < 1.0:
        raise ValueError(f"pb must lie in (0, 1), got {pb}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if m == 1:
        return 1
    argument = 2.0 * (1.0 - pb) / (m - 1)
    if argument >= 1.0:
        # Confidence already achieved with one sample per start node.
        return m
    budget = math.ceil(m * math.log(argument) / math.log(alpha))
    return max(m, budget)


def plan_stages(
    total_budget: int,
    n: int,
    k: int,
    m: int,
    pb: float = 0.7,
    alpha: float = 0.9,
    max_stages: int = 10,
) -> int:
    """Number of allocation stages ``r`` (Example 1's bound).

    ``r ≤ T·k·ln α / (n · ln(2(1 − P_b)/(n/k − 1)))``, clamped to
    ``[1, max_stages]`` and to at most one stage per ``m`` budget units so
    every stage can fund every live start node at least once.
    """
    if total_budget < 1:
        raise ValueError(f"total_budget must be positive, got {total_budget}")
    if k < 1 or n < k:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")

    upper = max_stages
    ratio = n / k - 1.0
    if ratio > 0.0:
        argument = 2.0 * (1.0 - pb) / ratio
        if 0.0 < argument < 1.0:
            bound = total_budget * k * math.log(alpha) / (
                n * math.log(argument)
            )
            if bound >= 1.0:
                upper = min(upper, int(bound))
    upper = min(upper, max(1, total_budget // max(1, m)))
    return max(1, upper)
