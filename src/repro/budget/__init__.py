"""Optimal Computing Budget Allocation (OCBA) machinery for CBAS.

Implements the paper's Theorem-3 allocation ratio for uniformly distributed
sample willingness, the Appendix-A Gaussian variant (numeric integration),
and the stage-planning formulas from the pseudo-code (T₁ and r).
"""

from repro.budget.ocba import (
    StartNodeStats,
    apportion,
    gaussian_overtake_probability,
    gaussian_weights,
    uniform_weights,
)
from repro.budget.stages import initial_budget, plan_stages

__all__ = [
    "StartNodeStats",
    "uniform_weights",
    "gaussian_weights",
    "gaussian_overtake_probability",
    "apportion",
    "initial_budget",
    "plan_stages",
]
