"""The overload-safe serving daemon: WASO planning as a *process*.

``ExecutionContext.solve_many`` is a batch call; a production system for
millions of users is a long-lived process that strangers throw traffic
at.  :class:`ServingDaemon` is that process, built entirely from the
stdlib ``asyncio`` server on top of the self-healing runtime:

* **wire protocol** — newline-delimited JSON over TCP.  Each request
  line is a ``solve-many`` spec (see :func:`~repro.runtime.requests.
  request_from_spec`) plus the daemon-level keys ``id`` (echoed on the
  reply; defaults to the line number), ``tenant`` (which registered
  graph to plan over), and ``slo_s`` (latency objective; the daemon
  picks the budget — see below).  Replies stream back *in completion
  order*, tagged with the request's ``id``, one JSON object per line.
  A line with ``"kind": "mutate"`` carries no solve spec but a
  ``deltas`` list (``["add_node", ...]`` / ``["add_edge", ...]`` /
  ``["set_tightness", ...]`` / ``["remove_edge", ...]`` records, see
  :meth:`~repro.graph.compiled.CompiledGraph.apply_deltas`): the
  tenant's graph is patched **between batches at the dispatch
  boundary** — never under a solve in flight — and because the patch
  preserves the payload token and bumps the index generation, warm
  pool workers are refreshed by a sparse ``graph_patch`` record on
  the next batch instead of a full re-install.  The same port answers
  plain HTTP ``GET /healthz`` / ``/readyz`` / ``/metrics`` for probes.

* **admission control** (:mod:`repro.serving.admission`) — a bounded
  queue with typed ``kind="shed"`` / ``kind="queue_timeout"``
  rejections, per-tenant in-flight limits, and dispatch-boundary
  deadline sweeps.  Backpressure is explicit and immediate: the daemon
  never buffers beyond its bound, never leaves a connection hanging
  without a reply, and which requests are shed under a fixed arrival
  script is deterministic.

* **SLO-inverted routing** (:mod:`repro.serving.slo`) — a request may
  carry ``slo_s`` instead of ``budget``: the daemon buys the largest
  budget its online-calibrated work-rate model predicts will fit the
  SLO, and stamps the whole contract (``slo_s`` / ``slo_budget`` /
  ``slo_promised_s`` / ``slo_achieved_s``) into the reply's ``extra``.
  Every completed solve — SLO-routed or not — feeds the calibration.

* **dispatch** — one batching loop drains the queue into
  ``context.solve_many`` on a worker thread (the context is not
  thread-safe; the single loop serializes it), so concurrent tenants'
  requests coalesce into resident-pool batches: each graph's arrays
  ship to each pool worker at most once per session, however many
  tenants multiplex over it.

* **self-healing + graceful degradation** — worker crashes, retries,
  and deadlines are the runtime's problem (PR 6) and stay invisible in
  results; if a pool exhausts its retry budget the context degrades to
  in-parent serial and the daemon *keeps serving* (slower, alive),
  reporting ``"degraded"`` on ``/healthz``.

* **graceful lifecycle** — :meth:`ServingDaemon.shutdown` stops
  accepting, sheds new arrivals, drains the queue (every admitted
  request gets its reply), flushes connections, and tears down the
  pools — no orphan processes, no hung clients.

Chaos plans (:class:`~repro.parallel.faults.FaultPlan`) target the
daemon end to end: worker kills/drops/delays are installed on the
context's pools and fire underneath served batches, and queue ``stalls``
hold the dispatch loop to force deterministic shed/timeout scenarios —
the chaos suite in ``tests/test_serving.py`` proves seeded results
served through the daemon are bit-identical to direct ``solve_many``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import weakref
from collections import deque
from typing import Optional

from repro.exceptions import BatchExecutionError, ReproError, RequestFailure
from repro.graph.io import resolve_graph_source
from repro.graph.social_graph import SocialGraph
from repro.runtime import ExecutionContext, request_from_spec, valid_spec_keys
from repro.serving.admission import AdmissionController, PendingRequest
from repro.serving.slo import LatencyCalibrator

__all__ = ["ServingDaemon", "run_daemon"]

#: Spec keys consumed by the daemon before the runtime sees the spec.
_DAEMON_KEYS = ("id", "tenant", "slo_s")


def _json_line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


#: Daemons with live sockets, so forked pool workers can disown them.
#:
#: The resident pools fork their workers *while the daemon is serving*
#: — lazily on the first pool-routed batch, and again on every
#: crash-respawn — and a forked child inherits every open file
#: descriptor, including the listening socket and the live client
#: connections.  A kernel socket stays open until the *last* process
#: holding it closes, so an inherited connection fd means the daemon's
#: ``close()`` never reaches the client as EOF while a pool worker is
#: alive.  The ``os.register_at_fork`` hook below closes the daemon's
#: tracked fds in every forked child, restoring single-owner semantics.
_LIVE_DAEMONS: "weakref.WeakSet[ServingDaemon]" = weakref.WeakSet()
_AT_FORK_INSTALLED = False


def _disown_daemon_sockets() -> None:
    """Close (in a forked child) every live daemon's socket fds."""
    for daemon in list(_LIVE_DAEMONS):
        for fd in list(daemon._tracked_fds):
            try:
                os.close(fd)
            except OSError:
                pass


def _install_at_fork_guard() -> None:
    global _AT_FORK_INSTALLED
    if not _AT_FORK_INSTALLED:
        os.register_at_fork(after_in_child=_disown_daemon_sockets)
        _AT_FORK_INSTALLED = True


class _InvalidRequest(ValueError):
    """A request line the daemon rejects before admission."""


class ServingDaemon:
    """Overload-safe asyncio serving daemon over an execution context.

    Parameters
    ----------
    graphs:
        One :class:`~repro.graph.social_graph.SocialGraph` (registered
        as tenant ``"default"``) or a mapping of tenant name → graph.
        Either form also accepts a *path* in place of a graph object: a
        saved frozen-index directory (mmap-backed out-of-core serving)
        or a JSON graph file — see
        :func:`~repro.graph.io.resolve_graph_source`.
    engine / mode / workers / max_retries / cpu_count:
        Forwarded to the owned :class:`~repro.runtime.context.
        ExecutionContext` (ignored when ``context`` is given).
    context:
        Adopt a caller-owned context instead (acquired for the
        daemon's lifetime, released on shutdown, never closed here).
    max_queue / max_inflight_per_tenant / queue_timeout_s:
        Admission knobs (:class:`~repro.serving.admission.
        AdmissionController`).
    batch_max:
        Most requests one dispatch batch may carry.  Larger batches
        amortize dispatch; smaller ones bound how long a late arrival
        waits behind its batch-mates.
    default_deadline_s:
        Deadline applied to requests that do not carry their own
        ``deadline_s``.
    calibrator:
        SLO work-rate model (a fresh default one when omitted).
    fault_plan:
        Test-only chaos hook — installed on the context's pools (worker
        kills/drops/delays) and consulted by the dispatch loop for
        queue stalls.  Production code must never set it.
    """

    def __init__(
        self,
        graphs,
        engine: str = "compiled",
        mode: str = "auto",
        workers: Optional[int] = None,
        max_retries: Optional[int] = None,
        cpu_count: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
        max_queue: int = 64,
        max_inflight_per_tenant: Optional[int] = None,
        queue_timeout_s: Optional[float] = None,
        batch_max: int = 8,
        default_deadline_s: Optional[float] = None,
        calibrator: Optional[LatencyCalibrator] = None,
        fault_plan=None,
    ) -> None:
        if isinstance(graphs, SocialGraph) or not hasattr(graphs, "items"):
            # One graph object — or one path to a saved frozen index /
            # JSON graph file — becomes the sole "default" tenant.
            graphs = {"default": graphs}
        if not graphs:
            raise ValueError("the daemon needs at least one tenant graph")
        # A tenant value may be a path: a saved compiled-graph index
        # directory (loaded mmap-backed, O(1) resident bytes here and
        # O(1) install bytes per worker) or a JSON graph file.  Typed
        # storage errors (unsupported version, corruption) surface at
        # construction — a misconfigured tenant must fail loudly, not
        # per request.
        self.graphs = {
            tenant: resolve_graph_source(graph)
            for tenant, graph in dict(graphs).items()
        }
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be positive, got {default_deadline_s}"
            )
        self.batch_max = batch_max
        self.default_deadline_s = default_deadline_s
        self.admission = AdmissionController(
            max_queue=max_queue,
            max_inflight_per_tenant=max_inflight_per_tenant,
            queue_timeout_s=queue_timeout_s,
        )
        self.calibrator = calibrator or LatencyCalibrator()
        self.fault_plan = fault_plan
        if context is not None:
            self._context = context.acquire()
            self._owns_context = False
        else:
            self._context = ExecutionContext(
                engine=engine,
                mode=mode,
                workers=workers,
                max_retries=max_retries,
                cpu_count=cpu_count,
            )
            self._owns_context = True
        #: Daemon-level counters (admission keeps its own).
        self.counters = {"invalid": 0, "batches": 0, "connections": 0}
        self._server: Optional[asyncio.base_events.Server] = None
        self._work = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        #: ``kind="mutate"`` requests waiting for the next dispatch
        #: boundary (the batching loop is the tenant graphs' only
        #: writer, so patches never land under a solve in flight).
        self._mutations: "deque[PendingRequest]" = deque()
        self._draining = False
        self._started = False
        self._batch_seq = 0
        self._tracked_fds: "set[int]" = set()
        self.address: "tuple[str, int] | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        return self._context

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "tuple[str, int]":
        """Bind, warm the pools, and begin serving; returns the address."""
        if self._started:
            raise RuntimeError("daemon already started")
        # Forked pool workers must not inherit (and thereby hold open)
        # the daemon's sockets — see ``_LIVE_DAEMONS``.
        _install_at_fork_guard()
        _LIVE_DAEMONS.add(self)
        # Warm the pools before the first connection exists: a ready
        # daemon should answer its first request at full speed, not pay
        # the worker spawn on it, and forking before any client socket
        # is open keeps early workers free of inherited connections.
        if self._context.effective_workers > 1:
            solve_pool = await asyncio.to_thread(self._context.solve_pool)
            await asyncio.to_thread(self._context.stage_pool)
            if self.fault_plan is not None:
                solve_pool.fault_plan = self.fault_plan
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        for sock in self._server.sockets:
            self._tracked_fds.add(sock.fileno())
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._started = True
        return self.address

    async def shutdown(self) -> None:
        """Drain and stop: every admitted request is answered first.

        Stops accepting (new arrivals on still-open connections shed
        with ``kind="shed"``), lets the dispatch loop finish the queue,
        flushes every connection's pending replies, then releases the
        context — closing the pools when the daemon owns them, so no
        worker processes outlive the daemon.
        """
        if not self._started:
            return
        self._draining = True
        # Untrack the listening fds before close() — pools still
        # respawn workers during the drain, and the at-fork hook must
        # not close whatever the kernel recycles these numbers into.
        for sock in self._server.sockets:
            self._tracked_fds.discard(sock.fileno())
        self._server.close()
        await self._server.wait_closed()
        self._work.set()  # wake the dispatcher so it can observe draining
        if self._dispatcher is not None:
            await self._dispatcher
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._owns_context:
            await asyncio.to_thread(self._context.close)
        else:
            await asyncio.to_thread(self._context.release)
        _LIVE_DAEMONS.discard(self)
        self._tracked_fds.clear()
        self._started = False

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.counters["connections"] += 1
        sock = writer.get_extra_info("socket")
        conn_fd = sock.fileno() if sock is not None else None
        if conn_fd is not None:
            self._tracked_fds.add(conn_fd)
        write_lock = asyncio.Lock()
        reply_tasks: "list[asyncio.Task]" = []
        try:
            first = await reader.readline()
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._handle_http(first, reader, writer)
                return
            sequence = 0
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    sequence += 1
                    await self._handle_line(
                        stripped, sequence, writer, write_lock, reply_tasks
                    )
                line = await reader.readline()
            # EOF: the client is done sending; flush every reply it is
            # still owed before closing our side.
            if reply_tasks:
                await asyncio.gather(*reply_tasks)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; admitted work still completes
        finally:
            for pending in reply_tasks:
                if not pending.done():
                    pending.cancel()
            # Untrack the fd *before* close(): the kernel may recycle
            # the fd number the instant the transport closes it, and a
            # concurrent pool fork must not close an unrelated file
            # that happens to reuse it.
            if conn_fd is not None:
                self._tracked_fds.discard(conn_fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._conn_tasks.discard(task)

    async def _handle_line(
        self, raw: bytes, sequence: int, writer, write_lock, reply_tasks
    ) -> None:
        """Parse, admit, and schedule the reply for one request line."""
        request_id: object = sequence
        try:
            spec = json.loads(raw)
            if not isinstance(spec, dict):
                raise _InvalidRequest("request line must be a JSON object")
            request_id = spec.get("id", sequence)
            if spec.get("kind") == "mutate":
                entry = self._admit_mutation(spec, request_id)
            else:
                entry = self._admit(spec, request_id)
        except _InvalidRequest as error:
            self.counters["invalid"] += 1
            await self._write(
                writer,
                write_lock,
                self._error_payload(request_id, "invalid", str(error)),
            )
            return
        except json.JSONDecodeError as error:
            self.counters["invalid"] += 1
            await self._write(
                writer,
                write_lock,
                self._error_payload(
                    request_id, "invalid", f"invalid JSON: {error}"
                ),
            )
            return
        if isinstance(entry, RequestFailure):
            # Typed admission rejection — written immediately, so the
            # client learns about shed load at arrival, not at drain.
            await self._write(
                writer,
                write_lock,
                self._error_payload(request_id, entry.kind, str(entry)),
            )
            return
        self._work.set()

        async def _deliver() -> None:
            # Shield the future: it is shared with the dispatch loop,
            # and cancelling this delivery task (connection cleanup
            # after a client disconnect) must not cancel the admitted
            # work's result slot out from under the dispatcher.
            payload = await asyncio.shield(entry.future)
            await self._write(writer, write_lock, payload)

        reply_tasks.append(asyncio.create_task(_deliver()))

    def _admit(self, spec: dict, request_id):
        """Validate one spec and run admission; returns the pending
        entry, or the typed :class:`RequestFailure` rejection."""
        spec = dict(spec)
        spec.pop("id", None)
        tenant = spec.pop("tenant", "default")
        slo_s = spec.pop("slo_s", None)
        graph = self.graphs.get(tenant)
        if graph is None:
            raise _InvalidRequest(
                f"unknown tenant {tenant!r}; serving: {sorted(self.graphs)}"
            )
        if slo_s is not None:
            if not isinstance(slo_s, (int, float)) or slo_s <= 0:
                raise _InvalidRequest(
                    f"slo_s must be a positive number, got {slo_s!r}"
                )
            if "budget" in spec:
                raise _InvalidRequest(
                    "slo_s and budget are mutually exclusive: the SLO "
                    "buys the budget"
                )
            try:
                accepted = valid_spec_keys(spec.get("solver", "cbas-nd"))
            except ValueError as error:  # unknown solver name
                raise _InvalidRequest(str(error)) from None
            if accepted is not None and "budget" not in accepted:
                raise _InvalidRequest(
                    f"solver {spec.get('solver')!r} takes no budget; "
                    "slo_s needs a budgeted solver"
                )
            # Placeholder budget so the spec validates fully at the
            # front door; the dispatch loop replaces it with the
            # SLO-planned budget against fresh calibration.
            spec["budget"] = self.calibrator.min_budget
        try:
            request = request_from_spec(graph, spec)
        except (TypeError, ValueError, ReproError) as error:
            raise _InvalidRequest(str(error)) from None
        now = time.monotonic()
        deadline_s = request.deadline_s
        if deadline_s is None and self.default_deadline_s is not None:
            deadline_s = self.default_deadline_s
        entry = PendingRequest(
            id=request_id,
            tenant=tenant,
            spec=spec,
            future=asyncio.get_running_loop().create_future(),
            arrived_at=now,
            deadline_at=now + deadline_s if deadline_s is not None else None,
            slo_s=float(slo_s) if slo_s is not None else None,
        )
        entry.extra["request"] = request
        rejection = self.admission.admit(entry, draining=self._draining)
        return rejection if rejection is not None else entry

    def _admit_mutation(self, spec: dict, request_id):
        """Validate one ``kind="mutate"`` line and queue it for the next
        dispatch boundary; returns the pending entry or a typed
        rejection (draining daemons shed mutations like solves)."""
        spec = dict(spec)
        spec.pop("id", None)
        spec.pop("kind", None)
        tenant = spec.pop("tenant", "default")
        if tenant not in self.graphs:
            raise _InvalidRequest(
                f"unknown tenant {tenant!r}; serving: {sorted(self.graphs)}"
            )
        deltas = spec.pop("deltas", None)
        if spec:
            raise _InvalidRequest(
                f"unexpected mutate keys: {sorted(spec)}; a mutate line "
                'takes only "id", "tenant" and "deltas"'
            )
        if (
            not isinstance(deltas, list)
            or not deltas
            or not all(
                isinstance(op, (list, tuple)) and op and isinstance(op[0], str)
                for op in deltas
            )
        ):
            raise _InvalidRequest(
                'mutate needs "deltas": a non-empty list of '
                '["op", node(s), weight(s)...] records'
            )
        if self._draining:
            return RequestFailure("daemon is draining", kind="shed")
        entry = PendingRequest(
            id=request_id,
            tenant=tenant,
            spec={"deltas": [tuple(op) for op in deltas]},
            future=asyncio.get_running_loop().create_future(),
            arrived_at=time.monotonic(),
        )
        self._mutations.append(entry)
        return entry

    @staticmethod
    async def _write(writer, write_lock, payload: dict) -> None:
        async with write_lock:
            writer.write(_json_line(payload))
            await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while not (
            self._draining
            and self.admission.depth == 0
            and not self._mutations
        ):
            await self._work.wait()
            self._work.clear()
            while self.admission.depth or self._mutations:
                # Pending graph mutations apply strictly *between*
                # solve batches — this loop is the tenant graphs' only
                # writer, so a patch never lands under a solve in
                # flight, and the very next batch already plans sparse
                # ``graph_patch`` records against the new generation.
                while self._mutations:
                    entry = self._mutations.popleft()
                    payload = await asyncio.to_thread(
                        self._apply_mutation, entry
                    )
                    self._settle_future(entry, payload)
                if not self.admission.depth:
                    continue
                self._batch_seq += 1
                if self.fault_plan is not None:
                    hold = self.fault_plan.queue_stall(self._batch_seq)
                    if hold:
                        await asyncio.sleep(hold)
                batch, rejected = self.admission.take_batch(self.batch_max)
                for entry, failure in rejected:
                    self._settle_future(
                        entry,
                        self._error_payload(
                            entry.id,
                            failure.kind,
                            str(failure),
                            retries=failure.retries,
                        ),
                    )
                if not batch:
                    continue
                self.counters["batches"] += 1
                outcomes = await asyncio.to_thread(self._solve_batch, batch)
                for entry, payload in zip(batch, outcomes):
                    ok = payload.get("ok", False)
                    self.admission.settle(entry, ok=ok)
                    self._settle_future(entry, payload)

    @staticmethod
    def _settle_future(entry, payload: dict) -> None:
        """Set ``entry``'s result without ever raising into the loop.

        The future is shared with the owning connection's delivery
        task; delivery shields it, but the dispatch loop must survive
        even if the future was somehow cancelled (a dead dispatcher
        stops the daemon answering *all* clients, which is the one
        failure mode worse than a dropped reply).
        """
        if not entry.future.done():
            entry.future.set_result(payload)

    def _solve_batch(self, batch) -> "list[dict]":
        """Solve one admitted batch on the context (worker thread).

        Returns one reply payload per entry, in batch order.  Never
        raises: a failure of any shape becomes that entry's typed error
        payload, because a dropped reply is the one outcome the daemon
        must not produce.
        """
        now = time.monotonic()
        requests = []
        for entry in batch:
            request = entry.extra["request"]
            if entry.slo_s is not None:
                plan = self.calibrator.plan(
                    n=request.problem.graph.number_of_nodes(),
                    slo_s=entry.slo_s,
                    engine=request.solver_kwargs.get(
                        "engine", self._context.engine
                    ),
                    batch_size=len(batch),
                    workers=self._context.workers,
                    cpu_count=self._context.cpu_count,
                    healthy=not self._context.degraded,
                )
                request.solver_kwargs["budget"] = plan.budget
                entry.extra["plan"] = plan
            if entry.deadline_at is not None:
                # Absolute deadline → the remaining budget, as of the
                # moment the batch starts (solve_many re-anchors there).
                request.deadline_s = max(entry.deadline_at - now, 1e-9)
            requests.append(request)
        failures: "dict[int, RequestFailure]" = {}
        try:
            results = self._context.solve_many(requests)
        except BatchExecutionError as error:
            results = error.results
            failures = error.failures
        except Exception as error:  # defensive: reply to everyone
            message = f"{type(error).__name__}: {error}"
            results = [None] * len(batch)
            failures = {
                index: RequestFailure(message, kind="solver_error")
                for index in range(len(batch))
            }
        done = time.monotonic()
        payloads = []
        for index, (entry, result) in enumerate(zip(batch, results)):
            if result is None:
                failure = failures.get(
                    index, RequestFailure("request produced no result")
                )
                payloads.append(
                    self._error_payload(
                        entry.id,
                        getattr(failure, "kind", "solver_error"),
                        str(failure).strip().splitlines()[-1]
                        if str(failure).strip()
                        else "",
                        retries=getattr(failure, "retries", 0),
                    )
                )
                continue
            request = entry.extra["request"]
            plan = entry.extra.get("plan")
            if plan is not None:
                plan.record(result.stats.extra)
                result.stats.extra["slo_achieved_s"] = done - entry.arrived_at
                if plan.overrun:
                    result.stats.extra["slo_overrun"] = True
            self._observe(request, len(batch), result)
            payloads.append(self._ok_payload(entry, result))
        return payloads

    def _apply_mutation(self, entry) -> dict:
        """Apply one tenant's delta batch (worker thread, between batches).

        The tenant's compiled index is patched in place through
        :meth:`~repro.graph.compiled.CompiledGraph.apply_deltas` —
        payload token preserved, generation bumped — so the resident
        pools refresh warm workers with O(|delta|) ``graph_patch``
        records on the next batch instead of full re-installs.  An
        mmap-backed tenant (a ``graphs=`` path) is materialized into
        memory by the first patch.  Never raises: a bad delta becomes
        the entry's typed ``mutate_error`` reply.
        """
        deltas = entry.spec["deltas"]
        try:
            compiled = self.graphs[entry.tenant].compiled()
            generation = compiled.apply_deltas(deltas)
        except Exception as error:
            return self._error_payload(
                entry.id, "mutate_error", f"{type(error).__name__}: {error}"
            )
        return {
            "id": entry.id,
            "ok": True,
            "tenant": entry.tenant,
            "kind": "mutate",
            "generation": generation,
            "applied": len(deltas),
        }

    def _observe(self, request, batch_size: int, result) -> None:
        """Feed one completed solve into the SLO work-rate calibration."""
        budget = request.budget
        if budget <= 0:
            return  # budget-less solver: no work volume to learn from
        engine = request.solver_kwargs.get("engine", self._context.engine)
        mode = self._context.resolve_mode(
            request.problem, budget, batch_size=batch_size, engine=engine
        )
        self.calibrator.observe(
            engine=engine,
            mode=mode,
            n=request.problem.graph.number_of_nodes(),
            budget=budget,
            elapsed_s=result.stats.elapsed_seconds,
        )

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    @staticmethod
    def _ok_payload(entry, result) -> dict:
        stats = result.stats
        return {
            "id": entry.id,
            "ok": True,
            "tenant": entry.tenant,
            "members": sorted(map(str, result.solution.members)),
            "willingness": result.solution.willingness,
            "stats": {
                "samples_drawn": stats.samples_drawn,
                "failed_samples": stats.failed_samples,
                "stages": stats.stages,
                "elapsed_s": stats.elapsed_seconds,
            },
            "extra": dict(stats.extra),
        }

    @staticmethod
    def _error_payload(
        request_id, kind: str, message: str, retries: int = 0
    ) -> dict:
        return {
            "id": request_id,
            "ok": False,
            "error": {"kind": kind, "message": message, "retries": retries},
        }

    # ------------------------------------------------------------------
    # Health / readiness / metrics (plain HTTP on the same port)
    # ------------------------------------------------------------------
    def status(self) -> dict:
        state = (
            "draining"
            if self._draining
            else ("degraded" if self._context.degraded else "ok")
        )
        return {
            "status": state,
            "degraded": self._context.degraded,
            "draining": self._draining,
            "tenants": sorted(self.graphs),
            "engine": self._context.engine,
            "workers": self._context.effective_workers,
            "admission": self.admission.snapshot(),
            **self.counters,
        }

    async def _handle_http(self, first_line: bytes, reader, writer) -> None:
        head_only = first_line.startswith(b"HEAD ")
        try:
            path = first_line.split()[1].decode("latin-1")
        except (IndexError, UnicodeDecodeError):
            path = "/"
        while True:  # discard request headers
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        if path == "/healthz":
            code, body = 200, self.status()
        elif path == "/readyz":
            ready = self._started and not self._draining
            code = 200 if ready else 503
            body = {"ready": ready, "status": self.status()["status"]}
        elif path == "/metrics":
            code = 200
            body = {
                **self.status(),
                "calibration": self.calibrator.snapshot(),
            }
        else:
            code, body = 404, {"error": f"unknown path {path!r}"}
        encoded = json.dumps(body, sort_keys=True).encode()
        reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}
        writer.write(
            f"HTTP/1.1 {code} {reason.get(code, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "Connection: close\r\n\r\n".encode()
            # A HEAD reply carries GET's headers (including the
            # Content-Length the body *would* have) but no body.
            + (b"" if head_only else encoded)
        )
        await writer.drain()


async def _serve(daemon: ServingDaemon, host: str, port: int, announce) -> None:
    import signal

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    bound_host, bound_port = await daemon.start(host=host, port=port)
    announce(f"serving on {bound_host}:{bound_port}")
    await stop.wait()
    announce("draining...")
    await daemon.shutdown()
    announce("drained; bye")


def run_daemon(
    daemon: ServingDaemon,
    host: str = "127.0.0.1",
    port: int = 0,
    announce=None,
) -> int:
    """Run ``daemon`` until SIGINT/SIGTERM, then drain and exit cleanly.

    The CLI's ``waso serve`` entry point.  ``announce`` receives
    human-readable lifecycle lines; the bound address is announced
    first and flushed, so a script driving the daemon as a subprocess
    can discover an ephemeral port by reading one stdout line.
    """
    if announce is None:
        def announce(line: str) -> None:
            print(line, flush=True)

    asyncio.run(_serve(daemon, host, port, announce))
    return 0
