"""Overload-safe serving layer on top of the self-healing runtime.

The runtime (:mod:`repro.runtime`) makes one *batch* robust; this
package makes a long-lived *process* robust: a stdlib-asyncio daemon
(:class:`~repro.serving.daemon.ServingDaemon`) that multiplexes tenants'
graphs through the resident pools, with bounded-queue admission control
and typed load shedding (:class:`~repro.serving.admission.
AdmissionController`), SLO-inverted budget routing calibrated online
(:class:`~repro.serving.slo.LatencyCalibrator`), health/readiness
endpoints, degraded-mode serving, and drain-on-shutdown.
"""

from repro.serving.admission import AdmissionController, PendingRequest
from repro.serving.daemon import ServingDaemon, run_daemon
from repro.serving.slo import DEFAULT_WORK_RATES, LatencyCalibrator, SLOPlan

__all__ = [
    "AdmissionController",
    "PendingRequest",
    "ServingDaemon",
    "run_daemon",
    "LatencyCalibrator",
    "SLOPlan",
    "DEFAULT_WORK_RATES",
]
