"""SLO-inverted routing: buy the largest budget a latency target affords.

The cost-model router (:mod:`repro.runtime.router`) answers "given a
budget ``T``, which mode should run it?".  A serving daemon faces the
inverse problem: a request arrives with a *latency SLO* instead of a
budget, and more samples are strictly better for solution quality — so
the right budget is the largest one the current hardware can clear
inside the SLO.  :func:`repro.runtime.router.budget_for_slo` does the
inversion over a geometric budget ladder; this module supplies the part
the router cannot know statically: **what the hardware is actually
delivering right now**.

:class:`LatencyCalibrator` maintains one exponentially-weighted moving
average of the observed *work rate* — ``n × T`` work units cleared per
second of solve wall clock — per ``(engine, mode)`` pair, seeded with
conservative cold-start rates derived from the committed
``BENCH_sampler.json`` figures.  Every completed solve feeds an
observation back (:meth:`observe`), so the same SLO buys more samples
on fast hardware, fewer as the machine saturates, and the promise
tracks reality without any offline calibration step.

Every SLO-routed request records the contract in ``SolveStats.extra``:

* ``slo_s`` — the latency objective the client asked for;
* ``slo_budget`` / ``slo_mode`` — what the planner bought with it;
* ``slo_promised_s`` — the latency the plan predicted;
* ``slo_achieved_s`` — the end-to-end latency actually delivered
  (stamped by the daemon when the reply is ready, so it includes queue
  wait and dispatch, not just solve time).

A promise can exceed the SLO only when even the minimum viable budget
does not fit — the plan flags it (:attr:`SLOPlan.overrun`) and the
daemon serves the floor rather than refusing: shedding is admission
control's decision, not the planner's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.router import (
    MAX_SLO_BUDGET,
    MIN_SLO_BUDGET,
    SLO_HEADROOM,
    budget_for_slo,
)

__all__ = ["LatencyCalibrator", "SLOPlan", "DEFAULT_WORK_RATES"]

#: Cold-start work rates (``n × T`` units per second of solve wall
#: clock) per engine, before any observation has arrived.  Derived from
#: the committed ``BENCH_sampler.json`` end-to-end CBAS-ND throughput
#: (samples/sec × n) on the n=1k/10k graphs, then divided by ~4 so a
#: cold daemon under-promises: the first real observations pull the
#: EWMA up to the machine's true rate within a handful of requests.
DEFAULT_WORK_RATES = {
    "reference": 1.2e6,
    "compiled": 3.0e6,
    "vector": 5.0e6,
}

#: Parallel modes clear more work per wall-clock second than serial, but
#: a cold calibrator has no per-mode evidence yet; starting them at the
#: serial rate under-promises, which is the safe direction.
_FALLBACK_RATE = 1.0e6


@dataclass(frozen=True)
class SLOPlan:
    """What a latency SLO bought: a budget, a mode, and a promise."""

    budget: int
    mode: str
    promised_s: float
    slo_s: float

    @property
    def overrun(self) -> bool:
        """Does even this plan's promise exceed the SLO's headroom?

        True only at the budget floor (see module docstring); the
        daemon still serves the request and records the overrun.
        """
        return self.promised_s > SLO_HEADROOM * self.slo_s

    def record(self, extra: dict) -> None:
        """Stamp the promise side of the contract into ``stats.extra``."""
        extra["slo_s"] = self.slo_s
        extra["slo_budget"] = self.budget
        extra["slo_mode"] = self.mode
        extra["slo_promised_s"] = self.promised_s


class LatencyCalibrator:
    """Online EWMA work-rate model, one cell per ``(engine, mode)``.

    Parameters
    ----------
    alpha:
        EWMA weight of a new observation.  0.3 reaches ~97% of a step
        change in ten observations while riding out single-solve noise.
    min_budget / max_budget:
        Planner bounds, forwarded to
        :func:`~repro.runtime.router.budget_for_slo`.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        min_budget: int = MIN_SLO_BUDGET,
        max_budget: int = MAX_SLO_BUDGET,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.min_budget = min_budget
        self.max_budget = max_budget
        self._rates: "dict[tuple[str, str], float]" = {}
        #: Completed observations folded in, per (engine, mode).
        self.observations: "dict[tuple[str, str], int]" = {}

    # ------------------------------------------------------------------
    def rate(self, engine: str, mode: str) -> float:
        """Current work-rate estimate for ``(engine, mode)`` (units/s)."""
        cell = self._rates.get((engine, mode))
        if cell is not None:
            return cell
        return DEFAULT_WORK_RATES.get(engine, _FALLBACK_RATE)

    def observe(
        self,
        engine: str,
        mode: str,
        n: int,
        budget: int,
        elapsed_s: float,
    ) -> None:
        """Fold one completed solve into the ``(engine, mode)`` cell.

        ``elapsed_s`` is the solve's own wall clock (the daemon passes
        ``stats.elapsed_seconds``); queue wait is deliberately excluded
        — it is admission's latency, not the hardware's, and folding it
        in would make overload look like slow silicon and spiral the
        budgets down.
        """
        if elapsed_s <= 0 or n <= 0 or budget <= 0:
            return  # degenerate observation; nothing to learn from
        observed = (n * budget) / elapsed_s
        key = (engine, mode)
        previous = self.rate(engine, mode)
        self._rates[key] = (
            self.alpha * observed + (1 - self.alpha) * previous
        )
        self.observations[key] = self.observations.get(key, 0) + 1

    # ------------------------------------------------------------------
    def plan(
        self,
        n: int,
        slo_s: float,
        engine: str = "compiled",
        batch_size: int = 1,
        workers: "int | None" = None,
        cpu_count: "int | None" = None,
        healthy: bool = True,
    ) -> SLOPlan:
        """The largest-budget plan that fits ``slo_s`` on current rates."""
        budget, mode, promised = budget_for_slo(
            n=n,
            slo_s=slo_s,
            work_rate=lambda candidate_mode: self.rate(
                engine, candidate_mode
            ),
            batch_size=batch_size,
            workers=workers,
            cpu_count=cpu_count,
            healthy=healthy,
            engine=engine,
            min_budget=self.min_budget,
            max_budget=self.max_budget,
        )
        return SLOPlan(
            budget=budget, mode=mode, promised_s=promised, slo_s=slo_s
        )

    def snapshot(self) -> dict:
        """Current rates and observation counts (health endpoint)."""
        return {
            f"{engine}/{mode}": {
                "rate": rate,
                "observations": self.observations.get((engine, mode), 0),
            }
            for (engine, mode), rate in sorted(self._rates.items())
        }
