"""Admission control: the layer that keeps an overloaded daemon standing.

A serving process that accepts everything it is offered does not degrade
under overload — it collapses: the queue grows without bound, every
request's latency climbs past its deadline, memory follows the queue,
and by the time anything completes, nobody is still waiting for it.
The admission controller makes the opposite trade, explicitly:

* **bounded queue** — at most ``max_queue`` requests wait for dispatch;
  an arrival past that is *shed* immediately with a typed
  ``kind="shed"`` rejection (a cheap, honest "retry later") instead of
  being buffered into a latency it can never meet;
* **per-tenant in-flight limits** — one tenant bursting cannot occupy
  the whole queue; past ``max_inflight_per_tenant`` admitted-but-
  unanswered requests, that tenant's arrivals shed while others' are
  admitted;
* **queue patience** — an admitted request that waits past
  ``queue_timeout_s`` is rejected with ``kind="queue_timeout"`` at the
  next dispatch boundary: once it has waited that long, solving it
  serves nobody (the client has moved on) and only steals capacity from
  requests that can still meet their deadlines;
* **deadline awareness** — a request whose own ``deadline_s`` budget is
  already exhausted by queueing fails as ``kind="deadline"`` without
  wasting a solve on it.

Decisions are made synchronously in arrival order on the daemon's event
loop, so under a fixed arrival script *which* requests are shed is a
pure function of the schedule — the chaos suite asserts the exact set.

Rejections reuse :class:`~repro.exceptions.RequestFailure`, the same
typed record batch failures use, so clients see one failure vocabulary
end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import RequestFailure

__all__ = ["AdmissionController", "PendingRequest"]


@dataclass
class PendingRequest:
    """One admitted request waiting in (or moving through) the queue."""

    id: object
    tenant: str
    spec: dict
    future: object  # asyncio.Future set by the daemon with the outcome
    arrived_at: float  # time.monotonic() at admission
    deadline_at: Optional[float] = None  # absolute monotonic instant
    slo_s: Optional[float] = None
    extra: dict = field(default_factory=dict)

    def queue_wait(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.arrived_at


class AdmissionController:
    """Bounded-queue admission with typed rejections and tenant fairness.

    Parameters
    ----------
    max_queue:
        Queue depth bound.  Arrivals while the queue is full are shed.
    max_inflight_per_tenant:
        Per-tenant cap on admitted-but-unanswered requests (``None`` =
        unlimited).  Counts queued *and* dispatched requests — a tenant
        is only charged down when its reply is settled.
    queue_timeout_s:
        Patience bound (``None`` = wait forever).  Enforced at dispatch
        boundaries, matching the pools' deadline philosophy: a request
        already handed to the solver is never abandoned retroactively.
    """

    def __init__(
        self,
        max_queue: int = 64,
        max_inflight_per_tenant: Optional[int] = None,
        queue_timeout_s: Optional[float] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_inflight_per_tenant is not None and max_inflight_per_tenant < 1:
            raise ValueError(
                "max_inflight_per_tenant must be >= 1, got "
                f"{max_inflight_per_tenant}"
            )
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError(
                f"queue_timeout_s must be positive, got {queue_timeout_s}"
            )
        self.max_queue = max_queue
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.queue_timeout_s = queue_timeout_s
        self._queue: "list[PendingRequest]" = []
        self._inflight: "dict[str, int]" = {}
        #: Monotone counters; ``received == admitted + shed`` and every
        #: admitted request ends in exactly one of ``completed`` /
        #: ``failed`` / ``queue_timeouts`` / ``deadline_missed`` — the
        #: zero-dropped-requests invariant the bench gate checks.
        self.counters = {
            "received": 0,
            "admitted": 0,
            "shed": 0,
            "queue_timeouts": 0,
            "deadline_missed": 0,
            "completed": 0,
            "failed": 0,
        }

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently waiting for dispatch."""
        return len(self._queue)

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    # ------------------------------------------------------------------
    def admit(
        self, entry: PendingRequest, draining: bool = False
    ) -> Optional[RequestFailure]:
        """Admit ``entry`` or return the typed rejection, synchronously.

        Called in arrival order; the decision depends only on the
        queue/in-flight state left by earlier arrivals, never on
        timing, so a fixed arrival script sheds a fixed set.
        """
        self.counters["received"] += 1
        rejection = None
        if draining:
            rejection = RequestFailure(
                "daemon is draining: not admitting new requests",
                kind="shed",
            )
        elif len(self._queue) >= self.max_queue:
            rejection = RequestFailure(
                f"admission queue full ({self.max_queue} waiting); "
                "retry after backoff",
                kind="shed",
            )
        elif (
            self.max_inflight_per_tenant is not None
            and self.inflight(entry.tenant) >= self.max_inflight_per_tenant
        ):
            rejection = RequestFailure(
                f"tenant {entry.tenant!r} at its in-flight limit "
                f"({self.max_inflight_per_tenant}); retry after backoff",
                kind="shed",
            )
        if rejection is not None:
            self.counters["shed"] += 1
            return rejection
        self.counters["admitted"] += 1
        self._inflight[entry.tenant] = self.inflight(entry.tenant) + 1
        self._queue.append(entry)
        return None

    # ------------------------------------------------------------------
    def take_batch(
        self, max_size: int, now: Optional[float] = None
    ) -> "tuple[list[PendingRequest], list[tuple[PendingRequest, RequestFailure]]]":
        """Pop the next dispatch batch, rejecting stale entries first.

        Returns ``(batch, rejected)``: up to ``max_size`` dispatchable
        entries in admission order, plus every entry swept out at this
        boundary — queue patience exceeded (``kind="queue_timeout"``)
        or its own deadline budget exhausted (``kind="deadline"``).
        Rejected entries are settled here (tenant charge released);
        batch entries stay charged until :meth:`settle`.
        """
        if now is None:
            now = time.monotonic()
        batch: "list[PendingRequest]" = []
        rejected: "list[tuple[PendingRequest, RequestFailure]]" = []
        while self._queue and len(batch) < max_size:
            entry = self._queue.pop(0)
            waited = entry.queue_wait(now)
            if (
                self.queue_timeout_s is not None
                and waited > self.queue_timeout_s
            ):
                failure = RequestFailure(
                    f"queued {waited:.3f}s, past the admission "
                    f"controller's {self.queue_timeout_s}s patience",
                    kind="queue_timeout",
                )
                self.counters["queue_timeouts"] += 1
                self._settle_tenant(entry)
                rejected.append((entry, failure))
                continue
            if entry.deadline_at is not None and now >= entry.deadline_at:
                failure = RequestFailure(
                    "request deadline expired while queued",
                    kind="deadline",
                )
                self.counters["deadline_missed"] += 1
                self._settle_tenant(entry)
                rejected.append((entry, failure))
                continue
            batch.append(entry)
        return batch, rejected

    # ------------------------------------------------------------------
    def settle(self, entry: PendingRequest, ok: bool) -> None:
        """Release ``entry``'s tenant charge once its reply is decided."""
        self._settle_tenant(entry)
        self.counters["completed" if ok else "failed"] += 1

    def _settle_tenant(self, entry: PendingRequest) -> None:
        remaining = self.inflight(entry.tenant) - 1
        if remaining > 0:
            self._inflight[entry.tenant] = remaining
        else:
            self._inflight.pop(entry.tenant, None)

    def snapshot(self) -> dict:
        """Counters plus live depth (health/metrics endpoints)."""
        return {
            **self.counters,
            "queue_depth": self.depth,
            "inflight": dict(self._inflight),
        }
