"""Tests for the unified runtime layer (repro.runtime).

The load-bearing properties:

* the auto-router always returns a valid mode and degrades to serial on
  a single CPU;
* ``ExecutionContext.solve_many`` results (and RNG consumption) are
  bit-identical to looped single ``solve()`` calls, across scenario
  transforms and both engines;
* pools are lazy, resident, and never leak worker processes — including
  after a mid-solve exception.
"""

import multiprocessing
import random

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.online import OnlinePlanner
from repro.runtime import (
    ExecutionContext,
    MODES,
    SolveRequest,
    choose_mode,
    request_from_spec,
    validate_mode,
)
from repro.runtime.router import (
    MIN_SOLVE_WORK,
    MIN_STAGE_BUDGET,
    STAGE_WORK_THRESHOLD,
)
from repro.scenarios import exhibition_problem, mark_foes, merge_couple
from repro.scenarios.filters import filtered_problem


def _children() -> set:
    return set(multiprocessing.active_children())


#: extra-dict keys that describe pool warmth rather than the solve
#: itself (a resident graph is shipped once per (graph, worker) pair,
#: so the second of two otherwise-identical solves legitimately reports
#: different residency bookkeeping).
_POOL_WARMTH_KEYS = frozenset(
    {
        "graph_shipped",
        "graph_installs",
        "batch_payload_bytes",
        "shard_rpcs",
        "failed_requests",
    }
)


def _assert_same_result(lhs, rhs) -> None:
    """Bit-identity check between two SolveResults (timing excepted)."""
    assert lhs.members == rhs.members
    assert lhs.willingness == rhs.willingness
    assert lhs.stats.samples_drawn == rhs.stats.samples_drawn
    assert lhs.stats.failed_samples == rhs.stats.failed_samples
    assert lhs.stats.stages == rhs.stats.stages
    strip = lambda extra: {  # noqa: E731
        key: value
        for key, value in extra.items()
        if key not in _POOL_WARMTH_KEYS
    }
    assert strip(lhs.stats.extra) == strip(rhs.stats.extra)


class TestRouter:
    def test_always_returns_a_valid_mode(self):
        """Property: every input combination resolves to a concrete mode."""
        rng = random.Random(7)
        for _ in range(300):
            mode = choose_mode(
                n=rng.randrange(0, 100_000),
                budget=rng.randrange(0, 10_000),
                batch_size=rng.randrange(1, 50),
                workers=rng.choice([None, 1, 2, 4, 8, 64]),
                cpu_count=rng.randrange(1, 65),
            )
            assert mode in MODES and mode != "auto"

    def test_degrades_to_serial_on_one_cpu(self):
        """Property: a 1-CPU machine always routes serial."""
        rng = random.Random(8)
        for _ in range(200):
            assert (
                choose_mode(
                    n=rng.randrange(0, 100_000),
                    budget=rng.randrange(0, 10_000),
                    batch_size=rng.randrange(1, 50),
                    workers=rng.choice([None, 1, 4, 16]),
                    cpu_count=1,
                )
                == "serial"
            )

    def test_one_big_solve_routes_stage(self):
        assert choose_mode(10_000, 3200, 1, None, 8) == "stage"

    def test_big_solve_in_a_batch_still_routes_stage(self):
        assert choose_mode(10_000, 3200, 12, None, 8) == "stage"

    def test_many_small_solves_route_solve_level(self):
        assert choose_mode(500, 200, 16, None, 8) == "solve"

    def test_one_small_solve_routes_serial(self):
        assert choose_mode(200, 120, 1, None, 8) == "serial"

    def test_thresholds_are_the_documented_ones(self):
        budget = MIN_STAGE_BUDGET
        n = -(-STAGE_WORK_THRESHOLD // budget)  # ceil division
        assert choose_mode(n, budget, 1, None, 4) == "stage"
        assert choose_mode(n - 1, budget, 1, None, 4) == "serial"
        assert choose_mode(n, budget - 1, 1, None, 4) == "serial"

    def test_workers_cap_parallelism(self):
        assert choose_mode(10_000, 3200, 1, workers=1, cpu_count=8) == "serial"

    def test_tiny_batched_solves_stay_serial(self):
        """Recalibration for the resident path: a request whose work
        volume is below the fixed dispatch round trip runs inline even
        inside a batch (the old model multiplexed any batch, because
        batching had to amortize a per-chunk graph pickle that the
        resident protocol no longer pays)."""
        budget = 50
        n = -(-MIN_SOLVE_WORK // budget)  # ceil division
        assert choose_mode(n, budget, 16, None, 8) == "solve"
        assert choose_mode(n - 1, budget, 16, None, 8) == "serial"

    def test_budget_less_solvers_stay_serial_in_batches(self):
        """T=0 (DGreedy-style) hides the work volume from the model, so
        it conservatively runs inline."""
        assert choose_mode(50_000, 0, 16, None, 8) == "serial"

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_mode(-1, 10)
        with pytest.raises(ValueError):
            choose_mode(10, -1)
        with pytest.raises(ValueError):
            choose_mode(10, 10, batch_size=0)
        with pytest.raises(ValueError):
            choose_mode(10, 10, workers=0)
        with pytest.raises(ValueError):
            validate_mode("threads")
        assert validate_mode("auto") == "auto"


class TestExecutionContext:
    def test_context_solve_matches_direct_solver(self, small_facebook):
        """The runtime front door reproduces a bare solver.solve exactly."""
        problem = WASOProblem(graph=small_facebook, k=5)
        direct = CBASND(budget=60, m=6, stages=3).solve(problem, rng=4)
        with ExecutionContext() as context:
            routed = context.solve(
                problem, "cbas-nd", rng=4, budget=60, m=6, stages=3
            )
        _assert_same_result(direct, routed)

    def test_make_solver_injects_context_and_engine(self):
        context = ExecutionContext(engine="reference")
        solver = context.make_solver("cbas-nd", budget=50)
        assert solver.context is context
        assert solver.engine == "reference"
        # An explicit engine kwarg still overrides the context default.
        assert context.make_solver("cbas", engine="compiled").engine == (
            "compiled"
        )
        # Solvers without execution state build fine too.
        assert context.make_solver("exact-bnb").name == "exact-bnb"

    def test_private_context_is_serial(self):
        solver = CBASND(budget=50)
        assert solver.context.mode == "serial"
        assert solver.engine == "compiled"
        assert CBASND(budget=50, engine="reference").engine == "reference"

    def test_serial_solves_create_no_pools(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        with ExecutionContext(workers=2) as context:
            context.solve(problem, "cbas-nd", rng=1, budget=40, m=4, stages=2)
            assert context._stage_pool is None
            assert context._solve_pool is None
        assert _children() == before

    def test_solver_pickles_without_its_context(self, small_facebook):
        import pickle

        problem = WASOProblem(graph=small_facebook, k=5)
        with ExecutionContext(workers=2) as context:
            solver = context.make_solver("cbas-nd", budget=40, m=4, stages=2)
            context.stage_pool()  # pools must never cross the pickle
            clone = pickle.loads(pickle.dumps(solver))
        assert clone.context is not solver.context
        assert clone.context.mode == "serial"
        assert clone.engine == solver.engine
        _assert_same_result(
            clone.solve(problem, rng=3), solver.solve(problem, rng=3)
        )

    def test_instance_with_kwargs_rejected(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with ExecutionContext() as context:
            with pytest.raises(ValueError, match="by name"):
                context.solve(problem, CBASND(budget=40), budget=50)

    def test_mode_solve_requires_a_registry_name(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with ExecutionContext(workers=2) as context:
            with pytest.raises(ValueError, match="registry name"):
                context.solve(problem, CBASND(budget=40), mode="solve")

    def test_foreign_instances_adopt_the_calling_context(
        self, small_facebook
    ):
        """Regression: a solver built outside the context must still honor
        the routed mode — its private context is swapped out for the
        call (and restored afterwards)."""
        problem = WASOProblem(graph=small_facebook, k=5)
        solver = CBASND(budget=40, m=4, stages=2)
        with ExecutionContext(workers=2) as context:
            result = context.solve(problem, solver, rng=1, mode="stage")
            assert result.stats.extra["stage_workers"] == 2
        assert solver.context is not context
        assert solver.context.mode == "serial"

    def test_solve_mode_context_degrades_for_instances(self, small_facebook):
        """A solver *instance* under a mode='solve' context default runs
        serially instead of erroring — only an explicit mode='solve'
        argument insists on the impossible split."""
        problem = WASOProblem(graph=small_facebook, k=5)
        direct = CBASND(budget=40, m=4, stages=2).solve(problem, rng=3)
        with ExecutionContext(workers=2, mode="solve") as context:
            routed = context.solve(
                problem, CBASND(budget=40, m=4, stages=2), rng=3
            )
        _assert_same_result(direct, routed)

    def test_explicit_executor_override_wins(self, small_facebook):
        from repro.algorithms.stage_exec import SerialStageExecutor

        problem = WASOProblem(graph=small_facebook, k=5)
        pinned = SerialStageExecutor()
        context = ExecutionContext(
            mode="stage", workers=2, executor=pinned
        )
        solver = context.make_solver("cbas-nd", budget=40, m=4, stages=2)
        assert context.executor_for(solver, problem) is pinned
        context.close()

    def test_resolve_mode_precedence(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        context = ExecutionContext(mode="stage", cpu_count=8)
        assert context.resolve_mode(problem, 40) == "stage"
        assert context.resolve_mode(problem, 40, mode="serial") == "serial"
        assert context.resolve_mode(problem, 40, mode="auto") == "serial"
        with pytest.raises(ValueError):
            context.resolve_mode(problem, 40, mode="openmp")

    def test_stage_mode_degrades_for_unshardable_solvers(
        self, small_facebook
    ):
        """Reference engines / hook-less solvers stay serial even when the
        routing says stage — the workers hold only compiled arrays."""
        problem = WASOProblem(graph=small_facebook, k=5)
        context = ExecutionContext(mode="stage", workers=2)
        reference = context.make_solver(
            "cbas-nd", budget=40, m=4, stages=2, engine="reference"
        )
        serial = context.executor_for(reference, problem)
        assert not hasattr(serial, "pool")
        assert context._stage_pool is None  # lazily skipped, too
        context.close()


@pytest.fixture(scope="module")
def runtime_graph():
    from repro.graph.generators import facebook_like

    return facebook_like(150, seed=31)


def _scenario_requests(graph, engine):
    """Heterogeneous batch over one graph: every §2.2/§4.4.3 transform."""
    kwargs = dict(budget=40, m=4, stages=2, engine=engine)
    plain = WASOProblem(graph=graph, k=5)
    u, v = next(iter(graph.edges()))
    couples, _merged = merge_couple(WASOProblem(graph=graph, k=6), u, v)
    foes = WASOProblem(graph=mark_foes(graph, [next(iter(graph.edges()))]), k=5)
    themed = exhibition_problem(graph, 5)  # WASO-dis by construction
    filtered = filtered_problem(
        graph, 4, lambda _graph, node: hash(node) % 5 != 0
    )
    return [
        SolveRequest(plain, "cbas-nd", 11, dict(kwargs)),
        SolveRequest(couples, "cbas-nd", 12, dict(kwargs)),
        SolveRequest(foes, "cbas-nd", 13, dict(kwargs)),
        SolveRequest(themed, "cbas", 14, dict(kwargs)),
        SolveRequest(filtered, "cbas-nd", 15, dict(kwargs)),
        SolveRequest(plain, "dgreedy", 16, {"engine": engine}),
        SolveRequest(plain, "rgreedy", 17, {"budget": 30, "engine": engine}),
    ]


class TestSolveMany:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_bit_identical_to_looped_solves_across_scenarios(
        self, runtime_graph, engine
    ):
        """The differential suite: batch == loop, per scenario, per engine."""
        from repro.algorithms.registry import make_solver

        requests = _scenario_requests(runtime_graph, engine)
        looped = [
            make_solver(request.solver, **request.solver_kwargs).solve(
                request.problem, rng=request.rng
            )
            for request in requests
        ]
        with ExecutionContext(workers=2) as context:
            batched = context.solve_many(requests, mode="solve")
        assert len(batched) == len(looped)
        for lhs, rhs in zip(looped, batched):
            _assert_same_result(lhs, rhs)

    def test_auto_routing_matches_looped_context_solves(self, runtime_graph):
        """Mixed batch under auto routing: a stage-sized request and small
        ones resolve exactly like the same requests solved one by one."""
        small = WASOProblem(graph=runtime_graph, k=5)
        big_budget = max(
            MIN_STAGE_BUDGET,
            -(-STAGE_WORK_THRESHOLD // runtime_graph.number_of_nodes()),
        )
        requests = [
            SolveRequest(small, "cbas-nd", 3, dict(budget=40, m=4, stages=2)),
            SolveRequest(
                small, "cbas-nd", 4, dict(budget=big_budget, m=6, stages=3)
            ),
            SolveRequest(small, "cbas", 5, dict(budget=30, m=3, stages=2)),
        ]
        # Pretend 4 CPUs so auto routing engages on the 1-CPU container.
        with ExecutionContext(workers=2, cpu_count=4) as context:
            routes = [
                context.resolve_mode(
                    r.problem, r.budget, batch_size=len(requests)
                )
                for r in requests
            ]
            assert routes == ["solve", "stage", "solve"]
            looped = [
                context.solve(r.problem, r.solver, rng=r.rng, **r.solver_kwargs)
                for r in requests
            ]
            batched = context.solve_many(requests)
        for lhs, rhs in zip(looped, batched):
            _assert_same_result(lhs, rhs)

    def test_unshardable_large_requests_demote_to_the_multiplexer(
        self, runtime_graph
    ):
        """Regression: a batch of large solves whose solver cannot shard
        (no shard hooks / reference engine) must multiplex onto the
        solve pool, not run sequentially inline via a dead stage route."""
        problem = WASOProblem(graph=runtime_graph, k=5)
        big_budget = max(
            MIN_STAGE_BUDGET,
            -(-STAGE_WORK_THRESHOLD // runtime_graph.number_of_nodes()),
        )
        requests = [
            SolveRequest(problem, "rgreedy", seed, {"budget": big_budget})
            for seed in (1, 2)
        ] + [
            SolveRequest(
                problem,
                "cbas-nd",
                3,
                {"budget": big_budget, "m": 4, "engine": "reference"},
            )
        ]
        from repro.algorithms.registry import make_solver

        looped = [
            make_solver(r.solver, **r.solver_kwargs).solve(
                r.problem, rng=r.rng
            )
            for r in requests
        ]
        with ExecutionContext(workers=2, cpu_count=4) as context:
            batched = context.solve_many(requests)
            assert context._stage_pool is None  # nothing took the dead route
            assert context._solve_pool is not None
        for lhs, rhs in zip(looped, batched):
            _assert_same_result(lhs, rhs)

    def test_serial_routed_requests_run_inline_in_mixed_batches(
        self, runtime_graph
    ):
        """Regression: the router's 'serial' verdict (tiny or budget-less
        requests) must be honoured inside a mixed batch — those requests
        run in-parent, are never shipped to the pool, and the results
        still match a plain loop."""
        from repro.algorithms.registry import make_solver

        problem = WASOProblem(graph=runtime_graph, k=5)
        requests = [
            SolveRequest(problem, "cbas-nd", 1, dict(budget=40, m=4, stages=2)),
            SolveRequest(problem, "dgreedy", 2, {}),  # budget-less: serial
            SolveRequest(problem, "cbas-nd", 3, dict(budget=40, m=4, stages=2)),
        ]
        looped = [
            make_solver(r.solver, **r.solver_kwargs).solve(
                r.problem, rng=r.rng
            )
            for r in requests
        ]
        with ExecutionContext(workers=2, cpu_count=4) as context:
            routes = [
                context.resolve_mode(
                    r.problem, r.budget, batch_size=len(requests)
                )
                for r in requests
            ]
            assert routes == ["solve", "serial", "solve"]
            batched = context.solve_many(requests)
        for lhs, rhs in zip(looped, batched):
            _assert_same_result(lhs, rhs)
        # The inline request carries no pool-shipping accounting — it
        # never touched the pool; the multiplexed ones do.
        assert "graph_installs" not in batched[1].stats.extra
        assert "graph_installs" in batched[0].stats.extra

    def test_shared_rng_instance_runs_serially_in_order(self, runtime_graph):
        """A shared generator's stream consumption matches a plain loop."""
        problem = WASOProblem(graph=runtime_graph, k=5)
        kwargs = dict(budget=40, m=4, stages=2)

        loop_rng = random.Random(9)
        looped = [
            CBASND(**kwargs).solve(problem, rng=loop_rng) for _ in range(3)
        ]
        batch_rng = random.Random(9)
        requests = [
            SolveRequest(problem, "cbas-nd", batch_rng, dict(kwargs))
            for _ in range(3)
        ]
        with ExecutionContext(workers=2) as context:
            batched = context.solve_many(requests, mode="solve")
        for lhs, rhs in zip(looped, batched):
            _assert_same_result(lhs, rhs)

    def test_empty_batch(self):
        with ExecutionContext() as context:
            assert context.solve_many([]) == []

    def test_rejects_non_requests(self, runtime_graph):
        with ExecutionContext() as context:
            with pytest.raises(TypeError, match="SolveRequest"):
                context.solve_many([{"k": 5}])

    def test_request_from_spec(self, runtime_graph):
        request = request_from_spec(
            runtime_graph,
            {"k": 5, "solver": "cbas", "seed": 3, "budget": 77, "m": 4},
        )
        assert request.problem.k == 5
        assert request.solver == "cbas"
        assert request.rng == 3
        assert request.budget == 77
        assert request.solver_kwargs == {"budget": 77, "m": 4}
        with pytest.raises(ValueError, match="'k'"):
            request_from_spec(runtime_graph, {"solver": "cbas"})
        with pytest.raises(TypeError, match="registry name"):
            SolveRequest(WASOProblem(graph=runtime_graph, k=3), CBASND())

    def test_request_from_spec_rejects_unknown_keys(self, runtime_graph):
        """A typo'd spec key fails at the front door, naming the valid
        keys, instead of being silently dropped into the request."""
        with pytest.raises(ValueError, match="'budgett'") as excinfo:
            request_from_spec(runtime_graph, {"k": 5, "budgett": 77})
        message = str(excinfo.value)
        assert "valid keys" in message
        assert "budget" in message and "deadline_s" in message
        # Execution-state parameters are never spec keys.
        with pytest.raises(ValueError, match="'executor'"):
            request_from_spec(runtime_graph, {"k": 5, "executor": None})
        with pytest.raises(ValueError, match="unknown solver"):
            request_from_spec(runtime_graph, {"k": 5, "solver": "nope"})

    def test_request_from_spec_open_factories_validate_late(
        self, runtime_graph
    ):
        """``cbas-nd-g`` is an open ``**kwargs`` wrapper: its keys cannot
        be enumerated from the signature (``valid_spec_keys`` returns
        ``None``), so a typo surfaces at construction instead."""
        from repro.runtime import valid_spec_keys

        assert valid_spec_keys("cbas-nd-g") is None
        assert "budget" in valid_spec_keys("cbas-nd")
        assert "context" not in valid_spec_keys("cbas-nd")
        request = request_from_spec(
            runtime_graph, {"k": 5, "solver": "cbas-nd-g", "budget": 50}
        )
        assert request.budget == 50


class TestServingSessionResidency:
    """The tentpole differential suite: a long serving session — several
    ``solve_many`` batches, interleaved replans, two distinct graphs,
    forced cache eviction — ships each graph exactly once per (graph,
    worker) pair and stays bit-identical to serial loops."""

    def _looped(self, requests):
        from repro.algorithms.registry import make_solver

        return [
            make_solver(request.solver, **request.solver_kwargs).solve(
                request.problem, rng=request.rng
            )
            for request in requests
        ]

    def _requests(self, problem, seeds, engine):
        return [
            SolveRequest(
                problem, "cbas-nd", seed,
                dict(budget=40, m=4, stages=2, engine=engine),
            )
            for seed in seeds
        ]

    def test_session_ships_graph_once_per_worker(self, runtime_graph):
        """Acceptance: ``solve_many`` twice plus a replan over the same
        problem pickles the detached arrays at most once per worker."""
        from repro.parallel import ResidentSolvePool, worker_payload_bytes

        problem = WASOProblem(graph=runtime_graph, k=5)
        slim = worker_payload_bytes(problem)["compiled_arrays_bytes"]
        looped = self._looped(self._requests(problem, (11, 12, 13), "compiled"))
        with ResidentSolvePool(2) as pool:
            with ExecutionContext(workers=2, solve_pool=pool) as context:
                first = context.solve_many(
                    self._requests(problem, (11, 12, 13), "compiled"),
                    mode="solve",
                )
                # Cold batch: one install per worker, graph bytes on the
                # wire.
                assert pool.installs == 2
                assert first[0].stats.extra["graph_shipped"] is True
                assert first[0].stats.extra["graph_installs"] == 2
                assert first[0].stats.extra["batch_payload_bytes"] > slim

                # An interleaved replan on the same problem must not
                # re-ship anything to the solve pool.
                with OnlinePlanner(
                    problem,
                    solver=context.make_solver(
                        "cbas-nd", budget=60, m=5, stages=2
                    ),
                    rng=6,
                    context=context,
                ) as planner:
                    group = planner.plan()
                    planner.record_decline(next(iter(sorted(group.members))))
                assert pool.installs == 2

                second = context.solve_many(
                    self._requests(problem, (11, 12, 13), "compiled"),
                    mode="solve",
                )
                # Warm batch: zero installs, only specs + seeds shipped.
                assert pool.installs == 2
                assert second[0].stats.extra["graph_shipped"] is False
                assert second[0].stats.extra["graph_installs"] == 0
                assert second[0].stats.extra["batch_payload_bytes"] < slim

                # Non-vacuous warm-path check: a forced solve-mode
                # single solve actually dispatches to the pool (the
                # planner's small replans route serial by design) and
                # must find the graph already resident everywhere.
                warm = context.solve(
                    problem, "cbas-nd", rng=9, mode="solve",
                    budget=40, m=4, stages=2,
                )
                assert warm.stats.extra["workers"] == 2
                assert warm.stats.extra["graph_installs"] == 0
                assert pool.installs == 2
        for lhs, batch in ((looped, first), (looped, second)):
            for expected, got in zip(lhs, batch):
                _assert_same_result(expected, got)

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_two_graph_session_with_eviction(self, runtime_graph, engine):
        """Three-plus batches over two graphs with a capacity-1 cache:
        eviction forces a re-ship, and every batch stays bit-identical
        to its serial loop — on both engines."""
        from repro.graph.generators import facebook_like
        from repro.parallel import ResidentSolvePool

        problem_a = WASOProblem(graph=runtime_graph, k=5)
        problem_b = WASOProblem(graph=facebook_like(120, seed=32), k=4)
        batches = [
            self._requests(problem_a, (1, 2, 3), engine),
            self._requests(problem_b, (4, 5), engine),
            self._requests(problem_a, (6, 7, 8), engine),
            self._requests(problem_a, (6, 7, 8), engine),
        ]
        looped = [self._looped(batch) for batch in batches]
        with ResidentSolvePool(2, resident_graphs=1) as pool:
            with ExecutionContext(workers=2, solve_pool=pool) as context:
                outcomes = [
                    context.solve_many(batch, mode="solve")
                    for batch in batches
                ]
                if engine == "compiled":
                    # A cold, B evicts A, A re-ships, A warm: 2 installs
                    # per worker switch — and the fourth batch is free.
                    assert pool.installs == 6
                    shipped = [
                        batch[0].stats.extra["graph_shipped"]
                        for batch in outcomes
                    ]
                    assert shipped == [True, True, True, False]
                else:
                    # The dict path has no resident representation.
                    assert pool.installs == 0
        for expected_batch, got_batch in zip(looped, outcomes):
            for expected, got in zip(expected_batch, got_batch):
                _assert_same_result(expected, got)


class TestSolveManyFailures:
    """A failing request must never discard its batch-mates (the batch
    drains, partial results ride on the raised error)."""

    def _infeasible(self, graph):
        nodes = graph.node_list()
        return WASOProblem(graph=graph, k=5, forbidden=frozenset(nodes[3:]))

    def test_worker_failure_drains_batch_and_reraises(self, runtime_graph):
        from repro.exceptions import BatchExecutionError

        good = WASOProblem(graph=runtime_graph, k=5)
        kwargs = dict(budget=40, m=4, stages=2)
        requests = [
            SolveRequest(good, "cbas-nd", 1, dict(kwargs)),
            SolveRequest(self._infeasible(runtime_graph), "cbas-nd", 2,
                         dict(kwargs)),
            SolveRequest(good, "cbas-nd", 3, dict(kwargs)),
        ]
        with ExecutionContext(workers=2) as context:
            with pytest.raises(BatchExecutionError) as info:
                context.solve_many(requests, mode="solve")
        error = info.value
        assert sorted(error.failures) == [1]
        assert "Infeasible" in error.failures[1]
        # Both healthy requests completed, bit-identical to solo solves.
        assert error.results[1] is None
        solo = CBASND(**kwargs).solve(good, rng=1)
        _assert_same_result(solo, error.results[0])
        assert error.results[2] is not None
        # And each survivor records which batch-mates failed.
        assert error.results[0].stats.extra["failed_requests"] == [1]
        assert error.results[2].stats.extra["failed_requests"] == [1]

    def test_stage_routed_failure_does_not_abandon_chunks(
        self, runtime_graph
    ):
        """An in-flight stage-routed failure must still collect the
        multiplexed chunks' results instead of tearing down mid-batch."""
        from repro.exceptions import BatchExecutionError

        good = WASOProblem(graph=runtime_graph, k=5)
        big_budget = max(
            MIN_STAGE_BUDGET,
            -(-STAGE_WORK_THRESHOLD // runtime_graph.number_of_nodes()),
        )
        requests = [
            SolveRequest(good, "cbas-nd", 1, dict(budget=40, m=4, stages=2)),
            SolveRequest(
                self._infeasible(runtime_graph), "cbas-nd", 2,
                dict(budget=big_budget, m=6, stages=3),
            ),
            SolveRequest(good, "cbas-nd", 3, dict(budget=40, m=4, stages=2)),
        ]
        with ExecutionContext(workers=2, cpu_count=4) as context:
            routes = [
                context.resolve_mode(
                    r.problem, r.budget, batch_size=len(requests)
                )
                for r in requests
            ]
            assert routes == ["solve", "stage", "solve"]
            with pytest.raises(BatchExecutionError) as info:
                context.solve_many(requests)
        error = info.value
        assert sorted(error.failures) == [1]
        assert error.results[0] is not None
        assert error.results[2] is not None

    def test_serial_batch_failure_drains_too(self, runtime_graph):
        from repro.exceptions import BatchExecutionError

        good = WASOProblem(graph=runtime_graph, k=5)
        rng = random.Random(9)  # shared generator: serial in-order path
        requests = [
            SolveRequest(good, "cbas-nd", rng, dict(budget=30, m=3)),
            SolveRequest(self._infeasible(runtime_graph), "cbas-nd", rng,
                         dict(budget=30, m=3)),
            SolveRequest(good, "cbas-nd", rng, dict(budget=30, m=3)),
        ]
        with ExecutionContext(workers=2) as context:
            with pytest.raises(BatchExecutionError) as info:
                context.solve_many(requests, mode="solve")
        error = info.value
        assert sorted(error.failures) == [1]
        assert error.results[0] is not None and error.results[2] is not None


class TestPoolHygiene:
    def test_no_workers_leak_after_with_exit(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        with ExecutionContext(workers=2) as context:
            context.solve(
                problem, "cbas-nd", rng=1, mode="stage",
                budget=40, m=4, stages=2,
            )
            requests = [
                SolveRequest(problem, "cbas-nd", s, dict(budget=30, m=3))
                for s in (1, 2)
            ]
            context.solve_many(requests, mode="solve")
            assert _children() - before  # both pools actually spawned
        assert _children() == before

    def test_no_workers_leak_after_close(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        context = ExecutionContext(workers=2)
        context.solve(
            problem, "cbas-nd", rng=1, mode="stage", budget=40, m=4, stages=2
        )
        context.close()
        assert _children() == before
        # The context stays usable: a later solve recreates the pool.
        result = context.solve(
            problem, "cbas-nd", rng=1, mode="stage", budget=40, m=4, stages=2
        )
        assert result.solution.is_feasible(problem)
        context.close()
        assert _children() == before

    def test_no_workers_leak_after_mid_solve_exception(self, small_facebook):
        class Exploding(CBASND):
            def _merge_start_stage(self, *args, **kwargs):
                raise RuntimeError("boom mid-stage")

        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        with ExecutionContext(workers=2) as context:
            solver = Exploding(budget=40, m=4, stages=2, context=context)
            with pytest.raises(RuntimeError, match="boom"):
                context.solve(problem, solver, rng=1, mode="stage")
            # The pool survived the failed solve and serves the next one.
            good = context.solve(
                problem, "cbas-nd", rng=2, mode="stage",
                budget=40, m=4, stages=2,
            )
            assert good.solution.is_feasible(problem)
        assert _children() == before

    def test_shared_pools_are_not_closed(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        with ExecutionContext(workers=2) as owner:
            owner.solve(
                problem, "cbas-nd", rng=1, mode="stage",
                budget=40, m=4, stages=2,
            )
            with ExecutionContext(
                workers=2, stage_pool=owner.stage_pool()
            ) as borrower:
                borrower.solve(
                    problem, "cbas-nd", rng=2, mode="stage",
                    budget=40, m=4, stages=2,
                )
            # The borrower's exit must leave the owner's pool running.
            again = owner.solve(
                problem, "cbas-nd", rng=3, mode="stage",
                budget=40, m=4, stages=2,
            )
            assert again.solution.is_feasible(problem)
        assert _children() == before


class TestOnlinePlannerRuntime:
    def test_planner_runs_through_a_shared_context(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        before = _children()
        with ExecutionContext(workers=2, mode="stage") as context:
            solver = context.make_solver("cbas-nd", budget=80, m=5, stages=2)
            with OnlinePlanner(
                problem, solver=solver, rng=6, context=context
            ) as planner:
                group = planner.plan()
                assert planner.last_result.stats.extra["graph_shipped"]
                assert context._stage_pool is not None
                installs = context._stage_pool.installs
                victim = next(iter(sorted(group.members)))
                planner.record_decline(victim)
                # The replan reused the resident pool: no second install,
                # no re-shipped graph.
                assert context._stage_pool.installs == installs
                assert (
                    planner.last_result.stats.extra["graph_shipped"] is False
                )
            # Planner closed, but the caller's context must stay alive.
            result = context.solve(
                problem, "cbas-nd", rng=9, mode="stage",
                budget=40, m=4, stages=2,
            )
            assert result.solution.is_feasible(problem)
        assert _children() == before

    def test_planner_warm_state_lives_in_the_context(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with ExecutionContext() as context:
            planner = OnlinePlanner(
                problem,
                solver=context.make_solver("cbas-nd", budget=60, m=6, stages=3),
                rng=7,
                context=context,
            )
            solution = planner.plan()
            assert context.warm_state(planner._warm_key) is not None
            planner.record_decline(next(iter(sorted(solution.members))))
            assert (
                planner.last_result.stats.extra.get("warm_start") is True
            )
            planner.close()
            # close() clears the planner's slot in the shared storage.
            assert context.warm_state(planner._warm_key) is None

    def test_planner_survives_a_solve_mode_context(self, small_facebook):
        """Regression: a forced-solve-mode context must not break online
        planning — the planner's instance solves degrade to serial."""
        problem = WASOProblem(graph=small_facebook, k=5)
        with ExecutionContext(workers=2, mode="solve") as context:
            with OnlinePlanner(problem, rng=6, context=context) as planner:
                group = planner.plan()
                refreshed = planner.record_decline(
                    next(iter(sorted(group.members)))
                )
                assert len(refreshed.members) == 5

    def test_default_planner_still_serial_and_warm(self, small_facebook):
        """No context anywhere: the planner behaves exactly as before."""
        problem = WASOProblem(graph=small_facebook, k=5)
        planner = OnlinePlanner(
            problem, solver=CBASND(budget=60, m=6, stages=3), rng=7
        )
        solution = planner.plan()
        planner.record_decline(next(iter(solution.members)))
        assert planner.last_result.stats.extra.get("warm_start") is True
        assert planner.context.mode == "serial"
