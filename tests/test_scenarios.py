"""Tests for the §2.2 / §4.4.3 scenario transformations."""

import pytest

from repro.algorithms.exact import ExactBnB
from repro.core.problem import WASOProblem
from repro.core.willingness import willingness
from repro.exceptions import ProblemSpecificationError
from repro.scenarios import (
    VIRTUAL_NODE,
    add_virtual_node,
    exhibition_problem,
    housewarming_problem,
    invitation_problem,
    mark_foes,
    merge_couple,
    reduce_wasodis,
    strip_virtual_node,
)
from repro.scenarios.couples import expand_merged_members


class TestCouples:
    def test_merge_reduces_k(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        merged_problem, merged_node = merge_couple(problem, 3, 5)
        assert merged_problem.k == 4
        assert merged_problem.graph.has_node(merged_node)
        assert not merged_problem.graph.has_node(5)

    def test_merged_willingness_matches_original(self, fig3):
        """W(couple graph, F') equals W(original, F' expanded) minus the
        couple's own mutual tightness — the paper's merge (τ_a,b sums only
        tightness toward *outside* neighbours) deliberately drops the
        internal couple edge, since the pair attends together regardless.
        """
        problem = WASOProblem(graph=fig3, k=5)
        merged_problem, merged_node = merge_couple(problem, 3, 5)
        group_merged = {merged_node, 4, 6, 7}
        expanded = expand_merged_members(
            frozenset(group_merged), merged_node, 3, 5
        )
        assert expanded == frozenset({3, 5, 4, 6, 7})
        internal = fig3.pair_weight(3, 5)
        assert willingness(
            merged_problem.graph, group_merged
        ) == pytest.approx(willingness(fig3, expanded) - internal)

    def test_original_problem_untouched(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        merge_couple(problem, 3, 5)
        assert fig3.has_node(5)
        assert problem.k == 5

    def test_required_remapped(self, fig3):
        problem = WASOProblem(graph=fig3, k=5, required=frozenset({5}))
        merged_problem, merged_node = merge_couple(problem, 3, 5)
        assert merged_node in merged_problem.required

    def test_expand_without_merged_node(self):
        members = frozenset({1, 2})
        assert expand_merged_members(members, 99, 3, 5) == members

    def test_solve_with_couple(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        merged_problem, merged_node = merge_couple(problem, 6, 7)
        result = ExactBnB().solve(merged_problem)
        attendees = expand_merged_members(result.members, merged_node, 6, 7)
        # Either both or neither of the couple attends.
        assert (6 in attendees) == (7 in attendees)


class TestFoes:
    def test_existing_edge_penalized(self, fig3):
        hostile = mark_foes(fig3, [(3, 5)])
        assert hostile.tightness(3, 5) < 0
        assert hostile.tightness(5, 3) < 0

    def test_new_edge_created(self, fig3):
        hostile = mark_foes(fig3, [(1, 10)])
        assert hostile.has_edge(1, 10)
        assert hostile.tightness(1, 10) < 0

    def test_positive_penalty_rejected(self, fig3):
        with pytest.raises(ValueError):
            mark_foes(fig3, [(1, 2)], penalty=1.0)

    def test_foes_never_grouped(self, fig3):
        hostile = mark_foes(fig3, [(4, 5)])
        result = ExactBnB().solve(WASOProblem(graph=hostile, k=5))
        assert not ({4, 5} <= result.members)

    def test_original_untouched(self, fig3):
        before = fig3.tightness(3, 5)
        mark_foes(fig3, [(3, 5)])
        assert fig3.tightness(3, 5) == before


class TestInvitation:
    def test_candidates_restricted_to_neighbourhood(self, fig3):
        problem = invitation_problem(fig3, host=3, k=4)
        allowed = set(problem.candidates())
        assert allowed == {3, 1, 2, 4, 5, 6}
        assert 3 in problem.required

    def test_guests_weighted_by_tightness_only(self, fig3):
        problem = invitation_problem(fig3, host=3, k=4)
        for guest in (1, 2, 4, 5, 6):
            assert problem.graph.lam(guest) == 0.0
        assert problem.graph.lam(3) is None  # host keeps own weighting

    def test_solution_contains_host(self, fig3):
        problem = invitation_problem(fig3, host=3, k=4)
        result = ExactBnB().solve(problem)
        assert 3 in result.members
        for guest in result.members - {3}:
            assert fig3.has_edge(3, guest)

    def test_validation(self, fig3):
        with pytest.raises(ValueError):
            invitation_problem(fig3, host=999, k=3)
        with pytest.raises(ValueError):
            invitation_problem(fig3, host=3, k=1)

    def test_k_capped_by_neighbourhood(self, fig3):
        # v1 has two neighbours -> at most k=3 feasible.
        with pytest.raises(ProblemSpecificationError):
            invitation_problem(fig3, host=1, k=9)


class TestThemed:
    def test_exhibition_lambda_one(self, fig3):
        problem = exhibition_problem(fig3, k=4)
        assert all(problem.graph.lam(n) == 1.0 for n in problem.graph.nodes())
        assert not problem.connected

    def test_exhibition_optimum_is_top_interest(self, fig3):
        problem = exhibition_problem(fig3, k=3)
        result = ExactBnB().solve(problem)
        top3 = sorted(
            fig3.nodes(), key=fig3.interest, reverse=True
        )[:3]
        assert result.willingness == pytest.approx(
            sum(fig3.interest(n) for n in top3)
        )

    def test_housewarming_lambda_zero(self, fig3):
        problem = housewarming_problem(fig3, k=4)
        assert all(problem.graph.lam(n) == 0.0 for n in problem.graph.nodes())
        assert problem.connected

    def test_housewarming_ignores_interest(self, fig3):
        problem = housewarming_problem(fig3, k=3)
        result = ExactBnB().solve(problem)
        # Changing all interests must not change the objective value.
        boosted = fig3.copy()
        for node in boosted.nodes():
            boosted.set_interest(node, 100.0)
        boosted_problem = housewarming_problem(boosted, k=3)
        boosted_result = ExactBnB().solve(boosted_problem)
        assert boosted_result.willingness == pytest.approx(result.willingness)


class TestSeparateGroups:
    def test_virtual_node_dominates(self, fig3):
        augmented = add_virtual_node(fig3)
        total = willingness(fig3, set(fig3.nodes()))
        assert augmented.interest(VIRTUAL_NODE) > total
        assert augmented.degree(VIRTUAL_NODE) == fig3.number_of_nodes()

    def test_zero_tightness_edges(self, fig3):
        augmented = add_virtual_node(fig3)
        for node in fig3.nodes():
            assert augmented.tightness(VIRTUAL_NODE, node) == 0.0
            assert augmented.tightness(node, VIRTUAL_NODE) == 0.0

    def test_reduce_requires_wasodis(self, fig3):
        problem = WASOProblem(graph=fig3, k=3, connected=True)
        with pytest.raises(ValueError):
            reduce_wasodis(problem)

    def test_duplicate_virtual_node_rejected(self, fig3):
        augmented = add_virtual_node(fig3)
        with pytest.raises(ValueError):
            add_virtual_node(augmented)

    def test_epsilon_validation(self, fig3):
        with pytest.raises(ValueError):
            add_virtual_node(fig3, epsilon=0.0)

    def test_strip(self):
        members = frozenset({1, 2, VIRTUAL_NODE})
        assert strip_virtual_node(members) == frozenset({1, 2})

    def test_reduction_solves_disconnected_instance(
        self, two_components_graph
    ):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        direct = ExactBnB().solve(problem)
        reduced = reduce_wasodis(problem)
        via = ExactBnB().solve(reduced)
        members = strip_virtual_node(via.members)
        assert willingness(
            two_components_graph, members
        ) == pytest.approx(direct.willingness)
